//! The frame table: per-page physical metadata for every memory node.
//!
//! Like the kernel's `struct page` array, each physical frame has one
//! metadata entry, indexed by PFN. Nodes own contiguous PFN ranges. The
//! frame table also keeps the per-node, per-order buddy free lists and
//! free-page counts that watermark logic consults.
//!
//! # Buddy orders
//!
//! The allocator is order-aware: each node keeps one intrusive free list
//! per order `0..=`[`MAX_PAGE_ORDER`], splits larger blocks on demand and
//! (in huge mode) eagerly merges buddies on free, exactly like the
//! kernel's `mm/page_alloc.c`. Block alignment is *node-relative*: a
//! node's PFN range starts wherever the previous node ended, so the buddy
//! of relative frame `r` at order `o` is `r ^ (1 << o)`, not an absolute
//! PFN xor.
//!
//! Two modes exist so the huge-page subsystem can land without
//! perturbing calibrated figures:
//!
//! * **flat** ([`FrameTable::new`], used by `ThpMode::Never`): only the
//!   order-0 list is populated and no merging happens. The pop/push
//!   sequence is bit-identical to the historical single-order free
//!   stack.
//! * **huge** ([`FrameTable::new_with_thp`] with `huge = true`): free
//!   space is seeded as maximal aligned blocks, allocations split the
//!   smallest sufficient block, and frees merge buddies back up.

use crate::error::AllocError;
use crate::flags::PageFlags;
use crate::lru::LruKind;
use crate::types::{NodeId, PageKey, PageType, Pfn};

/// The largest buddy order: an order-[`MAX_PAGE_ORDER`] block is
/// `1 << MAX_PAGE_ORDER` = 512 contiguous base pages = one 2 MiB THP.
pub const MAX_PAGE_ORDER: u8 = 9;

/// Number of distinct buddy orders (`0..=MAX_PAGE_ORDER`).
const NR_ORDERS: usize = MAX_PAGE_ORDER as usize + 1;

/// Base pages in one 2 MiB huge page (an order-[`MAX_PAGE_ORDER`] block).
pub const HUGE_PAGE_FRAMES: u64 = 1 << MAX_PAGE_ORDER;

/// Allocation state of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameState {
    /// The frame is free (on a buddy free list, or briefly reserved off
    /// it while a compound allocation is assembled).
    Free,
    /// The frame backs a virtual page.
    Allocated {
        /// The (process, virtual page) this frame backs. The simulator
        /// models private mappings, so each frame has exactly one owner —
        /// this doubles as the reverse map used by migration.
        owner: PageKey,
    },
}

/// Per-frame metadata (`struct page` analogue).
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    state: FrameState,
    page_type: PageType,
    flags: PageFlags,
    node: NodeId,
    /// Intrusive LRU linkage; `Pfn::NONE` when unlinked.
    pub(crate) lru_prev: u32,
    pub(crate) lru_next: u32,
    pub(crate) lru: Option<LruKind>,
    /// Intrusive buddy free-list linkage; `Pfn::NONE` when unlinked.
    pub(crate) free_prev: u32,
    pub(crate) free_next: u32,
    /// Buddy order while the frame heads a free block; compound order
    /// while the frame heads an allocated compound page.
    pub(crate) order: u8,
    /// Decaying access-frequency counter (used by the AutoTiering
    /// baseline's timer-based hotness detection).
    hotness: u8,
    /// Simulation time of the last access, for reports.
    last_access_ns: u64,
}

impl Frame {
    fn unused(node: NodeId) -> Frame {
        Frame {
            state: FrameState::Free,
            page_type: PageType::Anon,
            flags: PageFlags::empty(),
            node,
            lru_prev: Pfn::NONE,
            lru_next: Pfn::NONE,
            lru: None,
            free_prev: Pfn::NONE,
            free_next: Pfn::NONE,
            order: 0,
            hotness: 0,
            last_access_ns: 0,
        }
    }

    /// Allocation state of the frame.
    #[inline]
    pub fn state(&self) -> FrameState {
        self.state
    }

    /// Whether the frame currently backs a page.
    #[inline]
    pub fn is_allocated(&self) -> bool {
        matches!(self.state, FrameState::Allocated { .. })
    }

    /// The owner of the frame, if allocated.
    #[inline]
    pub fn owner(&self) -> Option<PageKey> {
        match self.state {
            FrameState::Allocated { owner } => Some(owner),
            FrameState::Free => None,
        }
    }

    /// The page type (meaningful only while allocated).
    #[inline]
    pub fn page_type(&self) -> PageType {
        self.page_type
    }

    /// Current flag set.
    #[inline]
    pub fn flags(&self) -> PageFlags {
        self.flags
    }

    /// Mutable access to the flag set.
    #[inline]
    pub fn flags_mut(&mut self) -> &mut PageFlags {
        &mut self.flags
    }

    /// The node this frame physically belongs to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Which LRU list the frame is linked on, if any.
    #[inline]
    pub fn lru_kind(&self) -> Option<LruKind> {
        self.lru
    }

    /// The frame's order: buddy order while free, compound order while it
    /// heads a compound page (0 for base pages and tail frames).
    #[inline]
    pub fn order(&self) -> u8 {
        self.order
    }

    /// The AutoTiering-style decaying hotness counter.
    #[inline]
    pub fn hotness(&self) -> u8 {
        self.hotness
    }

    /// Bumps the hotness counter (saturating).
    #[inline]
    pub fn touch_hotness(&mut self) {
        self.hotness = self.hotness.saturating_add(1);
    }

    /// Halves the hotness counter (the periodic decay tick).
    #[inline]
    pub fn decay_hotness(&mut self) {
        self.hotness /= 2;
    }

    /// Overwrites the hotness counter (used when migration carries state
    /// across nodes).
    #[inline]
    pub fn set_hotness(&mut self, hotness: u8) {
        self.hotness = hotness;
    }

    /// Time of last access, in simulation nanoseconds.
    #[inline]
    pub fn last_access_ns(&self) -> u64 {
        self.last_access_ns
    }

    /// Records an access time.
    #[inline]
    pub fn set_last_access_ns(&mut self, now_ns: u64) {
        self.last_access_ns = now_ns;
    }
}

/// One buddy free list: intrusive doubly-linked list of block heads.
#[derive(Clone, Copy, Debug)]
struct FreeArea {
    /// PFN of the first block head, `Pfn::NONE` when empty.
    head: u32,
    /// Number of blocks on this list.
    count: u64,
}

impl FreeArea {
    const EMPTY: FreeArea = FreeArea {
        head: Pfn::NONE,
        count: 0,
    };
}

/// The machine-wide frame table plus per-node buddy free lists.
///
/// # Examples
///
/// ```
/// use tiered_mem::{FrameTable, NodeId, PageKey, PageType, Pid, Vpn};
///
/// let mut ft = FrameTable::new(&[128, 512]);
/// let owner = PageKey::new(Pid(1), Vpn(0));
/// let pfn = ft.alloc(NodeId(0), owner, PageType::Anon)?;
/// assert_eq!(ft.frame(pfn).owner(), Some(owner));
/// assert_eq!(ft.free_pages(NodeId(0)), 127);
/// ft.free(pfn);
/// assert_eq!(ft.free_pages(NodeId(0)), 128);
/// # Ok::<(), tiered_mem::AllocError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FrameTable {
    frames: Vec<Frame>,
    /// `node_start[n]..node_start[n+1]` is node `n`'s PFN range.
    node_start: Vec<u32>,
    /// Per-node, per-order intrusive free lists.
    free_areas: Vec<[FreeArea; NR_ORDERS]>,
    /// Per-node total free pages (cheap `free_pages` lookups).
    free_totals: Vec<u64>,
    /// Whether free space is managed as multi-order buddy blocks. When
    /// false only order 0 is populated and frees never merge, which
    /// keeps the historical allocation sequence bit-identical.
    huge: bool,
}

impl FrameTable {
    /// Creates a flat (order-0 only) frame table for nodes with the given
    /// capacities (pages). Equivalent to
    /// [`new_with_thp`](FrameTable::new_with_thp) with `huge = false`.
    ///
    /// A zero-capacity node is allowed (e.g. a hot-removed or not-yet-
    /// onlined expander in a larger topology): every allocation on it
    /// fails with `NoMemory`, so fallback chains simply skip past it.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or the total exceeds `u32::MAX`
    /// frames.
    pub fn new(capacities: &[u64]) -> FrameTable {
        FrameTable::new_with_thp(capacities, false)
    }

    /// Creates a frame table, choosing the free-space mode.
    ///
    /// With `huge = false` only the order-0 list is seeded (low PFNs
    /// handed out first, frees recycled LIFO — the historical
    /// behaviour). With `huge = true` each node's range is carved into
    /// maximal node-relative-aligned buddy blocks, enabling huge-page
    /// allocation, splitting and merging.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or the total exceeds `u32::MAX`
    /// frames.
    pub fn new_with_thp(capacities: &[u64], huge: bool) -> FrameTable {
        assert!(!capacities.is_empty(), "at least one memory node required");
        let total: u64 = capacities.iter().sum();
        assert!(total < u32::MAX as u64, "too many frames for 32-bit PFNs");
        let mut frames = Vec::with_capacity(total as usize);
        let mut node_start = Vec::with_capacity(capacities.len() + 1);
        let mut next: u32 = 0;
        for (i, &cap) in capacities.iter().enumerate() {
            let node = NodeId(i as u8);
            node_start.push(next);
            for _ in 0..cap {
                frames.push(Frame::unused(node));
            }
            next += cap as u32;
        }
        node_start.push(next);
        let mut table = FrameTable {
            frames,
            node_start,
            free_areas: vec![[FreeArea::EMPTY; NR_ORDERS]; capacities.len()],
            free_totals: capacities.to_vec(),
            huge,
        };
        for (ni, &cap) in capacities.iter().enumerate() {
            let start = table.node_start[ni];
            let cap = cap as u32;
            if huge {
                // Carve the range into maximal aligned blocks, then link
                // them in reverse so each list's head is the lowest block
                // (low addresses are handed out first, like flat mode).
                let mut blocks: Vec<(u32, u8)> = Vec::new();
                let mut rel: u32 = 0;
                while rel < cap {
                    let mut order = MAX_PAGE_ORDER;
                    while order > 0 && (rel & ((1 << order) - 1) != 0 || rel + (1 << order) > cap) {
                        order -= 1;
                    }
                    blocks.push((rel, order));
                    rel += 1 << order;
                }
                for &(rel, order) in blocks.iter().rev() {
                    table.push_front(ni, order as usize, Pfn(start + rel));
                }
            } else {
                // Push high PFNs first so the list head ends at the
                // lowest PFN — pops then hand out 0, 1, 2, ... exactly
                // like the historical free stack.
                for rel in (0..cap).rev() {
                    table.push_front(ni, 0, Pfn(start + rel));
                }
            }
        }
        table
    }

    /// Whether this table manages multi-order buddy blocks (huge mode).
    #[inline]
    pub fn thp_enabled(&self) -> bool {
        self.huge
    }

    /// Number of memory nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.free_areas.len()
    }

    /// Total capacity of `node` in pages.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[inline]
    pub fn capacity(&self, node: NodeId) -> u64 {
        let i = node.index();
        (self.node_start[i + 1] - self.node_start[i]) as u64
    }

    /// Current free pages on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[inline]
    pub fn free_pages(&self, node: NodeId) -> u64 {
        self.free_totals[node.index()]
    }

    /// Pages currently allocated on `node`.
    #[inline]
    pub fn used_pages(&self, node: NodeId) -> u64 {
        self.capacity(node) - self.free_pages(node)
    }

    /// Number of free blocks of exactly `order` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or `order` exceeds
    /// [`MAX_PAGE_ORDER`].
    #[inline]
    #[must_use]
    pub fn free_blocks(&self, node: NodeId, order: u8) -> u64 {
        self.free_areas[node.index()][order as usize].count
    }

    /// The unusable-free-space fragmentation index for `order` on `node`
    /// (the `extfrag_index` analogue): the fraction of free memory that
    /// cannot satisfy an allocation of `order` — `0.0` means every free
    /// page sits in a sufficiently large block, values approaching `1.0`
    /// mean free memory exists but is shattered. Returns `0.0` when the
    /// node has no free memory at all (that is an out-of-memory problem,
    /// not a fragmentation problem).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or `order` exceeds
    /// [`MAX_PAGE_ORDER`].
    #[must_use]
    pub fn unusable_free_index(&self, node: NodeId, order: u8) -> f64 {
        let ni = node.index();
        let free = self.free_totals[ni];
        if free == 0 {
            return 0.0;
        }
        let usable: u64 = (order as usize..NR_ORDERS)
            .map(|o| self.free_areas[ni][o].count << o)
            .sum();
        (free - usable) as f64 / free as f64
    }

    /// Whether `node` is a valid node id.
    #[inline]
    pub fn has_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// The PFN range owned by `node`.
    pub fn pfn_range(&self, node: NodeId) -> std::ops::Range<u32> {
        let i = node.index();
        self.node_start[i]..self.node_start[i + 1]
    }

    /// Shared access to a frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    #[inline]
    pub fn frame(&self, pfn: Pfn) -> &Frame {
        &self.frames[pfn.index()]
    }

    /// Mutable access to a frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    #[inline]
    pub fn frame_mut(&mut self, pfn: Pfn) -> &mut Frame {
        &mut self.frames[pfn.index()]
    }

    /// Links `pfn` as the head of `(node, order)`'s free list.
    fn push_front(&mut self, ni: usize, order: usize, pfn: Pfn) {
        let area = &mut self.free_areas[ni][order];
        let old_head = area.head;
        area.head = pfn.0;
        area.count += 1;
        let frame = &mut self.frames[pfn.index()];
        frame.free_prev = Pfn::NONE;
        frame.free_next = old_head;
        frame.order = order as u8;
        frame.flags.insert(PageFlags::BUDDY);
        if old_head != Pfn::NONE {
            self.frames[old_head as usize].free_prev = pfn.0;
        }
    }

    /// Unlinks `pfn` (anywhere in the list) from `(node, order)`.
    fn unlink(&mut self, ni: usize, order: usize, pfn: Pfn) {
        let (prev, next) = {
            let frame = &mut self.frames[pfn.index()];
            debug_assert!(frame.flags.contains(PageFlags::BUDDY));
            debug_assert_eq!(frame.order, order as u8);
            let links = (frame.free_prev, frame.free_next);
            frame.free_prev = Pfn::NONE;
            frame.free_next = Pfn::NONE;
            frame.flags.remove(PageFlags::BUDDY);
            links
        };
        if prev != Pfn::NONE {
            self.frames[prev as usize].free_next = next;
        } else {
            self.free_areas[ni][order].head = next;
        }
        if next != Pfn::NONE {
            self.frames[next as usize].free_prev = prev;
        }
        self.free_areas[ni][order].count -= 1;
    }

    /// Pops the head of `(node, order)`'s free list, if any.
    fn pop_front(&mut self, ni: usize, order: usize) -> Option<Pfn> {
        let head = self.free_areas[ni][order].head;
        if head == Pfn::NONE {
            return None;
        }
        let pfn = Pfn(head);
        self.unlink(ni, order, pfn);
        Some(pfn)
    }

    /// Splits the off-list block `head` from `from` down to `to`,
    /// re-linking each upper half and keeping the lower half.
    fn split_to(&mut self, ni: usize, head: Pfn, from: usize, to: usize) {
        for order in (to..from).rev() {
            self.push_front(ni, order, Pfn(head.0 + (1u32 << order)));
        }
    }

    /// Allocates one page on `node` for `owner`, splitting the smallest
    /// sufficient buddy block when order 0 is empty.
    ///
    /// This is the raw page allocator: it performs **no** watermark
    /// checks — policies decide when a node is too full.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidNode`] if the node does not exist, or
    /// [`AllocError::NoMemory`] if the node has no free block at any
    /// order.
    pub fn alloc(
        &mut self,
        node: NodeId,
        owner: PageKey,
        page_type: PageType,
    ) -> Result<Pfn, AllocError> {
        if !self.has_node(node) {
            return Err(AllocError::InvalidNode { node });
        }
        let ni = node.index();
        let pfn = match self.pop_front(ni, 0) {
            Some(pfn) => pfn,
            None => {
                // Split on demand: take the smallest non-empty higher
                // order. In flat mode higher orders are never populated,
                // so this finds nothing and the node is simply full.
                let order = (1..NR_ORDERS)
                    .find(|&o| self.free_areas[ni][o].count > 0)
                    .ok_or(AllocError::NoMemory { node })?;
                let head = self.pop_front(ni, order).expect("non-empty free area");
                self.split_to(ni, head, order, 0);
                head
            }
        };
        self.free_totals[ni] -= 1;
        let frame = &mut self.frames[pfn.index()];
        debug_assert!(matches!(frame.state, FrameState::Free));
        frame.state = FrameState::Allocated { owner };
        frame.page_type = page_type;
        frame.flags = PageFlags::empty();
        frame.order = 0;
        frame.hotness = 0;
        frame.last_access_ns = 0;
        debug_assert!(frame.lru.is_none());
        Ok(pfn)
    }

    /// Reserves a free block of exactly `order` on `node`, splitting a
    /// larger one when necessary, and returns its head PFN.
    ///
    /// The block's frames stay `Free` but are taken off the free lists
    /// (and out of [`free_pages`](FrameTable::free_pages)); the caller
    /// claims each frame with [`claim`](FrameTable::claim). This is how
    /// compound pages are assembled.
    ///
    /// Returns `None` if the node has no free block of `order` or above.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or `order` exceeds
    /// [`MAX_PAGE_ORDER`].
    pub fn reserve_block(&mut self, node: NodeId, order: u8) -> Option<Pfn> {
        let ni = node.index();
        let want = order as usize;
        let found = (want..NR_ORDERS).find(|&o| self.free_areas[ni][o].count > 0)?;
        let head = self.pop_front(ni, found).expect("non-empty free area");
        self.split_to(ni, head, found, want);
        self.free_totals[ni] -= 1u64 << order;
        Some(head)
    }

    /// Reserves the single free page `pfn`, extracting it from whatever
    /// free block contains it (the compaction free scanner's targeted
    /// grab). The remainder of the block is split back onto the free
    /// lists. Returns `false` if the frame is allocated or not currently
    /// on a free list.
    pub fn reserve_page(&mut self, pfn: Pfn) -> bool {
        if self.frames[pfn.index()].is_allocated() {
            return false;
        }
        let ni = self.frames[pfn.index()].node.index();
        let start = self.node_start[ni];
        let rel = pfn.0 - start;
        // Probe the candidate heads of every block that could contain
        // this frame, smallest first.
        let mut found = None;
        for order in 0..NR_ORDERS {
            let head_rel = rel & !((1u32 << order) - 1);
            let head = &self.frames[(start + head_rel) as usize];
            if head.flags.contains(PageFlags::BUDDY) && head.order == order as u8 {
                found = Some((head_rel, order));
                break;
            }
        }
        let Some((mut head_rel, mut order)) = found else {
            return false;
        };
        self.unlink(ni, order, Pfn(start + head_rel));
        // Split down, keeping whichever half contains the target.
        while order > 0 {
            order -= 1;
            let upper = head_rel + (1u32 << order);
            if rel >= upper {
                self.push_front(ni, order, Pfn(start + head_rel));
                head_rel = upper;
            } else {
                self.push_front(ni, order, Pfn(start + upper));
            }
        }
        debug_assert_eq!(head_rel, rel);
        self.free_totals[ni] -= 1;
        true
    }

    /// Claims a frame previously taken off the free lists by
    /// [`reserve_block`](FrameTable::reserve_block) or
    /// [`reserve_page`](FrameTable::reserve_page), assigning it to
    /// `owner` and resetting its metadata.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already allocated.
    pub fn claim(&mut self, pfn: Pfn, owner: PageKey, page_type: PageType) {
        let frame = &mut self.frames[pfn.index()];
        assert!(
            matches!(frame.state, FrameState::Free),
            "claim of allocated {pfn}"
        );
        debug_assert!(
            !frame.flags.contains(PageFlags::BUDDY),
            "claim of {pfn} still on a free list"
        );
        frame.state = FrameState::Allocated { owner };
        frame.page_type = page_type;
        frame.flags = PageFlags::empty();
        frame.order = 0;
        frame.hotness = 0;
        frame.last_access_ns = 0;
        debug_assert!(frame.lru.is_none());
    }

    /// Releases `pfn` back to its node's free lists, returning the
    /// previous owner. In huge mode the freed page eagerly merges with
    /// its buddy up the orders, like `__free_one_page`.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free or still linked on an LRU list (callers
    /// must `lru` the page off first — mirroring the kernel invariant that
    /// a page must be isolated before being freed).
    pub fn free(&mut self, pfn: Pfn) -> PageKey {
        let frame = &mut self.frames[pfn.index()];
        let owner = match frame.state {
            FrameState::Allocated { owner } => owner,
            FrameState::Free => panic!("double free of {pfn}"),
        };
        assert!(
            frame.lru.is_none(),
            "{pfn} freed while still on LRU list {:?}",
            frame.lru
        );
        frame.state = FrameState::Free;
        frame.flags = PageFlags::empty();
        frame.order = 0;
        frame.hotness = 0;
        let node = frame.node;
        let ni = node.index();
        self.free_totals[ni] += 1;
        if !self.huge {
            self.push_front(ni, 0, pfn);
            return owner;
        }
        // Eager buddy merge, node-relative.
        let start = self.node_start[ni];
        let cap = self.node_start[ni + 1] - start;
        let mut rel = pfn.0 - start;
        let mut order: usize = 0;
        while order < MAX_PAGE_ORDER as usize {
            let buddy_rel = rel ^ (1u32 << order);
            if buddy_rel + (1u32 << order) > cap {
                break;
            }
            let buddy = &self.frames[(start + buddy_rel) as usize];
            if !(matches!(buddy.state, FrameState::Free)
                && buddy.flags.contains(PageFlags::BUDDY)
                && buddy.order == order as u8)
            {
                break;
            }
            self.unlink(ni, order, Pfn(start + buddy_rel));
            rel = rel.min(buddy_rel);
            order += 1;
        }
        self.push_front(ni, order, Pfn(start + rel));
        owner
    }

    /// Walks every free list and asserts structural invariants: link
    /// integrity, per-order counts, node-relative block alignment, no
    /// overlapping spans, and that the per-node free totals match the
    /// lists. Intended for tests and [`crate::Memory`]'s validator.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn validate_free_lists(&self) {
        for ni in 0..self.node_count() {
            let start = self.node_start[ni];
            let cap = self.node_start[ni + 1] - start;
            let mut covered = vec![false; cap as usize];
            let mut total = 0u64;
            for order in 0..NR_ORDERS {
                let mut count = 0u64;
                let mut prev = Pfn::NONE;
                let mut cur = self.free_areas[ni][order].head;
                while cur != Pfn::NONE {
                    let frame = &self.frames[cur as usize];
                    assert!(
                        matches!(frame.state, FrameState::Free),
                        "allocated frame {cur} on node {ni} order {order} free list"
                    );
                    assert!(
                        frame.flags.contains(PageFlags::BUDDY),
                        "free-list frame {cur} lacks BUDDY"
                    );
                    assert_eq!(frame.order, order as u8, "order mismatch on {cur}");
                    assert_eq!(frame.free_prev, prev, "broken prev link at {cur}");
                    let rel = cur - start;
                    assert_eq!(
                        rel & ((1u32 << order) - 1),
                        0,
                        "misaligned order-{order} block at relative frame {rel}"
                    );
                    for i in 0..(1u32 << order) {
                        let idx = (rel + i) as usize;
                        assert!(
                            !covered[idx],
                            "overlapping free spans at {}",
                            start + rel + i
                        );
                        covered[idx] = true;
                    }
                    count += 1;
                    prev = cur;
                    cur = frame.free_next;
                }
                assert_eq!(
                    count, self.free_areas[ni][order].count,
                    "count mismatch on node {ni} order {order}"
                );
                total += count << order;
            }
            assert_eq!(
                total, self.free_totals[ni],
                "free total mismatch on node {ni}"
            );
        }
    }

    /// Iterates over all allocated frames on `node`, in PFN order.
    pub fn allocated_on(&self, node: NodeId) -> impl Iterator<Item = Pfn> + '_ {
        self.pfn_range(node)
            .map(Pfn)
            .filter(move |p| self.frames[p.index()].is_allocated())
    }

    /// Counts allocated pages on `node` by accounting class
    /// `(anon, file_backed)`.
    pub fn usage_by_class(&self, node: NodeId) -> (u64, u64) {
        let mut anon = 0;
        let mut file = 0;
        for pfn in self.allocated_on(node) {
            if self.frames[pfn.index()].page_type.is_anon() {
                anon += 1;
            } else {
                file += 1;
            }
        }
        (anon, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Pid, Vpn};

    fn key(v: u64) -> PageKey {
        PageKey::new(Pid(1), Vpn(v))
    }

    #[test]
    fn nodes_get_contiguous_disjoint_ranges() {
        let ft = FrameTable::new(&[100, 200, 50]);
        assert_eq!(ft.node_count(), 3);
        assert_eq!(ft.pfn_range(NodeId(0)), 0..100);
        assert_eq!(ft.pfn_range(NodeId(1)), 100..300);
        assert_eq!(ft.pfn_range(NodeId(2)), 300..350);
        assert_eq!(ft.capacity(NodeId(1)), 200);
    }

    #[test]
    fn alloc_assigns_low_pfns_first_and_tracks_free_count() {
        let mut ft = FrameTable::new(&[10]);
        let p0 = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        let p1 = ft.alloc(NodeId(0), key(1), PageType::File).unwrap();
        assert_eq!(p0, Pfn(0));
        assert_eq!(p1, Pfn(1));
        assert_eq!(ft.free_pages(NodeId(0)), 8);
        assert_eq!(ft.used_pages(NodeId(0)), 2);
    }

    #[test]
    fn alloc_fails_when_node_exhausted() {
        let mut ft = FrameTable::new(&[2]);
        ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.alloc(NodeId(0), key(1), PageType::Anon).unwrap();
        assert_eq!(
            ft.alloc(NodeId(0), key(2), PageType::Anon),
            Err(AllocError::NoMemory { node: NodeId(0) })
        );
    }

    #[test]
    fn alloc_rejects_unknown_node() {
        let mut ft = FrameTable::new(&[2]);
        assert_eq!(
            ft.alloc(NodeId(7), key(0), PageType::Anon),
            Err(AllocError::InvalidNode { node: NodeId(7) })
        );
    }

    #[test]
    fn free_returns_owner_and_recycles_frame() {
        let mut ft = FrameTable::new(&[2]);
        let pfn = ft.alloc(NodeId(0), key(42), PageType::File).unwrap();
        assert_eq!(ft.free(pfn), key(42));
        assert_eq!(ft.free_pages(NodeId(0)), 2);
        // The freed frame is reusable.
        let pfn2 = ft.alloc(NodeId(0), key(43), PageType::Anon).unwrap();
        assert_eq!(pfn2, pfn);
        assert_eq!(ft.frame(pfn2).page_type(), PageType::Anon);
        assert!(ft.frame(pfn2).flags().is_empty());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut ft = FrameTable::new(&[2]);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.free(pfn);
        ft.free(pfn);
    }

    #[test]
    fn alloc_resets_stale_metadata() {
        let mut ft = FrameTable::new(&[1]);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.frame_mut(pfn).touch_hotness();
        ft.frame_mut(pfn).flags_mut().insert(PageFlags::DIRTY);
        ft.frame_mut(pfn).set_last_access_ns(99);
        ft.free(pfn);
        let pfn = ft.alloc(NodeId(0), key(1), PageType::File).unwrap();
        let f = ft.frame(pfn);
        assert_eq!(f.hotness(), 0);
        assert!(f.flags().is_empty());
        assert_eq!(f.last_access_ns(), 0);
    }

    #[test]
    fn hotness_saturates_and_decays() {
        let mut ft = FrameTable::new(&[1]);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        for _ in 0..300 {
            ft.frame_mut(pfn).touch_hotness();
        }
        assert_eq!(ft.frame(pfn).hotness(), u8::MAX);
        ft.frame_mut(pfn).decay_hotness();
        assert_eq!(ft.frame(pfn).hotness(), 127);
    }

    #[test]
    fn usage_by_class_counts_tmpfs_as_file() {
        let mut ft = FrameTable::new(&[10]);
        ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.alloc(NodeId(0), key(1), PageType::File).unwrap();
        ft.alloc(NodeId(0), key(2), PageType::Tmpfs).unwrap();
        assert_eq!(ft.usage_by_class(NodeId(0)), (1, 2));
    }

    #[test]
    fn allocated_on_lists_only_allocated_frames() {
        let mut ft = FrameTable::new(&[4, 4]);
        let a = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        let b = ft.alloc(NodeId(1), key(1), PageType::Anon).unwrap();
        assert_eq!(ft.allocated_on(NodeId(0)).collect::<Vec<_>>(), vec![a]);
        assert_eq!(ft.allocated_on(NodeId(1)).collect::<Vec<_>>(), vec![b]);
    }

    // ---- buddy-mode invariants -------------------------------------

    #[test]
    fn huge_mode_seeds_maximal_aligned_blocks() {
        let ft = FrameTable::new_with_thp(&[1024 + 17], true);
        ft.validate_free_lists();
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 2);
        assert_eq!(ft.free_pages(NodeId(0)), 1024 + 17);
        // 17 = 16 + 1 leftover.
        assert_eq!(ft.free_blocks(NodeId(0), 4), 1);
        assert_eq!(ft.free_blocks(NodeId(0), 0), 1);
    }

    #[test]
    fn split_on_demand_then_merge_on_free_restores_max_order() {
        let mut ft = FrameTable::new_with_thp(&[1024], true);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.validate_free_lists();
        // One order-9 block was split all the way down to order 0.
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 1);
        assert_eq!(ft.free_pages(NodeId(0)), 1023);
        for o in 0..MAX_PAGE_ORDER {
            assert_eq!(ft.free_blocks(NodeId(0), o), 1, "order {o}");
        }
        ft.free(pfn);
        ft.validate_free_lists();
        // The buddies merged back: two pristine order-9 blocks again.
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 2);
        for o in 0..MAX_PAGE_ORDER {
            assert_eq!(ft.free_blocks(NodeId(0), o), 0, "order {o}");
        }
        assert_eq!(ft.free_pages(NodeId(0)), 1024);
    }

    #[test]
    fn free_list_conservation_through_random_churn() {
        let mut ft = FrameTable::new_with_thp(&[640], true);
        let mut live = Vec::new();
        // A deterministic xorshift drives an alloc/free mix.
        let mut state: u64 = 0x9e37_79b9;
        for i in 0..2_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if !state.is_multiple_of(3) || live.is_empty() {
                if let Ok(pfn) = ft.alloc(NodeId(0), key(i), PageType::Anon) {
                    live.push(pfn);
                }
            } else {
                let victim = live.swap_remove((state % live.len() as u64) as usize);
                ft.free(victim);
            }
        }
        ft.validate_free_lists();
        assert_eq!(ft.free_pages(NodeId(0)), 640 - live.len() as u64);
        for pfn in live.drain(..) {
            ft.free(pfn);
        }
        ft.validate_free_lists();
        assert_eq!(ft.free_pages(NodeId(0)), 640);
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 1);
        assert_eq!(ft.free_blocks(NodeId(0), 7), 1);
    }

    #[test]
    fn buddy_math_is_node_relative() {
        // Node 1 starts at absolute PFN 100, which is not 512-aligned;
        // blocks must still align relative to the node start.
        let ft = FrameTable::new_with_thp(&[100, 1024], true);
        ft.validate_free_lists();
        assert_eq!(ft.free_blocks(NodeId(1), MAX_PAGE_ORDER), 2);
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 0);
        assert_eq!(ft.free_blocks(NodeId(0), 6), 1);
    }

    #[test]
    fn reserve_block_and_claim_assemble_compounds() {
        let mut ft = FrameTable::new_with_thp(&[1024], true);
        let head = ft.reserve_block(NodeId(0), MAX_PAGE_ORDER).unwrap();
        assert_eq!(head, Pfn(0));
        assert_eq!(ft.free_pages(NodeId(0)), 512);
        for i in 0..HUGE_PAGE_FRAMES {
            ft.claim(Pfn(head.0 + i as u32), key(i), PageType::Anon);
        }
        ft.validate_free_lists();
        assert_eq!(ft.used_pages(NodeId(0)), 512);
        // Freeing every frame merges the block back together.
        for i in 0..HUGE_PAGE_FRAMES {
            ft.free(Pfn(head.0 + i as u32));
        }
        ft.validate_free_lists();
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 2);
    }

    #[test]
    fn reserve_block_fails_when_fragmented() {
        let mut ft = FrameTable::new_with_thp(&[512], true);
        // Pin one page so no order-9 block can exist.
        let pinned = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        assert!(ft.reserve_block(NodeId(0), MAX_PAGE_ORDER).is_none());
        assert!(ft.reserve_block(NodeId(0), 8).is_some());
        ft.free(pinned);
    }

    #[test]
    fn reserve_page_extracts_target_from_a_large_block() {
        let mut ft = FrameTable::new_with_thp(&[1024], true);
        // Grab a frame from the middle of the second order-9 block.
        assert!(ft.reserve_page(Pfn(700)));
        ft.validate_free_lists();
        assert_eq!(ft.free_pages(NodeId(0)), 1023);
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 1);
        ft.claim(Pfn(700), key(1), PageType::Anon);
        assert!(!ft.reserve_page(Pfn(700)), "allocated frames not grabbable");
        ft.free(Pfn(700));
        ft.validate_free_lists();
        assert_eq!(ft.free_blocks(NodeId(0), MAX_PAGE_ORDER), 2);
    }

    #[test]
    fn unusable_free_index_tracks_fragmentation() {
        let mut ft = FrameTable::new_with_thp(&[1024], true);
        assert_eq!(ft.unusable_free_index(NodeId(0), MAX_PAGE_ORDER), 0.0);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        // 1023 free, one order-9 block (512 pages) still usable.
        let idx = ft.unusable_free_index(NodeId(0), MAX_PAGE_ORDER);
        let want = (1023.0 - 512.0) / 1023.0;
        assert!((idx - want).abs() < 1e-12, "{idx} vs {want}");
        assert_eq!(ft.unusable_free_index(NodeId(0), 0), 0.0);
        ft.free(pfn);
        assert_eq!(ft.unusable_free_index(NodeId(0), MAX_PAGE_ORDER), 0.0);
    }

    #[test]
    fn flat_mode_never_populates_higher_orders() {
        let mut ft = FrameTable::new(&[1024]);
        for o in 1..=MAX_PAGE_ORDER {
            assert_eq!(ft.free_blocks(NodeId(0), o), 0);
        }
        let a = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        let b = ft.alloc(NodeId(0), key(1), PageType::Anon).unwrap();
        ft.free(a);
        ft.free(b);
        ft.validate_free_lists();
        // No merging: everything stays at order 0.
        assert_eq!(ft.free_blocks(NodeId(0), 0), 1024);
        assert_eq!(ft.free_blocks(NodeId(0), 1), 0);
        // LIFO recycling: the most recently freed page comes back first.
        assert_eq!(ft.alloc(NodeId(0), key(2), PageType::Anon).unwrap(), b);
        assert_eq!(ft.alloc(NodeId(0), key(3), PageType::Anon).unwrap(), a);
    }
}
