//! The frame table: per-page physical metadata for every memory node.
//!
//! Like the kernel's `struct page` array, each physical frame has one
//! metadata entry, indexed by PFN. Nodes own contiguous PFN ranges. The
//! frame table also keeps the per-node free lists and free-page counts
//! that watermark logic consults.

use crate::error::AllocError;
use crate::flags::PageFlags;
use crate::lru::LruKind;
use crate::types::{NodeId, PageKey, PageType, Pfn};

/// Allocation state of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameState {
    /// The frame is on its node's free list.
    Free,
    /// The frame backs a virtual page.
    Allocated {
        /// The (process, virtual page) this frame backs. The simulator
        /// models private mappings, so each frame has exactly one owner —
        /// this doubles as the reverse map used by migration.
        owner: PageKey,
    },
}

/// Per-frame metadata (`struct page` analogue).
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    state: FrameState,
    page_type: PageType,
    flags: PageFlags,
    node: NodeId,
    /// Intrusive LRU linkage; `Pfn::NONE` when unlinked.
    pub(crate) lru_prev: u32,
    pub(crate) lru_next: u32,
    pub(crate) lru: Option<LruKind>,
    /// Decaying access-frequency counter (used by the AutoTiering
    /// baseline's timer-based hotness detection).
    hotness: u8,
    /// Simulation time of the last access, for reports.
    last_access_ns: u64,
}

impl Frame {
    fn unused(node: NodeId) -> Frame {
        Frame {
            state: FrameState::Free,
            page_type: PageType::Anon,
            flags: PageFlags::empty(),
            node,
            lru_prev: Pfn::NONE,
            lru_next: Pfn::NONE,
            lru: None,
            hotness: 0,
            last_access_ns: 0,
        }
    }

    /// Allocation state of the frame.
    #[inline]
    pub fn state(&self) -> FrameState {
        self.state
    }

    /// Whether the frame currently backs a page.
    #[inline]
    pub fn is_allocated(&self) -> bool {
        matches!(self.state, FrameState::Allocated { .. })
    }

    /// The owner of the frame, if allocated.
    #[inline]
    pub fn owner(&self) -> Option<PageKey> {
        match self.state {
            FrameState::Allocated { owner } => Some(owner),
            FrameState::Free => None,
        }
    }

    /// The page type (meaningful only while allocated).
    #[inline]
    pub fn page_type(&self) -> PageType {
        self.page_type
    }

    /// Current flag set.
    #[inline]
    pub fn flags(&self) -> PageFlags {
        self.flags
    }

    /// Mutable access to the flag set.
    #[inline]
    pub fn flags_mut(&mut self) -> &mut PageFlags {
        &mut self.flags
    }

    /// The node this frame physically belongs to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Which LRU list the frame is linked on, if any.
    #[inline]
    pub fn lru_kind(&self) -> Option<LruKind> {
        self.lru
    }

    /// The AutoTiering-style decaying hotness counter.
    #[inline]
    pub fn hotness(&self) -> u8 {
        self.hotness
    }

    /// Bumps the hotness counter (saturating).
    #[inline]
    pub fn touch_hotness(&mut self) {
        self.hotness = self.hotness.saturating_add(1);
    }

    /// Halves the hotness counter (the periodic decay tick).
    #[inline]
    pub fn decay_hotness(&mut self) {
        self.hotness /= 2;
    }

    /// Overwrites the hotness counter (used when migration carries state
    /// across nodes).
    #[inline]
    pub fn set_hotness(&mut self, hotness: u8) {
        self.hotness = hotness;
    }

    /// Time of last access, in simulation nanoseconds.
    #[inline]
    pub fn last_access_ns(&self) -> u64 {
        self.last_access_ns
    }

    /// Records an access time.
    #[inline]
    pub fn set_last_access_ns(&mut self, now_ns: u64) {
        self.last_access_ns = now_ns;
    }
}

/// The machine-wide frame table plus per-node free lists.
///
/// # Examples
///
/// ```
/// use tiered_mem::{FrameTable, NodeId, PageKey, PageType, Pid, Vpn};
///
/// let mut ft = FrameTable::new(&[128, 512]);
/// let owner = PageKey::new(Pid(1), Vpn(0));
/// let pfn = ft.alloc(NodeId(0), owner, PageType::Anon)?;
/// assert_eq!(ft.frame(pfn).owner(), Some(owner));
/// assert_eq!(ft.free_pages(NodeId(0)), 127);
/// ft.free(pfn);
/// assert_eq!(ft.free_pages(NodeId(0)), 128);
/// # Ok::<(), tiered_mem::AllocError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FrameTable {
    frames: Vec<Frame>,
    /// `node_start[n]..node_start[n+1]` is node `n`'s PFN range.
    node_start: Vec<u32>,
    /// Per-node stack of free PFNs.
    free_lists: Vec<Vec<Pfn>>,
}

impl FrameTable {
    /// Creates a frame table for nodes with the given capacities (pages).
    ///
    /// A zero-capacity node is allowed (e.g. a hot-removed or not-yet-
    /// onlined expander in a larger topology): every allocation on it
    /// fails with `NoMemory`, so fallback chains simply skip past it.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or the total exceeds `u32::MAX`
    /// frames.
    pub fn new(capacities: &[u64]) -> FrameTable {
        assert!(!capacities.is_empty(), "at least one memory node required");
        let total: u64 = capacities.iter().sum();
        assert!(total < u32::MAX as u64, "too many frames for 32-bit PFNs");
        let mut frames = Vec::with_capacity(total as usize);
        let mut node_start = Vec::with_capacity(capacities.len() + 1);
        let mut free_lists = Vec::with_capacity(capacities.len());
        let mut next: u32 = 0;
        for (i, &cap) in capacities.iter().enumerate() {
            let node = NodeId(i as u8);
            node_start.push(next);
            // Free list is popped from the back; push in reverse so low
            // PFNs are handed out first (deterministic, kernel-like).
            let mut list: Vec<Pfn> = (next..next + cap as u32).map(Pfn).rev().collect();
            list.shrink_to_fit();
            free_lists.push(list);
            for _ in 0..cap {
                frames.push(Frame::unused(node));
            }
            next += cap as u32;
        }
        node_start.push(next);
        FrameTable {
            frames,
            node_start,
            free_lists,
        }
    }

    /// Number of memory nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.free_lists.len()
    }

    /// Total capacity of `node` in pages.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[inline]
    pub fn capacity(&self, node: NodeId) -> u64 {
        let i = node.index();
        (self.node_start[i + 1] - self.node_start[i]) as u64
    }

    /// Current free pages on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[inline]
    pub fn free_pages(&self, node: NodeId) -> u64 {
        self.free_lists[node.index()].len() as u64
    }

    /// Pages currently allocated on `node`.
    #[inline]
    pub fn used_pages(&self, node: NodeId) -> u64 {
        self.capacity(node) - self.free_pages(node)
    }

    /// Whether `node` is a valid node id.
    #[inline]
    pub fn has_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// The PFN range owned by `node`.
    pub fn pfn_range(&self, node: NodeId) -> std::ops::Range<u32> {
        let i = node.index();
        self.node_start[i]..self.node_start[i + 1]
    }

    /// Shared access to a frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    #[inline]
    pub fn frame(&self, pfn: Pfn) -> &Frame {
        &self.frames[pfn.index()]
    }

    /// Mutable access to a frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    #[inline]
    pub fn frame_mut(&mut self, pfn: Pfn) -> &mut Frame {
        &mut self.frames[pfn.index()]
    }

    /// Allocates one page on `node` for `owner`.
    ///
    /// This is the raw buddy-allocator analogue: it performs **no**
    /// watermark checks — policies decide when a node is too full.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidNode`] if the node does not exist, or
    /// [`AllocError::NoMemory`] if the node's free list is empty.
    pub fn alloc(
        &mut self,
        node: NodeId,
        owner: PageKey,
        page_type: PageType,
    ) -> Result<Pfn, AllocError> {
        if !self.has_node(node) {
            return Err(AllocError::InvalidNode { node });
        }
        let pfn = self.free_lists[node.index()]
            .pop()
            .ok_or(AllocError::NoMemory { node })?;
        let frame = &mut self.frames[pfn.index()];
        debug_assert!(matches!(frame.state, FrameState::Free));
        frame.state = FrameState::Allocated { owner };
        frame.page_type = page_type;
        frame.flags = PageFlags::empty();
        frame.hotness = 0;
        frame.last_access_ns = 0;
        debug_assert!(frame.lru.is_none());
        Ok(pfn)
    }

    /// Releases `pfn` back to its node's free list, returning the previous
    /// owner.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free or still linked on an LRU list (callers
    /// must `lru` the page off first — mirroring the kernel invariant that
    /// a page must be isolated before being freed).
    pub fn free(&mut self, pfn: Pfn) -> PageKey {
        let frame = &mut self.frames[pfn.index()];
        let owner = match frame.state {
            FrameState::Allocated { owner } => owner,
            FrameState::Free => panic!("double free of {pfn}"),
        };
        assert!(
            frame.lru.is_none(),
            "{pfn} freed while still on LRU list {:?}",
            frame.lru
        );
        frame.state = FrameState::Free;
        frame.flags = PageFlags::empty();
        frame.hotness = 0;
        let node = frame.node;
        self.free_lists[node.index()].push(pfn);
        owner
    }

    /// Iterates over all allocated frames on `node`, in PFN order.
    pub fn allocated_on(&self, node: NodeId) -> impl Iterator<Item = Pfn> + '_ {
        self.pfn_range(node)
            .map(Pfn)
            .filter(move |p| self.frames[p.index()].is_allocated())
    }

    /// Counts allocated pages on `node` by accounting class
    /// `(anon, file_backed)`.
    pub fn usage_by_class(&self, node: NodeId) -> (u64, u64) {
        let mut anon = 0;
        let mut file = 0;
        for pfn in self.allocated_on(node) {
            if self.frames[pfn.index()].page_type.is_anon() {
                anon += 1;
            } else {
                file += 1;
            }
        }
        (anon, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Pid, Vpn};

    fn key(v: u64) -> PageKey {
        PageKey::new(Pid(1), Vpn(v))
    }

    #[test]
    fn nodes_get_contiguous_disjoint_ranges() {
        let ft = FrameTable::new(&[100, 200, 50]);
        assert_eq!(ft.node_count(), 3);
        assert_eq!(ft.pfn_range(NodeId(0)), 0..100);
        assert_eq!(ft.pfn_range(NodeId(1)), 100..300);
        assert_eq!(ft.pfn_range(NodeId(2)), 300..350);
        assert_eq!(ft.capacity(NodeId(1)), 200);
    }

    #[test]
    fn alloc_assigns_low_pfns_first_and_tracks_free_count() {
        let mut ft = FrameTable::new(&[10]);
        let p0 = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        let p1 = ft.alloc(NodeId(0), key(1), PageType::File).unwrap();
        assert_eq!(p0, Pfn(0));
        assert_eq!(p1, Pfn(1));
        assert_eq!(ft.free_pages(NodeId(0)), 8);
        assert_eq!(ft.used_pages(NodeId(0)), 2);
    }

    #[test]
    fn alloc_fails_when_node_exhausted() {
        let mut ft = FrameTable::new(&[2]);
        ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.alloc(NodeId(0), key(1), PageType::Anon).unwrap();
        assert_eq!(
            ft.alloc(NodeId(0), key(2), PageType::Anon),
            Err(AllocError::NoMemory { node: NodeId(0) })
        );
    }

    #[test]
    fn alloc_rejects_unknown_node() {
        let mut ft = FrameTable::new(&[2]);
        assert_eq!(
            ft.alloc(NodeId(7), key(0), PageType::Anon),
            Err(AllocError::InvalidNode { node: NodeId(7) })
        );
    }

    #[test]
    fn free_returns_owner_and_recycles_frame() {
        let mut ft = FrameTable::new(&[2]);
        let pfn = ft.alloc(NodeId(0), key(42), PageType::File).unwrap();
        assert_eq!(ft.free(pfn), key(42));
        assert_eq!(ft.free_pages(NodeId(0)), 2);
        // The freed frame is reusable.
        let pfn2 = ft.alloc(NodeId(0), key(43), PageType::Anon).unwrap();
        assert_eq!(pfn2, pfn);
        assert_eq!(ft.frame(pfn2).page_type(), PageType::Anon);
        assert!(ft.frame(pfn2).flags().is_empty());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut ft = FrameTable::new(&[2]);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.free(pfn);
        ft.free(pfn);
    }

    #[test]
    fn alloc_resets_stale_metadata() {
        let mut ft = FrameTable::new(&[1]);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.frame_mut(pfn).touch_hotness();
        ft.frame_mut(pfn).flags_mut().insert(PageFlags::DIRTY);
        ft.frame_mut(pfn).set_last_access_ns(99);
        ft.free(pfn);
        let pfn = ft.alloc(NodeId(0), key(1), PageType::File).unwrap();
        let f = ft.frame(pfn);
        assert_eq!(f.hotness(), 0);
        assert!(f.flags().is_empty());
        assert_eq!(f.last_access_ns(), 0);
    }

    #[test]
    fn hotness_saturates_and_decays() {
        let mut ft = FrameTable::new(&[1]);
        let pfn = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        for _ in 0..300 {
            ft.frame_mut(pfn).touch_hotness();
        }
        assert_eq!(ft.frame(pfn).hotness(), u8::MAX);
        ft.frame_mut(pfn).decay_hotness();
        assert_eq!(ft.frame(pfn).hotness(), 127);
    }

    #[test]
    fn usage_by_class_counts_tmpfs_as_file() {
        let mut ft = FrameTable::new(&[10]);
        ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        ft.alloc(NodeId(0), key(1), PageType::File).unwrap();
        ft.alloc(NodeId(0), key(2), PageType::Tmpfs).unwrap();
        assert_eq!(ft.usage_by_class(NodeId(0)), (1, 2));
    }

    #[test]
    fn allocated_on_lists_only_allocated_frames() {
        let mut ft = FrameTable::new(&[4, 4]);
        let a = ft.alloc(NodeId(0), key(0), PageType::Anon).unwrap();
        let b = ft.alloc(NodeId(1), key(1), PageType::Anon).unwrap();
        assert_eq!(ft.allocated_on(NodeId(0)).collect::<Vec<_>>(), vec![a]);
        assert_eq!(ft.allocated_on(NodeId(1)).collect::<Vec<_>>(), vec![b]);
    }
}
