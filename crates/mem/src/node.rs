//! Memory node descriptions: CPU-attached local DRAM vs. CPU-less
//! CXL-attached expanders.

use crate::lru::NodeLru;
use crate::types::{NodeId, NodeList};
use crate::watermark::{TppWatermarks, DEFAULT_DEMOTE_SCALE_BP};

/// The technology class of a memory node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// DRAM directly attached to a CPU socket: the fast tier.
    LocalDram,
    /// CXL-attached memory: appears as a CPU-less NUMA node with
    /// NUMA-like extra latency (paper §2).
    Cxl,
    /// CXL memory behind a switch (a shared/pooled expander): still a
    /// CPU-less NUMA node, but every access pays one or more extra
    /// switch hops on top of direct-attached CXL latency.
    CxlSwitched,
}

impl NodeKind {
    /// Whether this node has no CPUs (pages here are always "remote").
    #[inline]
    pub fn is_cpu_less(self) -> bool {
        matches!(self, NodeKind::Cxl | NodeKind::CxlSwitched)
    }

    /// Default idle load-to-use latency for this tier in nanoseconds.
    ///
    /// Local DRAM ~100 ns; CXL ~185 ns (the paper's target: NUMA-like,
    /// 50–100 ns over local DRAM); switch-attached CXL adds roughly one
    /// more NUMA hop's worth of latency per switch traversal.
    pub fn default_latency_ns(self) -> u64 {
        match self {
            NodeKind::LocalDram => 100,
            NodeKind::Cxl => 185,
            NodeKind::CxlSwitched => 270,
        }
    }

    /// Memory-tier rank: demotions move pages to a node of strictly
    /// greater rank (local DRAM → direct CXL → switched CXL pool).
    #[inline]
    pub fn tier_rank(self) -> u8 {
        match self {
            NodeKind::LocalDram => 0,
            NodeKind::Cxl => 1,
            NodeKind::CxlSwitched => 2,
        }
    }
}

/// Static + runtime state of one memory node (capacity lives in the frame
/// table; this carries policy-relevant configuration and the LRU lists).
#[derive(Clone, Debug)]
pub struct MemoryNode {
    id: NodeId,
    kind: NodeKind,
    latency_ns: u64,
    watermarks: TppWatermarks,
    /// Candidate demotion targets, nearest first (distance-derived,
    /// paper §5.1/§5.2). Empty for terminal tiers. Demoters pick the
    /// first entry with allocation headroom.
    demotion_order: NodeList,
    /// The LRU lists of this node.
    pub lru: NodeLru,
}

impl MemoryNode {
    /// Creates a node of `kind` with `capacity` pages' worth of watermarks
    /// and the default latency for its tier.
    pub fn new(id: NodeId, kind: NodeKind, capacity: u64) -> MemoryNode {
        MemoryNode {
            id,
            kind,
            latency_ns: kind.default_latency_ns(),
            watermarks: TppWatermarks::for_capacity(capacity, DEFAULT_DEMOTE_SCALE_BP),
            demotion_order: NodeList::new(),
            lru: NodeLru::new(id),
        }
    }

    /// The node id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The technology class.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Whether this node is CPU-less (a CXL expander).
    #[inline]
    pub fn is_cpu_less(&self) -> bool {
        self.kind.is_cpu_less()
    }

    /// Idle access latency in nanoseconds.
    #[inline]
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns
    }

    /// Overrides the access latency (for modelling different CXL device
    /// generations, FPGA prototypes, etc.).
    pub fn set_latency_ns(&mut self, ns: u64) {
        self.latency_ns = ns;
    }

    /// The watermark set of this node.
    #[inline]
    pub fn watermarks(&self) -> &TppWatermarks {
        &self.watermarks
    }

    /// Replaces the watermark set (e.g. to change `demote_scale_factor`).
    pub fn set_watermarks(&mut self, wm: TppWatermarks) {
        self.watermarks = wm;
    }

    /// Where demotions from this node should go by default: the nearest
    /// lower-tier node (the head of [`MemoryNode::demotion_order`]).
    #[inline]
    pub fn demotion_target(&self) -> Option<NodeId> {
        self.demotion_order.first().copied()
    }

    /// Sets the demotion target (single-entry demotion order).
    pub fn set_demotion_target(&mut self, target: Option<NodeId>) {
        let mut order = NodeList::new();
        if let Some(t) = target {
            order.push(t);
        }
        self.demotion_order = order;
    }

    /// Candidate demotion targets, nearest lower tier first. Empty for
    /// terminal tiers.
    #[inline]
    pub fn demotion_order(&self) -> &NodeList {
        &self.demotion_order
    }

    /// Replaces the demotion order (nearest first).
    pub fn set_demotion_order(&mut self, order: NodeList) {
        self.demotion_order = order;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert!(!NodeKind::LocalDram.is_cpu_less());
        assert!(NodeKind::Cxl.is_cpu_less());
        assert!(NodeKind::Cxl.default_latency_ns() > NodeKind::LocalDram.default_latency_ns());
        let extra = NodeKind::Cxl.default_latency_ns() - NodeKind::LocalDram.default_latency_ns();
        // Paper: CXL adds ~50–100 ns over normal DRAM access.
        assert!(
            (50..=100).contains(&extra),
            "extra latency {extra} out of range"
        );
    }

    #[test]
    fn switched_cxl_is_a_slower_lower_tier() {
        assert!(NodeKind::CxlSwitched.is_cpu_less());
        assert!(NodeKind::CxlSwitched.default_latency_ns() > NodeKind::Cxl.default_latency_ns());
        assert!(NodeKind::CxlSwitched.tier_rank() > NodeKind::Cxl.tier_rank());
        assert!(NodeKind::Cxl.tier_rank() > NodeKind::LocalDram.tier_rank());
    }

    #[test]
    fn demotion_order_backs_the_single_target_api() {
        let mut node = MemoryNode::new(NodeId(0), NodeKind::LocalDram, 1_000);
        assert!(node.demotion_order().is_empty());
        let order: NodeList = [NodeId(1), NodeId(2)].into_iter().collect();
        node.set_demotion_order(order);
        assert_eq!(node.demotion_target(), Some(NodeId(1)));
        node.set_demotion_target(Some(NodeId(2)));
        assert_eq!(node.demotion_order().as_slice(), &[NodeId(2)]);
        node.set_demotion_target(None);
        assert_eq!(node.demotion_target(), None);
    }

    #[test]
    fn node_construction_and_overrides() {
        let mut node = MemoryNode::new(NodeId(1), NodeKind::Cxl, 10_000);
        assert_eq!(node.id(), NodeId(1));
        assert!(node.is_cpu_less());
        assert_eq!(node.latency_ns(), 185);
        node.set_latency_ns(250); // FPGA prototype latency
        assert_eq!(node.latency_ns(), 250);
        assert_eq!(node.demotion_target(), None);
        node.set_demotion_target(Some(NodeId(2)));
        assert_eq!(node.demotion_target(), Some(NodeId(2)));
    }

    #[test]
    fn watermarks_scale_with_capacity() {
        // Distinct ids: a machine never holds two `NodeId(0)` nodes, and
        // `Memory::builder` debug-asserts exactly that.
        let small = MemoryNode::new(NodeId(0), NodeKind::LocalDram, 1_000);
        let large = MemoryNode::new(NodeId(1), NodeKind::LocalDram, 1_000_000);
        assert!(large.watermarks().demote_trigger > small.watermarks().demote_trigger);
    }
}
