//! Memory node descriptions: CPU-attached local DRAM vs. CPU-less
//! CXL-attached expanders.

use crate::lru::NodeLru;
use crate::types::NodeId;
use crate::watermark::{TppWatermarks, DEFAULT_DEMOTE_SCALE_BP};

/// The technology class of a memory node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// DRAM directly attached to a CPU socket: the fast tier.
    LocalDram,
    /// CXL-attached memory: appears as a CPU-less NUMA node with
    /// NUMA-like extra latency (paper §2).
    Cxl,
}

impl NodeKind {
    /// Whether this node has no CPUs (pages here are always "remote").
    #[inline]
    pub fn is_cpu_less(self) -> bool {
        matches!(self, NodeKind::Cxl)
    }

    /// Default idle load-to-use latency for this tier in nanoseconds.
    ///
    /// Local DRAM ~100 ns; CXL ~185 ns (the paper's target: NUMA-like,
    /// 50–100 ns over local DRAM).
    pub fn default_latency_ns(self) -> u64 {
        match self {
            NodeKind::LocalDram => 100,
            NodeKind::Cxl => 185,
        }
    }
}

/// Static + runtime state of one memory node (capacity lives in the frame
/// table; this carries policy-relevant configuration and the LRU lists).
#[derive(Clone, Debug)]
pub struct MemoryNode {
    id: NodeId,
    kind: NodeKind,
    latency_ns: u64,
    watermarks: TppWatermarks,
    /// Where demotions from this node go (distance-based static choice,
    /// paper §5.1). `None` for terminal tiers.
    demotion_target: Option<NodeId>,
    /// The LRU lists of this node.
    pub lru: NodeLru,
}

impl MemoryNode {
    /// Creates a node of `kind` with `capacity` pages' worth of watermarks
    /// and the default latency for its tier.
    pub fn new(id: NodeId, kind: NodeKind, capacity: u64) -> MemoryNode {
        MemoryNode {
            id,
            kind,
            latency_ns: kind.default_latency_ns(),
            watermarks: TppWatermarks::for_capacity(capacity, DEFAULT_DEMOTE_SCALE_BP),
            demotion_target: None,
            lru: NodeLru::new(id),
        }
    }

    /// The node id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The technology class.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Whether this node is CPU-less (a CXL expander).
    #[inline]
    pub fn is_cpu_less(&self) -> bool {
        self.kind.is_cpu_less()
    }

    /// Idle access latency in nanoseconds.
    #[inline]
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns
    }

    /// Overrides the access latency (for modelling different CXL device
    /// generations, FPGA prototypes, etc.).
    pub fn set_latency_ns(&mut self, ns: u64) {
        self.latency_ns = ns;
    }

    /// The watermark set of this node.
    #[inline]
    pub fn watermarks(&self) -> &TppWatermarks {
        &self.watermarks
    }

    /// Replaces the watermark set (e.g. to change `demote_scale_factor`).
    pub fn set_watermarks(&mut self, wm: TppWatermarks) {
        self.watermarks = wm;
    }

    /// Where demotions from this node should go.
    #[inline]
    pub fn demotion_target(&self) -> Option<NodeId> {
        self.demotion_target
    }

    /// Sets the demotion target.
    pub fn set_demotion_target(&mut self, target: Option<NodeId>) {
        self.demotion_target = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties() {
        assert!(!NodeKind::LocalDram.is_cpu_less());
        assert!(NodeKind::Cxl.is_cpu_less());
        assert!(NodeKind::Cxl.default_latency_ns() > NodeKind::LocalDram.default_latency_ns());
        let extra = NodeKind::Cxl.default_latency_ns() - NodeKind::LocalDram.default_latency_ns();
        // Paper: CXL adds ~50–100 ns over normal DRAM access.
        assert!(
            (50..=100).contains(&extra),
            "extra latency {extra} out of range"
        );
    }

    #[test]
    fn node_construction_and_overrides() {
        let mut node = MemoryNode::new(NodeId(1), NodeKind::Cxl, 10_000);
        assert_eq!(node.id(), NodeId(1));
        assert!(node.is_cpu_less());
        assert_eq!(node.latency_ns(), 185);
        node.set_latency_ns(250); // FPGA prototype latency
        assert_eq!(node.latency_ns(), 250);
        assert_eq!(node.demotion_target(), None);
        node.set_demotion_target(Some(NodeId(2)));
        assert_eq!(node.demotion_target(), Some(NodeId(2)));
    }

    #[test]
    fn watermarks_scale_with_capacity() {
        let small = MemoryNode::new(NodeId(0), NodeKind::LocalDram, 1_000);
        let large = MemoryNode::new(NodeId(0), NodeKind::LocalDram, 1_000_000);
        assert!(large.watermarks().demote_trigger > small.watermarks().demote_trigger);
    }
}
