//! A swap device model: the slow paging backend default Linux reclaims to.
//!
//! The paper's key observation (§4.1, §5.1) is that paging cold memory out
//! to a swap device is orders of magnitude slower than migrating it to a
//! CXL node. The device here is deliberately simple — a slot store with
//! occupancy accounting — while its *cost* (latency, bandwidth) lives in
//! the simulator's latency model.

use std::collections::HashMap;

use crate::error::SwapError;
use crate::types::PageKey;

/// Identifier of an occupied swap slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SwapSlot(pub u64);

/// A fixed-capacity swap device.
///
/// # Examples
///
/// ```
/// use tiered_mem::{PageKey, Pid, SwapDevice, Vpn};
///
/// let mut swap = SwapDevice::new(1024);
/// let key = PageKey::new(Pid(1), Vpn(7));
/// let slot = swap.swap_out(key)?;
/// assert_eq!(swap.used_slots(), 1);
/// assert_eq!(swap.swap_in(slot)?, key);
/// assert_eq!(swap.used_slots(), 0);
/// # Ok::<(), tiered_mem::SwapError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SwapDevice {
    capacity: u64,
    slots: HashMap<u64, PageKey>,
    next_slot: u64,
    total_outs: u64,
    total_ins: u64,
}

impl SwapDevice {
    /// Creates a swap device with room for `capacity` pages.
    pub fn new(capacity: u64) -> SwapDevice {
        SwapDevice {
            capacity,
            slots: HashMap::new(),
            next_slot: 0,
            total_outs: 0,
            total_ins: 0,
        }
    }

    /// Total slot capacity in pages.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently occupied slots.
    #[inline]
    pub fn used_slots(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Free slots remaining.
    #[inline]
    pub fn free_slots(&self) -> u64 {
        self.capacity - self.used_slots()
    }

    /// Lifetime count of pages written out.
    #[inline]
    pub fn total_swap_outs(&self) -> u64 {
        self.total_outs
    }

    /// Lifetime count of pages read back in.
    #[inline]
    pub fn total_swap_ins(&self) -> u64 {
        self.total_ins
    }

    /// Writes a page out, returning the slot that now holds it.
    ///
    /// # Errors
    ///
    /// [`SwapError::Full`] if no slot is free.
    pub fn swap_out(&mut self, owner: PageKey) -> Result<SwapSlot, SwapError> {
        if self.used_slots() >= self.capacity {
            return Err(SwapError::Full);
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(slot, owner);
        self.total_outs += 1;
        Ok(SwapSlot(slot))
    }

    /// Reads a page back in, freeing its slot and returning the owner.
    ///
    /// # Errors
    ///
    /// [`SwapError::BadSlot`] if the slot is empty or unknown.
    pub fn swap_in(&mut self, slot: SwapSlot) -> Result<PageKey, SwapError> {
        let owner = self.slots.remove(&slot.0).ok_or(SwapError::BadSlot)?;
        self.total_ins += 1;
        Ok(owner)
    }

    /// Drops a slot without a read (e.g. the owning process exited).
    ///
    /// # Errors
    ///
    /// [`SwapError::BadSlot`] if the slot is empty or unknown.
    pub fn discard(&mut self, slot: SwapSlot) -> Result<PageKey, SwapError> {
        self.slots.remove(&slot.0).ok_or(SwapError::BadSlot)
    }

    /// The owner a slot holds, if occupied.
    pub fn peek(&self, slot: SwapSlot) -> Option<PageKey> {
        self.slots.get(&slot.0).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Pid, Vpn};

    fn key(v: u64) -> PageKey {
        PageKey::new(Pid(1), Vpn(v))
    }

    #[test]
    fn swap_out_in_round_trip() {
        let mut dev = SwapDevice::new(2);
        let s0 = dev.swap_out(key(0)).unwrap();
        let s1 = dev.swap_out(key(1)).unwrap();
        assert_ne!(s0, s1);
        assert_eq!(dev.swap_in(s0).unwrap(), key(0));
        assert_eq!(dev.swap_in(s1).unwrap(), key(1));
        assert_eq!(dev.used_slots(), 0);
        assert_eq!(dev.total_swap_outs(), 2);
        assert_eq!(dev.total_swap_ins(), 2);
    }

    #[test]
    fn full_device_rejects_swap_out() {
        let mut dev = SwapDevice::new(1);
        dev.swap_out(key(0)).unwrap();
        assert_eq!(dev.swap_out(key(1)), Err(SwapError::Full));
        // After freeing a slot it works again.
        let slot = SwapSlot(0);
        dev.swap_in(slot).unwrap();
        assert!(dev.swap_out(key(1)).is_ok());
    }

    #[test]
    fn swap_in_unknown_slot_fails() {
        let mut dev = SwapDevice::new(4);
        assert_eq!(dev.swap_in(SwapSlot(99)), Err(SwapError::BadSlot));
        let s = dev.swap_out(key(0)).unwrap();
        dev.swap_in(s).unwrap();
        // Slots are not reusable once consumed.
        assert_eq!(dev.swap_in(s), Err(SwapError::BadSlot));
    }

    #[test]
    fn discard_frees_without_counting_a_read() {
        let mut dev = SwapDevice::new(4);
        let s = dev.swap_out(key(3)).unwrap();
        assert_eq!(dev.peek(s), Some(key(3)));
        assert_eq!(dev.discard(s).unwrap(), key(3));
        assert_eq!(dev.total_swap_ins(), 0);
        assert_eq!(dev.used_slots(), 0);
    }

    #[test]
    fn zero_capacity_device_always_full() {
        let mut dev = SwapDevice::new(0);
        assert_eq!(dev.swap_out(key(0)), Err(SwapError::Full));
        assert_eq!(dev.free_slots(), 0);
    }
}
