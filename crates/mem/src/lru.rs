//! Per-node LRU lists: `active`/`inactive` × `anon`/`file`, implemented as
//! intrusive doubly-linked lists through the frame table (O(1) isolate,
//! exactly like the kernel's `struct lruvec`).
//!
//! The LRU is the heart of both reclaim (demotion candidates come from the
//! inactive tails, §5.1) and TPP's promotion filter (only pages found on an
//! *active* list are promoted, §5.3).

use crate::flags::PageFlags;
use crate::frame::FrameTable;
use crate::types::{NodeId, PageType, Pfn};

/// Which of the four LRU lists a page is on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LruKind {
    /// Active anonymous pages.
    AnonActive,
    /// Inactive anonymous pages.
    AnonInactive,
    /// Active file-backed pages (includes tmpfs).
    FileActive,
    /// Inactive file-backed pages (includes tmpfs).
    FileInactive,
}

impl LruKind {
    /// All list kinds in a stable order.
    pub const ALL: [LruKind; 4] = [
        LruKind::AnonActive,
        LruKind::AnonInactive,
        LruKind::FileActive,
        LruKind::FileInactive,
    ];

    /// The list a page of `page_type` belongs on given its activity.
    pub fn for_page(page_type: PageType, active: bool) -> LruKind {
        match (page_type.is_anon(), active) {
            (true, true) => LruKind::AnonActive,
            (true, false) => LruKind::AnonInactive,
            (false, true) => LruKind::FileActive,
            (false, false) => LruKind::FileInactive,
        }
    }

    /// Whether this is an active list.
    #[inline]
    pub fn is_active(self) -> bool {
        matches!(self, LruKind::AnonActive | LruKind::FileActive)
    }

    /// Whether this is an anon list.
    #[inline]
    pub fn is_anon(self) -> bool {
        matches!(self, LruKind::AnonActive | LruKind::AnonInactive)
    }

    /// The active/inactive counterpart within the same class.
    pub fn counterpart(self) -> LruKind {
        match self {
            LruKind::AnonActive => LruKind::AnonInactive,
            LruKind::AnonInactive => LruKind::AnonActive,
            LruKind::FileActive => LruKind::FileInactive,
            LruKind::FileInactive => LruKind::FileActive,
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            LruKind::AnonActive => 0,
            LruKind::AnonInactive => 1,
            LruKind::FileActive => 2,
            LruKind::FileInactive => 3,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct ListHead {
    head: u32,
    tail: u32,
    len: u64,
}

impl ListHead {
    const fn empty() -> ListHead {
        ListHead {
            head: Pfn::NONE,
            tail: Pfn::NONE,
            len: 0,
        }
    }
}

/// The four LRU lists of one memory node.
///
/// All operations take the [`FrameTable`] explicitly because the linkage is
/// intrusive: `Frame` carries `prev`/`next` indices.
///
/// # Examples
///
/// ```
/// use tiered_mem::{FrameTable, LruKind, NodeId, NodeLru, PageKey, PageType, Pid, Vpn};
///
/// let mut ft = FrameTable::new(&[16]);
/// let mut lru = NodeLru::new(NodeId(0));
/// let pfn = ft.alloc(NodeId(0), PageKey::new(Pid(1), Vpn(0)), PageType::Anon)?;
/// lru.push_front(&mut ft, LruKind::AnonActive, pfn);
/// assert_eq!(lru.len(LruKind::AnonActive), 1);
/// assert_eq!(lru.pop_back(&mut ft, LruKind::AnonActive), Some(pfn));
/// # Ok::<(), tiered_mem::AllocError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NodeLru {
    node: NodeId,
    lists: [ListHead; 4],
}

impl NodeLru {
    /// Creates empty LRU lists for `node`.
    pub fn new(node: NodeId) -> NodeLru {
        NodeLru {
            node,
            lists: [ListHead::empty(); 4],
        }
    }

    /// The node these lists belong to.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of pages on the given list.
    #[inline]
    pub fn len(&self, kind: LruKind) -> u64 {
        self.lists[kind.idx()].len
    }

    /// Whether the given list is empty.
    #[inline]
    pub fn is_empty(&self, kind: LruKind) -> bool {
        self.len(kind) == 0
    }

    /// Total pages across all four lists.
    pub fn total(&self) -> u64 {
        self.lists.iter().map(|l| l.len).sum()
    }

    /// Pages on the anon lists (active + inactive).
    pub fn anon_total(&self) -> u64 {
        self.len(LruKind::AnonActive) + self.len(LruKind::AnonInactive)
    }

    /// Pages on the file lists (active + inactive).
    pub fn file_total(&self) -> u64 {
        self.len(LruKind::FileActive) + self.len(LruKind::FileInactive)
    }

    /// Links `pfn` at the MRU (head) end of `kind`.
    ///
    /// Keeps the frame's `ACTIVE` flag in sync with the list it is on.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already on a list, is not allocated, or
    /// belongs to a different node.
    pub fn push_front(&mut self, ft: &mut FrameTable, kind: LruKind, pfn: Pfn) {
        self.link(ft, kind, pfn, true);
    }

    /// Links `pfn` at the LRU (tail) end of `kind` — used when rotating a
    /// second-chance page to the cold end.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NodeLru::push_front`].
    pub fn push_back(&mut self, ft: &mut FrameTable, kind: LruKind, pfn: Pfn) {
        self.link(ft, kind, pfn, false);
    }

    fn link(&mut self, ft: &mut FrameTable, kind: LruKind, pfn: Pfn, at_head: bool) {
        {
            let frame = ft.frame(pfn);
            assert!(frame.is_allocated(), "{pfn} linked while free");
            assert_eq!(frame.node(), self.node, "{pfn} belongs to another node");
            assert!(
                frame.lru_kind().is_none(),
                "{pfn} already on {:?}",
                frame.lru_kind()
            );
            debug_assert_eq!(
                frame.page_type().is_anon(),
                kind.is_anon(),
                "{pfn} type {:?} on wrong class list {kind:?}",
                frame.page_type()
            );
        }
        let list = &mut self.lists[kind.idx()];
        let frame = ft.frame_mut(pfn);
        frame.lru = Some(kind);
        frame.flags_mut().set(PageFlags::ACTIVE, kind.is_active());
        if list.len == 0 {
            frame.lru_prev = Pfn::NONE;
            frame.lru_next = Pfn::NONE;
            list.head = pfn.0;
            list.tail = pfn.0;
        } else if at_head {
            frame.lru_prev = Pfn::NONE;
            frame.lru_next = list.head;
            let old_head = Pfn(list.head);
            ft.frame_mut(old_head).lru_prev = pfn.0;
            list.head = pfn.0;
        } else {
            frame.lru_next = Pfn::NONE;
            frame.lru_prev = list.tail;
            let old_tail = Pfn(list.tail);
            ft.frame_mut(old_tail).lru_next = pfn.0;
            list.tail = pfn.0;
        }
        self.lists[kind.idx()].len += 1;
    }

    /// Unlinks `pfn` from whatever list it is on (page isolation).
    ///
    /// Returns the list it was on, or `None` if it was not linked.
    pub fn remove(&mut self, ft: &mut FrameTable, pfn: Pfn) -> Option<LruKind> {
        let kind = ft.frame(pfn).lru_kind()?;
        debug_assert_eq!(ft.frame(pfn).node(), self.node);
        let (prev, next) = {
            let frame = ft.frame(pfn);
            (frame.lru_prev, frame.lru_next)
        };
        let list = &mut self.lists[kind.idx()];
        if prev == Pfn::NONE {
            list.head = next;
        } else {
            ft.frame_mut(Pfn(prev)).lru_next = next;
        }
        if next == Pfn::NONE {
            self.lists[kind.idx()].tail = prev;
        } else {
            ft.frame_mut(Pfn(next)).lru_prev = prev;
        }
        self.lists[kind.idx()].len -= 1;
        let frame = ft.frame_mut(pfn);
        frame.lru = None;
        frame.lru_prev = Pfn::NONE;
        frame.lru_next = Pfn::NONE;
        frame.flags_mut().remove(PageFlags::ACTIVE);
        Some(kind)
    }

    /// Peeks at the coldest (tail) page of `kind` without unlinking it.
    pub fn peek_back(&self, kind: LruKind) -> Option<Pfn> {
        let list = &self.lists[kind.idx()];
        if list.len == 0 {
            None
        } else {
            Some(Pfn(list.tail))
        }
    }

    /// Unlinks and returns the coldest (tail) page of `kind`.
    pub fn pop_back(&mut self, ft: &mut FrameTable, kind: LruKind) -> Option<Pfn> {
        let pfn = self.peek_back(kind)?;
        self.remove(ft, pfn);
        Some(pfn)
    }

    /// Moves `pfn` to the MRU end of its current list.
    ///
    /// # Panics
    ///
    /// Panics if the page is not on any list.
    pub fn move_to_front(&mut self, ft: &mut FrameTable, pfn: Pfn) {
        let kind = self
            .remove(ft, pfn)
            .unwrap_or_else(|| panic!("{pfn} not on an LRU list"));
        self.push_front(ft, kind, pfn);
    }

    /// Moves `pfn` from an inactive list to the head of the matching active
    /// list (`activate_page` analogue). No-op if already active.
    ///
    /// # Panics
    ///
    /// Panics if the page is not on any list.
    pub fn activate(&mut self, ft: &mut FrameTable, pfn: Pfn) {
        let kind = ft
            .frame(pfn)
            .lru_kind()
            .unwrap_or_else(|| panic!("{pfn} not on an LRU list"));
        if kind.is_active() {
            return;
        }
        self.remove(ft, pfn);
        self.push_front(ft, kind.counterpart(), pfn);
    }

    /// Moves `pfn` from an active list to the head of the matching inactive
    /// list (`deactivate_page` analogue). No-op if already inactive.
    ///
    /// # Panics
    ///
    /// Panics if the page is not on any list.
    pub fn deactivate(&mut self, ft: &mut FrameTable, pfn: Pfn) {
        let kind = ft
            .frame(pfn)
            .lru_kind()
            .unwrap_or_else(|| panic!("{pfn} not on an LRU list"));
        if !kind.is_active() {
            return;
        }
        self.remove(ft, pfn);
        self.push_front(ft, kind.counterpart(), pfn);
    }

    /// Collects up to `max` PFNs from the tail of `kind` without unlinking
    /// them (a scan window for reclaim heuristics).
    pub fn tail_window(&self, ft: &FrameTable, kind: LruKind, max: usize) -> Vec<Pfn> {
        let mut out = Vec::with_capacity(max.min(self.len(kind) as usize));
        self.tail_window_into(ft, kind, max, &mut out);
        out
    }

    /// Like [`NodeLru::tail_window`], but appends into a caller-owned
    /// scratch buffer (cleared first) instead of allocating — reclaim and
    /// demotion call this every tick.
    pub fn tail_window_into(&self, ft: &FrameTable, kind: LruKind, max: usize, out: &mut Vec<Pfn>) {
        out.clear();
        let mut cur = self.lists[kind.idx()].tail;
        while cur != Pfn::NONE && out.len() < max {
            out.push(Pfn(cur));
            cur = ft.frame(Pfn(cur)).lru_prev;
        }
    }

    /// Walks the full list from head (MRU) to tail (LRU). Intended for
    /// tests and validation, not hot paths.
    pub fn collect(&self, ft: &FrameTable, kind: LruKind) -> Vec<Pfn> {
        let mut out = Vec::with_capacity(self.len(kind) as usize);
        self.collect_into(ft, kind, &mut out);
        out
    }

    /// Like [`NodeLru::collect`], but reuses a caller-owned buffer
    /// (cleared first) instead of allocating.
    pub fn collect_into(&self, ft: &FrameTable, kind: LruKind, out: &mut Vec<Pfn>) {
        out.clear();
        let mut cur = self.lists[kind.idx()].head;
        while cur != Pfn::NONE {
            out.push(Pfn(cur));
            cur = ft.frame(Pfn(cur)).lru_next;
        }
    }

    /// Exhaustively checks linkage invariants (lengths, back-pointers,
    /// membership tags, flag sync). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn validate(&self, ft: &FrameTable) {
        for kind in LruKind::ALL {
            let pages = self.collect(ft, kind);
            assert_eq!(
                pages.len() as u64,
                self.len(kind),
                "len mismatch on {kind:?}"
            );
            let mut prev = Pfn::NONE;
            for &pfn in &pages {
                let frame = ft.frame(pfn);
                assert_eq!(frame.lru_kind(), Some(kind));
                assert_eq!(frame.node(), self.node);
                assert_eq!(frame.lru_prev, prev, "bad prev link at {pfn}");
                assert_eq!(frame.flags().contains(PageFlags::ACTIVE), kind.is_active());
                prev = pfn.0;
            }
            let list = &self.lists[kind.idx()];
            if pages.is_empty() {
                assert_eq!(list.head, Pfn::NONE);
                assert_eq!(list.tail, Pfn::NONE);
            } else {
                assert_eq!(list.head, pages[0].0);
                assert_eq!(list.tail, pages[pages.len() - 1].0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PageKey, Pid, Vpn};

    fn setup(n: u64) -> (FrameTable, NodeLru, Vec<Pfn>) {
        let mut ft = FrameTable::new(&[n]);
        let lru = NodeLru::new(NodeId(0));
        let pfns = (0..n)
            .map(|i| {
                ft.alloc(NodeId(0), PageKey::new(Pid(1), Vpn(i)), PageType::Anon)
                    .unwrap()
            })
            .collect();
        (ft, lru, pfns)
    }

    #[test]
    fn push_front_orders_mru_to_lru() {
        let (mut ft, mut lru, p) = setup(3);
        for &pfn in &p {
            lru.push_front(&mut ft, LruKind::AnonInactive, pfn);
        }
        assert_eq!(
            lru.collect(&ft, LruKind::AnonInactive),
            vec![p[2], p[1], p[0]]
        );
        lru.validate(&ft);
    }

    #[test]
    fn push_back_appends_at_cold_end() {
        let (mut ft, mut lru, p) = setup(3);
        lru.push_front(&mut ft, LruKind::AnonInactive, p[0]);
        lru.push_back(&mut ft, LruKind::AnonInactive, p[1]);
        assert_eq!(lru.collect(&ft, LruKind::AnonInactive), vec![p[0], p[1]]);
        assert_eq!(lru.peek_back(LruKind::AnonInactive), Some(p[1]));
        lru.validate(&ft);
    }

    #[test]
    fn pop_back_takes_coldest() {
        let (mut ft, mut lru, p) = setup(3);
        for &pfn in &p {
            lru.push_front(&mut ft, LruKind::AnonInactive, pfn);
        }
        assert_eq!(lru.pop_back(&mut ft, LruKind::AnonInactive), Some(p[0]));
        assert_eq!(lru.pop_back(&mut ft, LruKind::AnonInactive), Some(p[1]));
        assert_eq!(lru.pop_back(&mut ft, LruKind::AnonInactive), Some(p[2]));
        assert_eq!(lru.pop_back(&mut ft, LruKind::AnonInactive), None);
        lru.validate(&ft);
    }

    #[test]
    fn remove_from_middle_relinks_neighbours() {
        let (mut ft, mut lru, p) = setup(3);
        for &pfn in &p {
            lru.push_front(&mut ft, LruKind::AnonActive, pfn);
        }
        assert_eq!(lru.remove(&mut ft, p[1]), Some(LruKind::AnonActive));
        assert_eq!(lru.collect(&ft, LruKind::AnonActive), vec![p[2], p[0]]);
        assert_eq!(lru.len(LruKind::AnonActive), 2);
        assert!(ft.frame(p[1]).lru_kind().is_none());
        lru.validate(&ft);
    }

    #[test]
    fn remove_unlinked_page_is_none() {
        let (mut ft, mut lru, p) = setup(1);
        assert_eq!(lru.remove(&mut ft, p[0]), None);
    }

    #[test]
    fn activate_moves_between_lists_and_sets_flag() {
        let (mut ft, mut lru, p) = setup(2);
        lru.push_front(&mut ft, LruKind::AnonInactive, p[0]);
        assert!(!ft.frame(p[0]).flags().contains(PageFlags::ACTIVE));
        lru.activate(&mut ft, p[0]);
        assert_eq!(ft.frame(p[0]).lru_kind(), Some(LruKind::AnonActive));
        assert!(ft.frame(p[0]).flags().contains(PageFlags::ACTIVE));
        // Idempotent.
        lru.activate(&mut ft, p[0]);
        assert_eq!(lru.len(LruKind::AnonActive), 1);
        assert_eq!(lru.len(LruKind::AnonInactive), 0);
        lru.validate(&ft);
    }

    #[test]
    fn deactivate_is_the_inverse() {
        let (mut ft, mut lru, p) = setup(1);
        lru.push_front(&mut ft, LruKind::AnonActive, p[0]);
        lru.deactivate(&mut ft, p[0]);
        assert_eq!(ft.frame(p[0]).lru_kind(), Some(LruKind::AnonInactive));
        assert!(!ft.frame(p[0]).flags().contains(PageFlags::ACTIVE));
        lru.validate(&ft);
    }

    #[test]
    fn move_to_front_rotates() {
        let (mut ft, mut lru, p) = setup(3);
        for &pfn in &p {
            lru.push_front(&mut ft, LruKind::AnonInactive, pfn);
        }
        lru.move_to_front(&mut ft, p[0]);
        assert_eq!(
            lru.collect(&ft, LruKind::AnonInactive),
            vec![p[0], p[2], p[1]]
        );
        lru.validate(&ft);
    }

    #[test]
    fn tail_window_reports_coldest_first() {
        let (mut ft, mut lru, p) = setup(4);
        for &pfn in &p {
            lru.push_front(&mut ft, LruKind::AnonInactive, pfn);
        }
        assert_eq!(
            lru.tail_window(&ft, LruKind::AnonInactive, 2),
            vec![p[0], p[1]]
        );
        assert_eq!(lru.tail_window(&ft, LruKind::AnonInactive, 99).len(), 4);
        // Window does not unlink anything.
        assert_eq!(lru.len(LruKind::AnonInactive), 4);
    }

    #[test]
    fn into_variants_clear_and_refill_scratch() {
        let (mut ft, mut lru, p) = setup(3);
        for &pfn in &p {
            lru.push_front(&mut ft, LruKind::AnonInactive, pfn);
        }
        let mut scratch = vec![Pfn(999); 7];
        lru.tail_window_into(&ft, LruKind::AnonInactive, 2, &mut scratch);
        assert_eq!(scratch, vec![p[0], p[1]]);
        lru.collect_into(&ft, LruKind::AnonInactive, &mut scratch);
        assert_eq!(scratch, vec![p[2], p[1], p[0]]);
    }

    #[test]
    #[should_panic(expected = "already on")]
    fn double_link_panics() {
        let (mut ft, mut lru, p) = setup(1);
        lru.push_front(&mut ft, LruKind::AnonInactive, p[0]);
        lru.push_front(&mut ft, LruKind::AnonActive, p[0]);
    }

    #[test]
    fn file_pages_track_file_lists() {
        let mut ft = FrameTable::new(&[4]);
        let mut lru = NodeLru::new(NodeId(0));
        let f = ft
            .alloc(NodeId(0), PageKey::new(Pid(1), Vpn(0)), PageType::Tmpfs)
            .unwrap();
        lru.push_front(&mut ft, LruKind::FileInactive, f);
        assert_eq!(lru.file_total(), 1);
        assert_eq!(lru.anon_total(), 0);
        assert_eq!(lru.total(), 1);
    }

    #[test]
    fn kind_helpers() {
        assert_eq!(LruKind::for_page(PageType::Anon, true), LruKind::AnonActive);
        assert_eq!(
            LruKind::for_page(PageType::Tmpfs, false),
            LruKind::FileInactive
        );
        assert_eq!(LruKind::AnonActive.counterpart(), LruKind::AnonInactive);
        assert_eq!(LruKind::FileInactive.counterpart(), LruKind::FileActive);
        assert!(LruKind::FileActive.is_active());
        assert!(!LruKind::FileActive.is_anon());
    }
}
