//! Machine topology: nodes, NUMA distances, and link properties.
//!
//! The paper's machines are multi-NUMA: allocation falls back by node
//! distance, demotion targets the *nearest* lower-tier node with headroom
//! (§5.2), and promotion pulls pages to the accessing CPU's socket. A
//! [`Topology`] describes such a machine — N nodes of any [`NodeKind`]
//! (CPU sockets, direct-attached CXL expanders, switch-attached CXL
//! pools), a symmetric NUMA distance matrix, and per-link latency /
//! bandwidth / hop counts — and *derives* the orders the placement
//! policies consume:
//!
//! * [`Topology::fallback_order`] — allocation fallback, nearest first,
//! * [`Topology::demotion_order`] — lower-tier candidates, nearest first,
//! * [`Topology::migrate_hops`] — link hops a page copy traverses.
//!
//! The default distance matrix is `10` on the diagonal and
//! `10 + 10·|i−j|` off it, which makes the derived orders on machines
//! built through `Memory::builder().node(..)` identical to the id-delta
//! ordering used before topologies existed — existing two-node results
//! are bit-for-bit unchanged.

use crate::node::NodeKind;
use crate::types::{NodeId, NodeList};

/// Distance of a node to itself, matching Linux's `LOCAL_DISTANCE`.
pub const LOCAL_DISTANCE: u16 = 10;

/// Properties of the link attaching a node to the memory fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Link {
    /// Link hops between a CPU and this node (1 = direct attach; each
    /// CXL switch traversal adds one). Migration cost scales with the
    /// larger hop count of the two endpoints.
    pub hops: u8,
    /// Nominal link bandwidth in GB/s (descriptive; the simulator charges
    /// latency per operation, bandwidth bounds live in daemon budgets).
    pub gbps: u32,
}

impl Link {
    /// Default link for a node kind: DDR channels for sockets, a x8 CXL
    /// link for direct expanders, one extra switch hop for pools.
    pub fn for_kind(kind: NodeKind) -> Link {
        match kind {
            NodeKind::LocalDram => Link { hops: 1, gbps: 120 },
            NodeKind::Cxl => Link { hops: 1, gbps: 32 },
            NodeKind::CxlSwitched => Link { hops: 2, gbps: 28 },
        }
    }
}

/// One node of a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct TopoNode {
    kind: NodeKind,
    capacity: u64,
    latency_ns: Option<u64>,
    link: Link,
}

/// A machine description: memory nodes plus the NUMA distance matrix
/// placement decisions are derived from.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Topology {
    nodes: Vec<TopoNode>,
    /// Sparse symmetric distance overrides `(a, b, distance)` with
    /// `a < b`; everything else uses the id-delta default.
    overrides: Vec<(u8, u8, u16)>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Appends a node of `kind` with `capacity` pages, default latency
    /// and link. Returns the new node's id (ids are dense, in insertion
    /// order).
    pub fn node(&mut self, kind: NodeKind, capacity: u64) -> NodeId {
        self.node_full(kind, capacity, None, Link::for_kind(kind))
    }

    /// Appends a node with an explicit idle access latency.
    pub fn node_with_latency(&mut self, kind: NodeKind, capacity: u64, latency_ns: u64) -> NodeId {
        self.node_full(kind, capacity, Some(latency_ns), Link::for_kind(kind))
    }

    /// Appends a node with full control over latency and link properties.
    pub fn node_full(
        &mut self,
        kind: NodeKind,
        capacity: u64,
        latency_ns: Option<u64>,
        link: Link,
    ) -> NodeId {
        assert!(
            self.nodes.len() < NodeList::CAPACITY,
            "machine has more than {} nodes",
            NodeList::CAPACITY
        );
        self.nodes.push(TopoNode {
            kind,
            capacity,
            latency_ns,
            link,
        });
        NodeId((self.nodes.len() - 1) as u8)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, in order (dense: `0..len`).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u8))
    }

    /// The technology class of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.index()].kind
    }

    /// Capacity of `node` in pages.
    pub fn capacity(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].capacity
    }

    /// Idle access latency of `node`: the explicit override if one was
    /// given, else the kind default.
    pub fn resolved_latency_ns(&self, node: NodeId) -> u64 {
        let n = &self.nodes[node.index()];
        n.latency_ns.unwrap_or_else(|| n.kind.default_latency_ns())
    }

    /// Link properties of `node`.
    pub fn link(&self, node: NodeId) -> Link {
        self.nodes[node.index()].link
    }

    /// Sets the (symmetric) NUMA distance between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-distance is fixed at
    /// [`LOCAL_DISTANCE`]) or either id is out of range.
    pub fn set_distance(&mut self, a: NodeId, b: NodeId, distance: u16) {
        assert!(a != b, "self-distance is fixed at {LOCAL_DISTANCE}");
        assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(entry) = self
            .overrides
            .iter_mut()
            .find(|(x, y, _)| *x == lo && *y == hi)
        {
            entry.2 = distance;
        } else {
            self.overrides.push((lo, hi, distance));
        }
    }

    /// NUMA distance between two nodes: an explicit override if set, else
    /// `10 + 10·|a−b|` (`10` on the diagonal) — the id-delta default that
    /// reproduces pre-topology behaviour.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u16 {
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.overrides
            .iter()
            .find(|(x, y, _)| *x == lo && *y == hi)
            .map(|(_, _, d)| *d)
            .unwrap_or(LOCAL_DISTANCE + LOCAL_DISTANCE * (hi - lo) as u16)
    }

    /// The full distance matrix, row-major (`matrix[a][b]`).
    pub fn matrix(&self) -> Vec<Vec<u16>> {
        self.ids()
            .map(|a| self.ids().map(|b| self.distance(a, b)).collect())
            .collect()
    }

    /// Allocation fallback order from `from`: every node, nearest first
    /// (ties broken by id, so `from` itself always sorts first).
    pub fn fallback_order(&self, from: NodeId) -> NodeList {
        let mut ids: NodeList = self.ids().collect();
        ids.sort_by_key(|n| (self.distance(from, n), n.0));
        ids
    }

    /// Demotion candidates from `from`: nodes of strictly lower tier
    /// (greater [`NodeKind::tier_rank`]), nearest first. Empty for
    /// terminal tiers. Demoters pick the first entry with allocation
    /// headroom (§5.2), falling back to the head.
    pub fn demotion_order(&self, from: NodeId) -> NodeList {
        let rank = self.kind(from).tier_rank();
        let mut ids: NodeList = self
            .ids()
            .filter(|&n| self.kind(n).tier_rank() > rank)
            .collect();
        ids.sort_by_key(|n| (self.distance(from, n), n.0));
        ids
    }

    /// Link hops a page copy between `a` and `b` traverses: the larger
    /// hop count of the two endpoints. Direct-attached pairs copy in one
    /// hop; a switch-attached pool adds one per switch traversal.
    pub fn migrate_hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.link(a).hops.max(self.link(b).hops) as u32
    }

    /// First CPU-attached node, by id — the conventional default home
    /// node for processes without an explicit socket binding.
    pub fn first_local(&self) -> Option<NodeId> {
        self.ids().find(|&n| !self.kind(n).is_cpu_less())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Topology {
        let mut t = Topology::new();
        t.node(NodeKind::LocalDram, 64);
        t.node(NodeKind::Cxl, 256);
        t
    }

    #[test]
    fn default_distances_mirror_id_delta() {
        let mut t = two_node();
        t.node(NodeKind::Cxl, 64);
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 10);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 20);
        assert_eq!(t.distance(NodeId(0), NodeId(2)), 30);
        assert_eq!(t.distance(NodeId(2), NodeId(0)), 30, "symmetric");
        assert_eq!(t.matrix()[1], vec![20, 10, 20]);
    }

    #[test]
    fn overrides_are_symmetric_and_reorder_fallback() {
        let mut t = Topology::new();
        t.node(NodeKind::LocalDram, 64); // 0
        t.node(NodeKind::LocalDram, 64); // 1: other socket
        t.node(NodeKind::Cxl, 64); // 2: socket 0's expander
        t.set_distance(NodeId(0), NodeId(1), 21);
        t.set_distance(NodeId(0), NodeId(2), 14);
        assert_eq!(t.distance(NodeId(2), NodeId(0)), 14);
        // Own expander now sorts before the remote socket.
        assert_eq!(
            t.fallback_order(NodeId(0)).as_slice(),
            &[NodeId(0), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn fallback_order_matches_pre_topology_sort() {
        let mut t = two_node();
        t.node(NodeKind::Cxl, 64);
        assert_eq!(
            t.fallback_order(NodeId(0)).as_slice(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(
            t.fallback_order(NodeId(2)).as_slice(),
            &[NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn demotion_order_is_nearest_lower_tier_first() {
        let mut t = Topology::new();
        t.node(NodeKind::LocalDram, 64); // 0
        t.node(NodeKind::Cxl, 64); // 1
        t.node(NodeKind::CxlSwitched, 64); // 2
        assert_eq!(
            t.demotion_order(NodeId(0)).as_slice(),
            &[NodeId(1), NodeId(2)]
        );
        // Direct CXL can spill further down into the pool…
        assert_eq!(t.demotion_order(NodeId(1)).as_slice(), &[NodeId(2)]);
        // …but the pool is terminal.
        assert!(t.demotion_order(NodeId(2)).is_empty());
    }

    #[test]
    fn same_tier_nodes_are_not_demotion_targets() {
        let mut t = two_node();
        t.node(NodeKind::Cxl, 64);
        assert_eq!(
            t.demotion_order(NodeId(0)).as_slice(),
            &[NodeId(1), NodeId(2)]
        );
        assert!(t.demotion_order(NodeId(1)).is_empty());
    }

    #[test]
    fn hops_and_latency_resolution() {
        let mut t = Topology::new();
        t.node(NodeKind::LocalDram, 64);
        t.node_with_latency(NodeKind::Cxl, 64, 250);
        t.node(NodeKind::CxlSwitched, 64);
        assert_eq!(t.resolved_latency_ns(NodeId(0)), 100);
        assert_eq!(t.resolved_latency_ns(NodeId(1)), 250);
        assert_eq!(t.resolved_latency_ns(NodeId(2)), 270);
        assert_eq!(t.migrate_hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.migrate_hops(NodeId(0), NodeId(2)), 2);
        assert_eq!(t.link(NodeId(1)).gbps, 32);
    }

    #[test]
    fn first_local_skips_cpu_less_nodes() {
        let mut t = Topology::new();
        t.node(NodeKind::Cxl, 64);
        t.node(NodeKind::LocalDram, 64);
        assert_eq!(t.first_local(), Some(NodeId(1)));
        let empty = Topology::new();
        assert_eq!(empty.first_local(), None);
    }

    #[test]
    #[should_panic(expected = "self-distance")]
    fn self_distance_is_immutable() {
        let mut t = two_node();
        t.set_distance(NodeId(0), NodeId(0), 99);
    }
}
