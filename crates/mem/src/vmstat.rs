//! `/proc/vmstat`-style event counters, including every counter the TPP
//! paper adds for observability (§5.5).
//!
//! The paper introduces demotion counters (`pgdemote_anon`,
//! `pgdemote_file`), promotion counters split by page type, the
//! `pgpromote_candidate_demoted` ping-pong detector, and a separate counter
//! for each promotion-failure reason. All of those exist here, alongside
//! the classic fault/reclaim/swap events the evaluation plots are built
//! from.

use std::fmt;

/// A countable memory-management event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum VmEvent {
    /// Any page fault (first touch or swap-in).
    PgFault,
    /// Major fault requiring a swap-in.
    PgMajFault,
    /// Page allocated on the faulting CPU's local node.
    PgAllocLocal,
    /// Page allocation spilled to a remote (CXL) node.
    PgAllocRemote,
    /// Allocation stalled in direct reclaim.
    PgAllocStall,
    /// Pages reclaimed (freed or swapped) by background reclaim.
    PgSteal,
    /// Pages scanned by the reclaimer.
    PgScan,
    /// Pages moved inactive → active.
    PgActivate,
    /// Pages moved active → inactive.
    PgDeactivate,
    /// Pages written to the swap device.
    PswpOut,
    /// Pages read back from the swap device.
    PswpIn,
    /// Clean file pages dropped without I/O.
    PgDropFile,
    /// Anonymous pages demoted to a lower tier (TPP counter).
    PgDemoteAnon,
    /// File pages demoted to a lower tier (TPP counter).
    PgDemoteFile,
    /// Demotion attempt that fell back to the legacy reclaim path.
    PgDemoteFallback,
    /// NUMA hint PTE updates installed by the sampling scanner.
    NumaPteUpdates,
    /// NUMA hint faults taken.
    NumaHintFaults,
    /// NUMA hint faults on the local node (wasted sampling work).
    NumaHintFaultsLocal,
    /// Pages that became promotion candidates.
    PgPromoteCandidate,
    /// Promotion candidates that carried `PG_demoted` — the ping-pong
    /// detector (a high value means thrashing across nodes).
    PgPromoteCandidateDemoted,
    /// Promotion attempts actually issued (candidate passed all filters).
    PgPromoteAttempt,
    /// Anonymous pages successfully promoted.
    PgPromoteSuccessAnon,
    /// File pages successfully promoted.
    PgPromoteSuccessFile,
    /// Promotion failed: destination node low on memory.
    PgPromoteFailLowMem,
    /// Promotion failed: page was busy/isolated (abnormal refcount).
    PgPromoteFailBusy,
    /// Promotion failed: whole system low on memory.
    PgPromoteFailSystem,
    /// Promotion skipped: faulted page was on an inactive LRU (TPP's
    /// active-LRU filter held it back and marked it accessed instead).
    PgPromoteSkipInactive,
    /// Pages migrated successfully (any direction).
    PgMigrateSuccess,
    /// Page migrations that failed.
    PgMigrateFail,
    /// File refaults of previously evicted pages (workingset detection).
    WorkingsetRefault,
    /// Refaulted pages judged part of the workingset and activated
    /// directly.
    WorkingsetActivate,
    /// Transparent huge pages allocated directly at fault time.
    ThpFaultAlloc,
    /// Transparent huge pages assembled by the khugepaged-style collapse
    /// scanner.
    ThpCollapseAlloc,
    /// Compound pages split back into base pages.
    ThpSplit,
    /// Compaction passes that freed at least one huge-page-sized block.
    CompactSuccess,
    /// Compaction passes that finished without freeing a huge block.
    CompactFail,
}

impl VmEvent {
    /// Number of distinct events.
    pub const COUNT: usize = 36;

    /// All events, in counter-file order.
    pub const ALL: [VmEvent; VmEvent::COUNT] = [
        VmEvent::PgFault,
        VmEvent::PgMajFault,
        VmEvent::PgAllocLocal,
        VmEvent::PgAllocRemote,
        VmEvent::PgAllocStall,
        VmEvent::PgSteal,
        VmEvent::PgScan,
        VmEvent::PgActivate,
        VmEvent::PgDeactivate,
        VmEvent::PswpOut,
        VmEvent::PswpIn,
        VmEvent::PgDropFile,
        VmEvent::PgDemoteAnon,
        VmEvent::PgDemoteFile,
        VmEvent::PgDemoteFallback,
        VmEvent::NumaPteUpdates,
        VmEvent::NumaHintFaults,
        VmEvent::NumaHintFaultsLocal,
        VmEvent::PgPromoteCandidate,
        VmEvent::PgPromoteCandidateDemoted,
        VmEvent::PgPromoteAttempt,
        VmEvent::PgPromoteSuccessAnon,
        VmEvent::PgPromoteSuccessFile,
        VmEvent::PgPromoteFailLowMem,
        VmEvent::PgPromoteFailBusy,
        VmEvent::PgPromoteFailSystem,
        VmEvent::PgPromoteSkipInactive,
        VmEvent::PgMigrateSuccess,
        VmEvent::PgMigrateFail,
        VmEvent::WorkingsetRefault,
        VmEvent::WorkingsetActivate,
        VmEvent::ThpFaultAlloc,
        VmEvent::ThpCollapseAlloc,
        VmEvent::ThpSplit,
        VmEvent::CompactSuccess,
        VmEvent::CompactFail,
    ];

    /// The `/proc/vmstat`-style name of this counter.
    pub fn name(self) -> &'static str {
        match self {
            VmEvent::PgFault => "pgfault",
            VmEvent::PgMajFault => "pgmajfault",
            VmEvent::PgAllocLocal => "pgalloc_local",
            VmEvent::PgAllocRemote => "pgalloc_remote",
            VmEvent::PgAllocStall => "allocstall",
            VmEvent::PgSteal => "pgsteal",
            VmEvent::PgScan => "pgscan",
            VmEvent::PgActivate => "pgactivate",
            VmEvent::PgDeactivate => "pgdeactivate",
            VmEvent::PswpOut => "pswpout",
            VmEvent::PswpIn => "pswpin",
            VmEvent::PgDropFile => "pgdrop_file",
            VmEvent::PgDemoteAnon => "pgdemote_anon",
            VmEvent::PgDemoteFile => "pgdemote_file",
            VmEvent::PgDemoteFallback => "pgdemote_fallback",
            VmEvent::NumaPteUpdates => "numa_pte_updates",
            VmEvent::NumaHintFaults => "numa_hint_faults",
            VmEvent::NumaHintFaultsLocal => "numa_hint_faults_local",
            VmEvent::PgPromoteCandidate => "pgpromote_candidate",
            VmEvent::PgPromoteCandidateDemoted => "pgpromote_candidate_demoted",
            VmEvent::PgPromoteAttempt => "pgpromote_attempt",
            VmEvent::PgPromoteSuccessAnon => "pgpromote_success_anon",
            VmEvent::PgPromoteSuccessFile => "pgpromote_success_file",
            VmEvent::PgPromoteFailLowMem => "pgpromote_fail_lowmem",
            VmEvent::PgPromoteFailBusy => "pgpromote_fail_busy",
            VmEvent::PgPromoteFailSystem => "pgpromote_fail_system",
            VmEvent::PgPromoteSkipInactive => "pgpromote_skip_inactive",
            VmEvent::PgMigrateSuccess => "pgmigrate_success",
            VmEvent::PgMigrateFail => "pgmigrate_fail",
            VmEvent::WorkingsetRefault => "workingset_refault",
            VmEvent::WorkingsetActivate => "workingset_activate",
            VmEvent::ThpFaultAlloc => "thp_fault_alloc",
            VmEvent::ThpCollapseAlloc => "thp_collapse_alloc",
            VmEvent::ThpSplit => "thp_split",
            VmEvent::CompactSuccess => "compact_success",
            VmEvent::CompactFail => "compact_fail",
        }
    }
}

/// A snapshot-friendly set of vmstat counters.
///
/// # Examples
///
/// ```
/// use tiered_mem::{VmEvent, VmStat};
///
/// let mut vs = VmStat::new();
/// vs.count(VmEvent::PgDemoteAnon);
/// vs.count_n(VmEvent::PgDemoteFile, 3);
/// assert_eq!(vs.get(VmEvent::PgDemoteAnon), 1);
/// assert_eq!(vs.demoted_total(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmStat {
    counters: [u64; VmEvent::COUNT],
}

impl Default for VmStat {
    fn default() -> VmStat {
        VmStat {
            counters: [0; VmEvent::COUNT],
        }
    }
}

impl VmStat {
    /// Creates a zeroed counter set.
    pub fn new() -> VmStat {
        VmStat::default()
    }

    /// Increments `event` by one.
    #[inline]
    pub fn count(&mut self, event: VmEvent) {
        self.counters[event as usize] += 1;
    }

    /// Increments `event` by `n`.
    #[inline]
    pub fn count_n(&mut self, event: VmEvent, n: u64) {
        self.counters[event as usize] += n;
    }

    /// Current value of `event`.
    #[inline]
    pub fn get(&self, event: VmEvent) -> u64 {
        self.counters[event as usize]
    }

    /// Total pages demoted (anon + file).
    pub fn demoted_total(&self) -> u64 {
        self.get(VmEvent::PgDemoteAnon) + self.get(VmEvent::PgDemoteFile)
    }

    /// Total pages promoted (anon + file).
    pub fn promoted_total(&self) -> u64 {
        self.get(VmEvent::PgPromoteSuccessAnon) + self.get(VmEvent::PgPromoteSuccessFile)
    }

    /// Total failed promotions across all failure reasons.
    pub fn promote_failures(&self) -> u64 {
        self.get(VmEvent::PgPromoteFailLowMem)
            + self.get(VmEvent::PgPromoteFailBusy)
            + self.get(VmEvent::PgPromoteFailSystem)
    }

    /// Fraction of promotion attempts that succeeded (1.0 when none were
    /// attempted).
    pub fn promote_success_rate(&self) -> f64 {
        let attempts = self.get(VmEvent::PgPromoteAttempt);
        if attempts == 0 {
            1.0
        } else {
            self.promoted_total() as f64 / attempts as f64
        }
    }

    /// Difference `self - earlier` for rate computations over an interval.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any counter in `earlier` exceeds the
    /// corresponding counter in `self`.
    pub fn delta_since(&self, earlier: &VmStat) -> VmStat {
        let mut out = VmStat::new();
        for i in 0..VmEvent::COUNT {
            debug_assert!(self.counters[i] >= earlier.counters[i]);
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        out
    }

    /// Iterates `(event, value)` pairs in counter-file order.
    pub fn iter(&self) -> impl Iterator<Item = (VmEvent, u64)> + '_ {
        VmEvent::ALL.iter().map(move |&e| (e, self.get(e)))
    }
}

impl fmt::Display for VmStat {
    /// Renders in `/proc/vmstat` format: one `name value` pair per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (event, value) in self.iter() {
            writeln!(f, "{} {}", event.name(), value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_events_have_unique_names_and_indices() {
        let mut names = std::collections::HashSet::new();
        let mut indices = std::collections::HashSet::new();
        for e in VmEvent::ALL {
            assert!(names.insert(e.name()), "duplicate name {}", e.name());
            assert!(indices.insert(e as usize), "duplicate index for {e:?}");
            assert!((e as usize) < VmEvent::COUNT);
        }
        assert_eq!(names.len(), VmEvent::COUNT);
    }

    #[test]
    fn counting_and_aggregates() {
        let mut vs = VmStat::new();
        vs.count_n(VmEvent::PgPromoteSuccessAnon, 8);
        vs.count_n(VmEvent::PgPromoteSuccessFile, 2);
        vs.count_n(VmEvent::PgPromoteAttempt, 20);
        vs.count_n(VmEvent::PgPromoteFailLowMem, 7);
        vs.count_n(VmEvent::PgPromoteFailBusy, 2);
        vs.count(VmEvent::PgPromoteFailSystem);
        assert_eq!(vs.promoted_total(), 10);
        assert_eq!(vs.promote_failures(), 10);
        assert!((vs.promote_success_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn success_rate_with_no_attempts_is_one() {
        assert_eq!(VmStat::new().promote_success_rate(), 1.0);
    }

    #[test]
    fn delta_since_subtracts_counterwise() {
        let mut a = VmStat::new();
        a.count_n(VmEvent::PgSteal, 10);
        let snapshot = a.clone();
        a.count_n(VmEvent::PgSteal, 5);
        a.count(VmEvent::PswpOut);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.get(VmEvent::PgSteal), 5);
        assert_eq!(d.get(VmEvent::PswpOut), 1);
        assert_eq!(d.get(VmEvent::PgFault), 0);
    }

    #[test]
    fn display_is_proc_vmstat_shaped() {
        let mut vs = VmStat::new();
        vs.count(VmEvent::PgDemoteAnon);
        let text = vs.to_string();
        assert!(text.contains("pgdemote_anon 1\n"));
        assert!(text.contains("pgpromote_candidate_demoted 0\n"));
        assert_eq!(text.lines().count(), VmEvent::COUNT);
    }
}
