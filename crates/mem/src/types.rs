//! Fundamental identifier and unit types shared across the memory substrate.
//!
//! All types here are small `Copy` newtypes ([C-NEWTYPE]) so that physical
//! frame numbers, virtual page numbers, node ids, and process ids can never
//! be confused for one another at compile time.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Size of a base page in bytes (4 KiB), matching the Linux default on x86.
pub const PAGE_SIZE: u64 = 4096;

/// Number of bytes in one mebibyte.
pub const MIB: u64 = 1024 * 1024;

/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Converts a size in mebibytes to a page count.
///
/// # Examples
///
/// ```
/// assert_eq!(tiered_mem::pages_from_mib(4), 1024);
/// ```
pub const fn pages_from_mib(mib: u64) -> u64 {
    mib * MIB / PAGE_SIZE
}

/// Converts a page count to mebibytes (floor).
///
/// # Examples
///
/// ```
/// assert_eq!(tiered_mem::mib_from_pages(1024), 4);
/// ```
pub const fn mib_from_pages(pages: u64) -> u64 {
    pages * PAGE_SIZE / MIB
}

/// A physical frame number, unique across *all* memory nodes in a machine.
///
/// The frame table assigns each node a contiguous PFN range, as a real
/// machine's physical address map does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pfn(pub u32);

impl Pfn {
    /// Sentinel used by intrusive lists for "no frame".
    pub(crate) const NONE: u32 = u32::MAX;

    /// Returns the raw index of this frame.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn#{}", self.0)
    }
}

/// A virtual page number within one process' address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vpn(pub u64);

impl Vpn {
    /// Returns the virtual page number `n` pages after `self`.
    #[inline]
    pub fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn#{:#x}", self.0)
    }
}

/// Identifier of a memory node (NUMA node). Node 0 is conventionally the
/// CPU-attached "local" node; CXL expanders are CPU-less nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u8);

impl NodeId {
    /// The conventional local (CPU-attached) node.
    pub const LOCAL: NodeId = NodeId(0);

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A small, inline list of node ids.
///
/// Node-set queries (`local_nodes`, `cxl_nodes`, `fallback_order`) run on
/// the fault path, once per simulated access; returning a heap `Vec` there
/// dominated the allocator profile. Machines have a handful of nodes, so
/// the list is a fixed array that dereferences to `[NodeId]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeList {
    ids: [NodeId; NodeList::CAPACITY],
    len: u8,
}

impl Default for NodeList {
    fn default() -> NodeList {
        NodeList::new()
    }
}

impl NodeList {
    /// Maximum number of nodes a machine can have.
    pub const CAPACITY: usize = 8;

    /// Creates an empty list.
    pub fn new() -> NodeList {
        NodeList {
            ids: [NodeId(0); NodeList::CAPACITY],
            len: 0,
        }
    }

    /// Appends a node id.
    ///
    /// # Panics
    ///
    /// Panics if the list is full ([`NodeList::CAPACITY`] entries).
    pub fn push(&mut self, id: NodeId) {
        assert!(
            (self.len as usize) < NodeList::CAPACITY,
            "machine has more than {} nodes",
            NodeList::CAPACITY
        );
        self.ids[self.len as usize] = id;
        self.len += 1;
    }

    /// The ids as a slice (also available through deref).
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.ids[..self.len as usize]
    }

    /// Sorts the list with a key function (insertion sort: the list is
    /// tiny and this keeps the type `Copy`).
    pub fn sort_by_key<K: Ord>(&mut self, key: impl Fn(NodeId) -> K) {
        let n = self.len as usize;
        for i in 1..n {
            let mut j = i;
            while j > 0 && key(self.ids[j - 1]) > key(self.ids[j]) {
                self.ids.swap(j - 1, j);
                j -= 1;
            }
        }
    }
}

impl std::ops::Deref for NodeList {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl IntoIterator for NodeList {
    type Item = NodeId;
    type IntoIter = std::iter::Take<std::array::IntoIter<NodeId, { NodeList::CAPACITY }>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a NodeList {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<NodeId> for NodeList {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> NodeList {
        let mut list = NodeList::new();
        for id in iter {
            list.push(id);
        }
        list
    }
}

/// Transparent-huge-page policy mode, mirroring
/// `/sys/kernel/mm/transparent_hugepage/enabled`.
///
/// The mode is a *machine* property (set through
/// [`MemoryBuilder::thp_mode`](crate::MemoryBuilder::thp_mode)) that the
/// placement policies read: it gates fault-time huge allocation, the
/// collapse scanner, and the compaction daemon.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ThpMode {
    /// No huge pages anywhere (`never`). The frame allocator behaves
    /// exactly like a flat order-0 free list, so runs are bit-identical
    /// to the pre-huge-page substrate. The default.
    #[default]
    Never,
    /// No fault-time huge allocation, but the khugepaged-style collapse
    /// scanner may still assemble huge pages from hot base-page runs
    /// (`madvise`).
    Madvise,
    /// Fault-time huge allocation plus collapse (`always`).
    Always,
}

impl fmt::Display for ThpMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThpMode::Never => "never",
            ThpMode::Madvise => "madvise",
            ThpMode::Always => "always",
        };
        f.write_str(s)
    }
}

/// A process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The kind of memory a page backs, following the kernel's split between
/// anonymous memory and the page cache.
///
/// The TPP paper distinguishes *anon* pages (stack, heap, `mmap` without a
/// file) from *file* pages (page cache), with `tmpfs` counted on the file
/// LRU but allocated like shared memory. Workload sensitivity differs per
/// type (paper §3.4–3.6), and TPP's page-type-aware allocation (§5.4)
/// prefers placing caches on the CXL node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PageType {
    /// Anonymous memory: heap, stack, private mappings.
    Anon,
    /// File-backed page cache.
    File,
    /// `tmpfs`/shmem: in-memory filesystem pages (managed on the file LRU).
    Tmpfs,
}

impl PageType {
    /// Whether this page is accounted on the file LRU lists.
    ///
    /// `tmpfs` pages live on the file LRU, as in Linux.
    #[inline]
    pub fn is_file_backed(self) -> bool {
        matches!(self, PageType::File | PageType::Tmpfs)
    }

    /// Whether this page is accounted on the anon LRU lists.
    #[inline]
    pub fn is_anon(self) -> bool {
        matches!(self, PageType::Anon)
    }

    /// All page types, in a stable order (useful for reports).
    pub const ALL: [PageType; 3] = [PageType::Anon, PageType::File, PageType::Tmpfs];
}

impl fmt::Display for PageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageType::Anon => "anon",
            PageType::File => "file",
            PageType::Tmpfs => "tmpfs",
        };
        f.write_str(s)
    }
}

/// Unique identity of a virtual page: a (process, virtual page) pair.
///
/// Frames record their owner as a `PageKey` (the simulator models private
/// mappings, so each frame has at most one owner), which gives an O(1)
/// reverse map for migration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageKey {
    /// Owning process.
    pub pid: Pid,
    /// Virtual page number within that process.
    pub vpn: Vpn,
}

impl PageKey {
    /// Creates a page key from its parts.
    pub fn new(pid: Pid, vpn: Vpn) -> Self {
        PageKey { pid, vpn }
    }
}

impl fmt::Display for PageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.pid, self.vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_conversions_round_trip() {
        assert_eq!(pages_from_mib(1), 256);
        assert_eq!(mib_from_pages(256), 1);
        assert_eq!(mib_from_pages(pages_from_mib(128)), 128);
    }

    #[test]
    fn page_type_lru_accounting_split() {
        assert!(PageType::Anon.is_anon());
        assert!(!PageType::Anon.is_file_backed());
        assert!(PageType::File.is_file_backed());
        assert!(PageType::Tmpfs.is_file_backed());
        assert!(!PageType::Tmpfs.is_anon());
    }

    #[test]
    fn newtypes_display_readably() {
        assert_eq!(Pfn(7).to_string(), "pfn#7");
        assert_eq!(NodeId(1).to_string(), "node1");
        assert_eq!(Vpn(0x10).to_string(), "vpn#0x10");
        assert_eq!(PageKey::new(Pid(3), Vpn(16)).to_string(), "pid3:vpn#0x10");
    }

    #[test]
    fn vpn_offset_advances() {
        assert_eq!(Vpn(10).offset(5), Vpn(15));
    }

    #[test]
    fn node_local_is_zero() {
        assert_eq!(NodeId::LOCAL, NodeId(0));
        assert_eq!(NodeId::LOCAL.index(), 0);
    }

    #[test]
    fn node_list_push_iter_sort() {
        let mut l = NodeList::new();
        for id in [2u8, 0, 1] {
            l.push(NodeId(id));
        }
        assert_eq!(l.as_slice(), &[NodeId(2), NodeId(0), NodeId(1)]);
        l.sort_by_key(|n| n.0);
        assert_eq!(l.as_slice(), &[NodeId(0), NodeId(1), NodeId(2)]);
        // Both by-value and by-ref iteration work.
        assert_eq!(l.into_iter().count(), 3);
        assert_eq!((&l).into_iter().count(), 3);
        assert_eq!(l.first(), Some(&NodeId(0)));
        let collected: NodeList = [NodeId(5)].into_iter().collect();
        assert_eq!(collected.as_slice(), &[NodeId(5)]);
    }

    #[test]
    #[should_panic(expected = "more than")]
    fn node_list_overflow_panics() {
        let mut l = NodeList::new();
        for id in 0..=NodeList::CAPACITY as u8 {
            l.push(NodeId(id));
        }
    }
}
