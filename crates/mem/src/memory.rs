//! The machine-wide memory subsystem façade: frame table + nodes +
//! address spaces + swap device + vmstat, with the mechanical operations
//! (map, unmap, migrate, swap in/out, drop) that placement *policies*
//! orchestrate.
//!
//! `Memory` deliberately contains **no policy**: it never decides *when*
//! to reclaim, demote, or promote — only *how*. Watermark checks are
//! exposed as data; the `tpp` crate's policies make the decisions.

use std::collections::HashMap;
use std::fmt;

use crate::error::{AllocError, MigrateError, SwapError};
use crate::flags::PageFlags;
use crate::frame::{FrameTable, HUGE_PAGE_FRAMES, MAX_PAGE_ORDER};
use crate::lru::LruKind;
use crate::node::{MemoryNode, NodeKind};
use crate::page_table::{AddressSpace, PageLocation};
use crate::swap::{SwapDevice, SwapSlot};
use crate::telemetry::{EventSink, NullSink, TraceEvent, TraceRecord};
use crate::topology::Topology;
use crate::types::{NodeId, NodeList, PageKey, PageType, Pfn, Pid, ThpMode, Vpn};
use crate::vmstat::{VmEvent, VmStat};
use crate::watermark::{TppWatermarks, DEFAULT_DEMOTE_SCALE_BP};

/// Shadow entry left behind by an evicted file page (the kernel's
/// workingset-detection radix-tree shadows): records *when* (in
/// per-node eviction ticks) the page was pushed out, so a refault can
/// compute its refault distance.
#[derive(Clone, Copy, Debug)]
struct Shadow {
    node: NodeId,
    eviction_clock: u64,
}

/// Builder for [`Memory`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
///
/// # Examples
///
/// ```
/// use tiered_mem::{Memory, NodeKind};
///
/// let memory = Memory::builder()
///     .node(NodeKind::LocalDram, 1024)
///     .node(NodeKind::Cxl, 4096)
///     .swap_pages(8192)
///     .build();
/// assert_eq!(memory.node_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemoryBuilder {
    topology: Topology,
    swap_pages: Option<u64>,
    demote_scale_bp: u32,
    thp_mode: ThpMode,
}

impl MemoryBuilder {
    /// Creates a builder with no nodes and the default 2%
    /// `demote_scale_factor`.
    pub fn new() -> MemoryBuilder {
        MemoryBuilder {
            topology: Topology::new(),
            swap_pages: None,
            demote_scale_bp: DEFAULT_DEMOTE_SCALE_BP,
            thp_mode: ThpMode::Never,
        }
    }

    /// Adds a memory node of `kind` with `capacity` pages.
    pub fn node(&mut self, kind: NodeKind, capacity: u64) -> &mut MemoryBuilder {
        self.topology.node(kind, capacity);
        self
    }

    /// Adds a memory node with an explicit access latency (ns).
    pub fn node_with_latency(
        &mut self,
        kind: NodeKind,
        capacity: u64,
        latency_ns: u64,
    ) -> &mut MemoryBuilder {
        self.topology.node_with_latency(kind, capacity, latency_ns);
        self
    }

    /// Replaces the machine description wholesale with an explicit
    /// [`Topology`] (custom distance matrix, link properties, switch
    /// hops). Any nodes added through [`MemoryBuilder::node`] so far are
    /// discarded.
    pub fn topology(&mut self, topology: Topology) -> &mut MemoryBuilder {
        self.topology = topology;
        self
    }

    /// Sets the swap device capacity in pages (default: 4× total memory).
    pub fn swap_pages(&mut self, pages: u64) -> &mut MemoryBuilder {
        self.swap_pages = Some(pages);
        self
    }

    /// Sets `demote_scale_factor` in basis points (default 200 = 2%).
    pub fn demote_scale_bp(&mut self, bp: u32) -> &mut MemoryBuilder {
        self.demote_scale_bp = bp;
        self
    }

    /// Sets the machine's transparent-huge-page mode (default
    /// [`ThpMode::Never`]). Anything other than `Never` switches the
    /// frame table into buddy (multi-order) free-space management;
    /// `Never` keeps the flat order-0 allocator with its historical
    /// allocation sequence.
    pub fn thp_mode(&mut self, mode: ThpMode) -> &mut MemoryBuilder {
        self.thp_mode = mode;
        self
    }

    /// Builds the memory subsystem.
    ///
    /// Placement orders are derived from the topology's distance matrix
    /// (paper §5.1/§5.2): the allocation fallback order walks nodes
    /// nearest-first, and every node's demotion order lists lower-tier
    /// nodes nearest-first (terminal tiers get an empty order and reclaim
    /// to swap).
    ///
    /// # Panics
    ///
    /// Panics if no node was configured.
    pub fn build(&self) -> Memory {
        let topo = &self.topology;
        assert!(!topo.is_empty(), "at least one memory node required");
        // The NodeId-indexed fast-path arrays (here and in the `tpp`
        // crate's `System`) assume ids are unique and densely numbered —
        // which `Topology` guarantees by construction.
        debug_assert!(
            topo.ids().enumerate().all(|(i, id)| id.index() == i),
            "node ids must be unique and densely numbered"
        );
        let capacities: Vec<u64> = topo.ids().map(|id| topo.capacity(id)).collect();
        let frames = FrameTable::new_with_thp(&capacities, self.thp_mode != ThpMode::Never);
        let nodes: Vec<MemoryNode> = topo
            .ids()
            .map(|id| {
                let cap = topo.capacity(id);
                let mut n = MemoryNode::new(id, topo.kind(id), cap);
                n.set_watermarks(TppWatermarks::for_capacity(cap, self.demote_scale_bp));
                n.set_latency_ns(topo.resolved_latency_ns(id));
                n.set_demotion_order(topo.demotion_order(id));
                n
            })
            .collect();
        let total: u64 = capacities.iter().sum();
        let swap = SwapDevice::new(self.swap_pages.unwrap_or(total * 4));
        let node_count = nodes.len();
        let fallback: Vec<NodeList> = topo.ids().map(|id| topo.fallback_order(id)).collect();
        Memory {
            frames,
            nodes,
            topology: topo.clone(),
            fallback,
            spaces: HashMap::new(),
            home_nodes: HashMap::new(),
            swap,
            vmstat: VmStat::new(),
            migration_matrix: vec![0; node_count * node_count],
            shadows: HashMap::new(),
            eviction_clocks: vec![0; node_count],
            sink: Box::new(NullSink),
            trace_enabled: false,
            trace_now_ns: 0,
            scratch_pfn_bufs: Vec::new(),
            thp_mode: self.thp_mode,
        }
    }
}

/// The complete memory subsystem of one simulated machine.
pub struct Memory {
    frames: FrameTable,
    nodes: Vec<MemoryNode>,
    /// The machine description the placement orders were derived from.
    topology: Topology,
    /// Per-node allocation fallback order, indexed by source node
    /// (precomputed from the topology; the fault path reads it hot).
    fallback: Vec<NodeList>,
    spaces: HashMap<Pid, AddressSpace>,
    /// Home (socket) node per process; faults and promotions prefer it.
    /// Processes without an entry default to the first CPU-attached node.
    home_nodes: HashMap<Pid, NodeId>,
    swap: SwapDevice,
    vmstat: VmStat,
    /// Flattened src→dst page-migration counts (`from * n + to`), bumped
    /// on every successful migration recorded through [`Memory::record`].
    migration_matrix: Vec<u64>,
    /// Workingset shadows for dropped file pages.
    shadows: HashMap<PageKey, Shadow>,
    /// Per-node eviction clocks (file pages dropped so far).
    eviction_clocks: Vec<u64>,
    /// Trace destination; [`NullSink`] by default.
    sink: Box<dyn EventSink>,
    /// Cached `sink.enabled()` so the disabled path is one branch.
    trace_enabled: bool,
    /// Simulation time stamped onto emitted records.
    trace_now_ns: u64,
    /// Pool of reusable `Pfn` buffers for per-tick scans (reclaim,
    /// demotion). Pure capacity reuse — never observable state.
    scratch_pfn_bufs: Vec<Vec<Pfn>>,
    /// The machine's transparent-huge-page mode.
    thp_mode: ThpMode,
}

impl Clone for Memory {
    /// Clones the full memory state. The event sink is *not* cloned —
    /// sinks are attached per run, so the clone starts on [`NullSink`].
    fn clone(&self) -> Memory {
        Memory {
            frames: self.frames.clone(),
            nodes: self.nodes.clone(),
            topology: self.topology.clone(),
            fallback: self.fallback.clone(),
            spaces: self.spaces.clone(),
            home_nodes: self.home_nodes.clone(),
            swap: self.swap.clone(),
            vmstat: self.vmstat.clone(),
            migration_matrix: self.migration_matrix.clone(),
            shadows: self.shadows.clone(),
            eviction_clocks: self.eviction_clocks.clone(),
            sink: Box::new(NullSink),
            trace_enabled: false,
            trace_now_ns: self.trace_now_ns,
            scratch_pfn_bufs: Vec::new(),
            thp_mode: self.thp_mode,
        }
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("frames", &self.frames)
            .field("nodes", &self.nodes)
            .field("topology", &self.topology)
            .field("spaces", &self.spaces)
            .field("swap", &self.swap)
            .field("vmstat", &self.vmstat)
            .field("shadows", &self.shadows)
            .field("eviction_clocks", &self.eviction_clocks)
            .field("trace_enabled", &self.trace_enabled)
            .field("trace_now_ns", &self.trace_now_ns)
            .field("thp_mode", &self.thp_mode)
            .finish_non_exhaustive()
    }
}

impl Memory {
    /// Starts building a memory subsystem.
    pub fn builder() -> MemoryBuilder {
        MemoryBuilder::new()
    }

    // ----- topology ------------------------------------------------------

    /// Number of memory nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Shared access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[inline]
    pub fn node(&self, id: NodeId) -> &MemoryNode {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut MemoryNode {
        &mut self.nodes[id.index()]
    }

    /// Iterates all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &MemoryNode> {
        self.nodes.iter()
    }

    /// Ids of all CPU-attached (local) nodes.
    pub fn local_nodes(&self) -> NodeList {
        self.nodes
            .iter()
            .filter(|n| !n.is_cpu_less())
            .map(|n| n.id())
            .collect()
    }

    /// Ids of all CPU-less (CXL) nodes.
    pub fn cxl_nodes(&self) -> NodeList {
        self.nodes
            .iter()
            .filter(|n| n.is_cpu_less())
            .map(|n| n.id())
            .collect()
    }

    /// The machine description this memory was built from.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The allocation fallback order starting from `from`: `from` itself,
    /// then remaining nodes nearest-first by NUMA distance (the zonelist
    /// analogue), precomputed from the topology.
    #[inline]
    pub fn fallback_order(&self, from: NodeId) -> NodeList {
        self.fallback[from.index()]
    }

    /// Link hops a page copy between `a` and `b` traverses (≥ 1; a
    /// switch-attached pool adds one per switch traversal).
    #[inline]
    pub fn migrate_hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.topology.migrate_hops(a, b)
    }

    /// The home (socket) node of `pid`: its explicit binding if one was
    /// set, else the first CPU-attached node. Faults prefer it and
    /// promotions pull pages to it (§5.3: "the CPUs that access them").
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no binding and the machine has no CPU-attached
    /// node.
    pub fn home_node(&self, pid: Pid) -> NodeId {
        self.home_nodes.get(&pid).copied().unwrap_or_else(|| {
            self.topology
                .first_local()
                .expect("machine has no CPU-attached node")
        })
    }

    /// Binds `pid` to a home socket node (multi-socket machines). The
    /// process does not have to be registered yet.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or CPU-less.
    pub fn set_home_node(&mut self, pid: Pid, node: NodeId) {
        assert!(node.index() < self.nodes.len(), "unknown {node}");
        assert!(
            !self.nodes[node.index()].is_cpu_less(),
            "{node} is CPU-less and cannot be a home node"
        );
        self.home_nodes.insert(pid, node);
    }

    /// Aggregate free pages across a node set (per-socket watermark-style
    /// queries on multi-node machines).
    pub fn free_pages_in(&self, nodes: &[NodeId]) -> u64 {
        nodes.iter().map(|&n| self.free_pages(n)).sum()
    }

    /// Aggregate capacity across a node set.
    pub fn capacity_in(&self, nodes: &[NodeId]) -> u64 {
        nodes.iter().map(|&n| self.capacity(n)).sum()
    }

    /// Successful page migrations from `from` to `to` so far (the src→dst
    /// migration matrix; demotions and promotions are distinguished by
    /// direction across tiers).
    #[inline]
    pub fn migrations_between(&self, from: NodeId, to: NodeId) -> u64 {
        self.migration_matrix[from.index() * self.nodes.len() + to.index()]
    }

    /// The full src→dst migration matrix, flattened row-major
    /// (`from * node_count + to`).
    #[inline]
    pub fn migration_matrix(&self) -> &[u64] {
        &self.migration_matrix
    }

    /// Borrows an empty, reusable `Pfn` buffer from the scratch pool.
    ///
    /// Per-tick scans (reclaim victim selection, demotion batches) hand
    /// the buffer back via [`Memory::put_pfn_scratch`] when done, so the
    /// steady state allocates nothing. Forgetting to return a buffer is
    /// harmless — the next taker just allocates a fresh one.
    pub fn take_pfn_scratch(&mut self) -> Vec<Pfn> {
        self.scratch_pfn_bufs.pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool (cleared, capacity kept).
    pub fn put_pfn_scratch(&mut self, mut buf: Vec<Pfn>) {
        buf.clear();
        self.scratch_pfn_bufs.push(buf);
    }

    /// Free pages on `node`.
    #[inline]
    pub fn free_pages(&self, node: NodeId) -> u64 {
        self.frames.free_pages(node)
    }

    /// Capacity of `node` in pages.
    #[inline]
    pub fn capacity(&self, node: NodeId) -> u64 {
        self.frames.capacity(node)
    }

    /// Total capacity across all nodes.
    pub fn total_capacity(&self) -> u64 {
        (0..self.node_count())
            .map(|i| self.frames.capacity(NodeId(i as u8)))
            .sum()
    }

    /// Shared access to the frame table.
    #[inline]
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Mutable access to the frame table (for policies that tweak flags or
    /// hotness counters directly).
    #[inline]
    pub fn frames_mut(&mut self) -> &mut FrameTable {
        &mut self.frames
    }

    /// Splits the borrow into one node's LRU lists and the frame table,
    /// which is what every intrusive LRU operation needs
    /// (`lru.pop_back(frames, …)` etc.).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    #[inline]
    pub fn lru_and_frames_mut(
        &mut self,
        node: NodeId,
    ) -> (&mut crate::lru::NodeLru, &mut FrameTable) {
        (&mut self.nodes[node.index()].lru, &mut self.frames)
    }

    /// Shared access to the swap device.
    #[inline]
    pub fn swap(&self) -> &SwapDevice {
        &self.swap
    }

    /// The vmstat counters.
    #[inline]
    pub fn vmstat(&self) -> &VmStat {
        &self.vmstat
    }

    /// Mutable access to the vmstat counters (policies count their own
    /// decision events here).
    #[inline]
    pub fn vmstat_mut(&mut self) -> &mut VmStat {
        &mut self.vmstat
    }

    /// The machine's transparent-huge-page mode.
    #[inline]
    pub fn thp_mode(&self) -> ThpMode {
        self.thp_mode
    }

    // ----- telemetry ------------------------------------------------------

    /// Attaches a trace sink. All subsequent [`Memory::record`] calls
    /// emit timestamped records into it; pass [`NullSink`] to disable
    /// tracing again. Counters are bumped either way.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.trace_enabled = sink.enabled();
        self.sink = sink;
    }

    /// Whether a real (non-null) sink is attached.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Sets the simulation time stamped onto subsequently emitted trace
    /// records. Run loops call this once per event-loop step.
    #[inline]
    pub fn set_trace_now(&mut self, now_ns: u64) {
        self.trace_now_ns = now_ns;
    }

    /// Current trace timestamp.
    #[inline]
    pub fn trace_now(&self) -> u64 {
        self.trace_now_ns
    }

    /// Records one structured event: bumps every vmstat counter the event
    /// implies ([`TraceEvent::count_into`]) and, if a sink is attached,
    /// emits the record stamped with the current trace time.
    ///
    /// This is the single entry point for counted mutations, so the trace
    /// and the counters agree by construction.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        event.count_into(&mut self.vmstat);
        if let TraceEvent::Migrate { from, to, .. } = event {
            // Exactly one `Migrate` is recorded per successful
            // `migrate_page` (demotions/promotions add their own events
            // on top), so counting it here yields an un-double-counted
            // src→dst matrix.
            self.migration_matrix[from.index() * self.nodes.len() + to.index()] += 1;
        }
        if self.trace_enabled {
            self.sink.emit(&TraceRecord {
                ts_ns: self.trace_now_ns,
                event,
            });
        }
    }

    /// Flushes the attached sink (meaningful for file-backed sinks).
    pub fn flush_trace(&mut self) {
        self.sink.flush();
    }

    // ----- processes ------------------------------------------------------

    /// Registers a new process.
    ///
    /// # Panics
    ///
    /// Panics if the pid already exists.
    pub fn create_process(&mut self, pid: Pid) {
        let prev = self.spaces.insert(pid, AddressSpace::new(pid));
        assert!(prev.is_none(), "{pid} already exists");
    }

    /// Whether `pid` is registered.
    pub fn has_process(&self, pid: Pid) -> bool {
        self.spaces.contains_key(&pid)
    }

    /// Shared access to a process' address space.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn space(&self, pid: Pid) -> &AddressSpace {
        self.spaces
            .get(&pid)
            .unwrap_or_else(|| panic!("unknown {pid}"))
    }

    /// All registered pids, sorted (deterministic iteration).
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self.spaces.keys().copied().collect();
        v.sort();
        v
    }

    /// Destroys a process, releasing every resident page and swap slot.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn destroy_process(&mut self, pid: Pid) {
        let space = self
            .spaces
            .remove(&pid)
            .unwrap_or_else(|| panic!("unknown {pid}"));
        self.home_nodes.remove(&pid);
        self.shadows.retain(|key, _| key.pid != pid);
        for (_, loc) in space.iter() {
            match loc {
                PageLocation::Mapped(pfn) => {
                    let nid = self.frames.frame(pfn).node();
                    self.nodes[nid.index()].lru.remove(&mut self.frames, pfn);
                    self.frames.free(pfn);
                }
                PageLocation::Swapped(slot) => {
                    let _ = self.swap.discard(slot);
                }
            }
        }
    }

    // ----- page lifecycle -------------------------------------------------

    /// Allocates a frame on `node` and maps it at `(pid, vpn)`.
    ///
    /// Follows the kernel's LRU insertion convention: new anonymous pages
    /// join the **active** anon list, new file pages join the **inactive**
    /// file list. No watermark check is performed — callers (policies)
    /// decide whether the node is allowed to host the page.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoMemory`] if the node is full,
    /// [`AllocError::InvalidNode`] if it does not exist.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown or the vpn is already backed.
    pub fn alloc_and_map(
        &mut self,
        node: NodeId,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> Result<Pfn, AllocError> {
        let space = self
            .spaces
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("unknown {pid}"));
        assert!(
            space.translate(vpn).is_none(),
            "{pid}:{vpn} is already backed"
        );
        let key = PageKey::new(pid, vpn);
        let pfn = self.frames.alloc(node, key, page_type)?;
        space.map(vpn, pfn);
        // Workingset detection (`workingset_refault`): a file page that
        // was evicted recently — within roughly one active-list-worth of
        // evictions — was part of the workingset and rejoins the LRU as
        // an *active* page instead of starting cold.
        let mut active = page_type.is_anon();
        if let Some(shadow) = self.shadows.remove(&key) {
            if page_type.is_file_backed() {
                self.vmstat.count(VmEvent::WorkingsetRefault);
                let distance =
                    self.eviction_clocks[shadow.node.index()].saturating_sub(shadow.eviction_clock);
                let active_file = self.nodes[shadow.node.index()].lru.len(LruKind::FileActive)
                    + self.nodes[node.index()].lru.len(LruKind::FileActive);
                if distance <= active_file {
                    active = true;
                    self.vmstat.count(VmEvent::WorkingsetActivate);
                }
            }
        }
        let kind = LruKind::for_page(page_type, active);
        self.nodes[node.index()]
            .lru
            .push_front(&mut self.frames, kind, pfn);
        if self.nodes[node.index()].is_cpu_less() {
            self.record(TraceEvent::AllocRemote { page: key, node });
        } else {
            self.record(TraceEvent::AllocLocal { page: key, node });
        }
        Ok(pfn)
    }

    /// Unmaps `(pid, vpn)` and releases whatever backed it (frame or swap
    /// slot). Returns `true` if something was released.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn release(&mut self, pid: Pid, vpn: Vpn) -> bool {
        // A member of a compound page cannot be carved out individually:
        // split the compound back to base pages first (the kernel's
        // split-on-partial-unmap), then release the one page.
        if let Some(PageLocation::Mapped(pfn)) =
            self.spaces.get(&pid).and_then(|s| s.translate(vpn))
        {
            if self
                .frames
                .frame(pfn)
                .flags()
                .intersects(PageFlags::HEAD | PageFlags::TAIL)
            {
                let head = self.compound_head(pfn);
                self.split_huge_page(head);
            }
        }
        let space = self
            .spaces
            .get_mut(&pid)
            .unwrap_or_else(|| panic!("unknown {pid}"));
        match space.unmap(vpn) {
            Some(PageLocation::Mapped(pfn)) => {
                let nid = self.frames.frame(pfn).node();
                self.nodes[nid.index()].lru.remove(&mut self.frames, pfn);
                self.frames.free(pfn);
                true
            }
            Some(PageLocation::Swapped(slot)) => {
                let _ = self.swap.discard(slot);
                true
            }
            None => false,
        }
    }

    /// Migrates `pfn` to `dst`, preserving owner mapping, page type, flags,
    /// hotness, and LRU position class (a page on an active list lands on
    /// the head of `dst`'s matching active list, etc.).
    ///
    /// Returns the new frame on success.
    ///
    /// # Errors
    ///
    /// * [`MigrateError::NotAllocated`] — the frame is free.
    /// * [`MigrateError::SameNode`] — `dst` already holds the page.
    /// * [`MigrateError::Unevictable`] — the page is pinned.
    /// * [`MigrateError::Busy`] — the page is isolated by another path.
    /// * [`MigrateError::DstNoMemory`] — `dst` has no free frame; the
    ///   source page is left untouched.
    pub fn migrate_page(&mut self, pfn: Pfn, dst: NodeId) -> Result<Pfn, MigrateError> {
        let (owner, page_type, flags, hotness, last_access, src, lru_kind) = {
            let frame = self.frames.frame(pfn);
            let owner = frame.owner().ok_or(MigrateError::NotAllocated { pfn })?;
            if frame.flags().intersects(PageFlags::HEAD | PageFlags::TAIL) {
                return Err(MigrateError::CompoundPage { pfn });
            }
            if frame.node() == dst {
                return Err(MigrateError::SameNode { node: dst });
            }
            if frame.flags().contains(PageFlags::UNEVICTABLE) {
                return Err(MigrateError::Unevictable { pfn });
            }
            if frame.flags().contains(PageFlags::ISOLATED) {
                return Err(MigrateError::Busy { pfn });
            }
            (
                owner,
                frame.page_type(),
                frame.flags(),
                frame.hotness(),
                frame.last_access_ns(),
                frame.node(),
                frame.lru_kind(),
            )
        };
        let new_pfn = match self.frames.alloc(dst, owner, page_type) {
            Ok(p) => p,
            Err(AllocError::NoMemory { .. }) | Err(AllocError::InvalidNode { .. }) => {
                self.record(TraceEvent::MigrateFail {
                    page: owner,
                    to: dst,
                });
                return Err(MigrateError::DstNoMemory { node: dst });
            }
        };
        // Tear down the source.
        if lru_kind.is_some() {
            self.nodes[src.index()].lru.remove(&mut self.frames, pfn);
        }
        self.frames.free(pfn);
        // Dress up the destination.
        {
            let frame = self.frames.frame_mut(new_pfn);
            *frame.flags_mut() = flags;
            frame.flags_mut().remove(PageFlags::ACTIVE); // resynced by LRU link
            frame.set_hotness(hotness);
            frame.set_last_access_ns(last_access);
        }
        if let Some(kind) = lru_kind {
            self.nodes[dst.index()]
                .lru
                .push_front(&mut self.frames, kind, new_pfn);
        }
        let space = self
            .spaces
            .get_mut(&owner.pid)
            .unwrap_or_else(|| panic!("owner {} vanished", owner.pid));
        space.map(owner.vpn, new_pfn);
        self.record(TraceEvent::Migrate {
            page: owner,
            from: src,
            to: dst,
        });
        Ok(new_pfn)
    }

    // ----- compound (huge) pages -------------------------------------------

    /// The head frame of the compound page containing `pfn` — identity
    /// for frames that are heads already. Compound alignment is
    /// node-relative, like every buddy computation.
    pub fn compound_head(&self, pfn: Pfn) -> Pfn {
        let start = self.frames.pfn_range(self.frames.frame(pfn).node()).start;
        let rel = pfn.0 - start;
        Pfn(start + (rel & !(HUGE_PAGE_FRAMES as u32 - 1)))
    }

    /// Allocates one 2 MiB compound page (an order-[`MAX_PAGE_ORDER`]
    /// block) on `node` and maps its [`HUGE_PAGE_FRAMES`] base pages at
    /// `base_vpn..base_vpn + 512` — the THP fault-time allocation.
    ///
    /// The head frame carries [`PageFlags::HEAD`] and the compound order;
    /// tails carry [`PageFlags::TAIL`] and stay off the LRU lists (only
    /// the head is linked, so LRU aging and demotion treat the compound
    /// as one unit). Counts `thp_fault_alloc`.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoMemory`] if the node has no free aligned block of
    /// sufficient order, [`AllocError::InvalidNode`] if it does not
    /// exist. On error nothing is allocated — the caller falls back to a
    /// base-page fault.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown, `page_type` is not anonymous,
    /// `base_vpn` is not 512-page aligned, or any page of the window is
    /// already backed.
    pub fn alloc_huge_and_map(
        &mut self,
        node: NodeId,
        pid: Pid,
        base_vpn: Vpn,
        page_type: PageType,
    ) -> Result<Pfn, AllocError> {
        assert!(page_type.is_anon(), "compound pages are anonymous-only");
        assert_eq!(
            base_vpn.0 % HUGE_PAGE_FRAMES,
            0,
            "compound mappings must be {HUGE_PAGE_FRAMES}-page aligned"
        );
        if !self.frames.has_node(node) {
            return Err(AllocError::InvalidNode { node });
        }
        {
            let space = self
                .spaces
                .get(&pid)
                .unwrap_or_else(|| panic!("unknown {pid}"));
            for i in 0..HUGE_PAGE_FRAMES {
                let vpn = Vpn(base_vpn.0 + i);
                assert!(
                    space.translate(vpn).is_none(),
                    "{pid}:{vpn} is already backed"
                );
            }
        }
        let head = self
            .frames
            .reserve_block(node, MAX_PAGE_ORDER)
            .ok_or(AllocError::NoMemory { node })?;
        for i in 0..HUGE_PAGE_FRAMES {
            let pfn = Pfn(head.0 + i as u32);
            self.frames
                .claim(pfn, PageKey::new(pid, Vpn(base_vpn.0 + i)), page_type);
            self.frames.frame_mut(pfn).flags_mut().insert(if i == 0 {
                PageFlags::HEAD
            } else {
                PageFlags::TAIL
            });
        }
        self.frames.frame_mut(head).order = MAX_PAGE_ORDER;
        let space = self.spaces.get_mut(&pid).expect("space vanished");
        for i in 0..HUGE_PAGE_FRAMES {
            space.map(Vpn(base_vpn.0 + i), Pfn(head.0 + i as u32));
        }
        self.nodes[node.index()]
            .lru
            .push_front(&mut self.frames, LruKind::AnonActive, head);
        self.vmstat.count(VmEvent::ThpFaultAlloc);
        let key = PageKey::new(pid, base_vpn);
        if self.nodes[node.index()].is_cpu_less() {
            self.record(TraceEvent::AllocRemote { page: key, node });
        } else {
            self.record(TraceEvent::AllocLocal { page: key, node });
        }
        Ok(head)
    }

    /// Shatters the compound page headed by `head` back into base pages,
    /// returning how many pages the compound held.
    ///
    /// Every page keeps its frame, owner, flags, and hotness; the former
    /// tails join the **cold end** of the head's LRU list (they never had
    /// individual LRU standing, so they are the first reclaim candidates
    /// after a split). Counts `thp_split`.
    ///
    /// # Panics
    ///
    /// Panics if `head` is not a compound head.
    pub fn split_huge_page(&mut self, head: Pfn) -> u64 {
        let (pages, node, kind, owner) = {
            let frame = self.frames.frame(head);
            assert!(
                frame.flags().contains(PageFlags::HEAD),
                "{head} is not a compound head"
            );
            (
                1u64 << frame.order(),
                frame.node(),
                frame.lru_kind().expect("compound head must be LRU-linked"),
                frame.owner().expect("compound head must be allocated"),
            )
        };
        {
            let f = self.frames.frame_mut(head);
            f.flags_mut().remove(PageFlags::HEAD);
            f.order = 0;
        }
        for i in 1..pages {
            let tail = Pfn(head.0 + i as u32);
            self.frames
                .frame_mut(tail)
                .flags_mut()
                .remove(PageFlags::TAIL);
            self.nodes[node.index()]
                .lru
                .push_back(&mut self.frames, kind, tail);
        }
        self.record(TraceEvent::Split {
            page: owner,
            node,
            pages,
        });
        pages
    }

    /// Whether the 512-page window at `base_vpn` is eligible for
    /// khugepaged collapse, and if so on which node the compound should
    /// be assembled: every page resident, anonymous, un-pinned, not
    /// already compound, all on one node, and at least one of them warm
    /// (referenced or with hotness history). Returns that common node.
    pub fn collapse_candidate(&self, pid: Pid, base_vpn: Vpn) -> Option<NodeId> {
        debug_assert_eq!(base_vpn.0 % HUGE_PAGE_FRAMES, 0);
        let space = self.spaces.get(&pid)?;
        let mut node = None;
        let mut warm = false;
        for i in 0..HUGE_PAGE_FRAMES {
            let pfn = match space.translate(Vpn(base_vpn.0 + i)) {
                Some(PageLocation::Mapped(pfn)) => pfn,
                _ => return None,
            };
            let frame = self.frames.frame(pfn);
            if !frame.page_type().is_anon() {
                return None;
            }
            if frame.flags().intersects(
                PageFlags::HEAD | PageFlags::TAIL | PageFlags::ISOLATED | PageFlags::UNEVICTABLE,
            ) {
                return None;
            }
            match node {
                None => node = Some(frame.node()),
                Some(n) if n != frame.node() => return None,
                _ => {}
            }
            warm = warm || frame.flags().contains(PageFlags::REFERENCED) || frame.hotness() > 0;
        }
        if warm {
            node
        } else {
            None
        }
    }

    /// Collapses the 512 resident base pages at `base_vpn` into one
    /// compound page on `node` (the khugepaged assembly step): a fresh
    /// aligned block is reserved, every base page is copied into it in
    /// window order, and the old scattered frames are freed. Referenced,
    /// dirty, and hotness state is carried per page; hint-fault marks are
    /// not (hint sampling restarts at head granularity). Counts
    /// `thp_collapse_alloc`.
    ///
    /// Callers are expected to have validated the window with
    /// [`Memory::collapse_candidate`].
    ///
    /// # Errors
    ///
    /// [`AllocError::NoMemory`] if `node` cannot supply an aligned block;
    /// the window is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `base_vpn` is misaligned or any page of the window is
    /// not resident.
    pub fn collapse_range(
        &mut self,
        pid: Pid,
        base_vpn: Vpn,
        node: NodeId,
    ) -> Result<Pfn, AllocError> {
        assert_eq!(
            base_vpn.0 % HUGE_PAGE_FRAMES,
            0,
            "compound mappings must be {HUGE_PAGE_FRAMES}-page aligned"
        );
        let new_head = self
            .frames
            .reserve_block(node, MAX_PAGE_ORDER)
            .ok_or(AllocError::NoMemory { node })?;
        for i in 0..HUGE_PAGE_FRAMES {
            let vpn = Vpn(base_vpn.0 + i);
            let old = match self.spaces.get(&pid).and_then(|s| s.translate(vpn)) {
                Some(PageLocation::Mapped(pfn)) => pfn,
                other => panic!("{pid}:{vpn} not resident during collapse (found {other:?})"),
            };
            let (hotness, last, keep, page_type, old_node) = {
                let f = self.frames.frame(old);
                (
                    f.hotness(),
                    f.last_access_ns(),
                    f.flags() & (PageFlags::REFERENCED | PageFlags::DIRTY),
                    f.page_type(),
                    f.node(),
                )
            };
            self.nodes[old_node.index()]
                .lru
                .remove(&mut self.frames, old);
            self.frames.free(old);
            let new = Pfn(new_head.0 + i as u32);
            self.frames.claim(new, PageKey::new(pid, vpn), page_type);
            let f = self.frames.frame_mut(new);
            *f.flags_mut() = keep;
            f.flags_mut().insert(if i == 0 {
                PageFlags::HEAD
            } else {
                PageFlags::TAIL
            });
            f.set_hotness(hotness);
            f.set_last_access_ns(last);
            self.spaces
                .get_mut(&pid)
                .expect("space vanished")
                .map(vpn, new);
        }
        self.frames.frame_mut(new_head).order = MAX_PAGE_ORDER;
        self.nodes[node.index()]
            .lru
            .push_front(&mut self.frames, LruKind::AnonActive, new_head);
        self.record(TraceEvent::Collapse {
            page: PageKey::new(pid, base_vpn),
            node,
            pages: HUGE_PAGE_FRAMES,
        });
        Ok(new_head)
    }

    /// Migrates the whole compound page headed by `head` to `dst` as one
    /// unit — promotion and demotion of THPs move 512 pages under a
    /// single decision. Exactly one [`TraceEvent::Migrate`] is recorded
    /// (the src→dst matrix counts compounds once, like base pages).
    ///
    /// # Errors
    ///
    /// * [`MigrateError::NotAllocated`] — the head frame is free.
    /// * [`MigrateError::SameNode`] — `dst` already holds the compound.
    /// * [`MigrateError::Busy`] — the head is isolated by another path.
    /// * [`MigrateError::DstNoMemory`] — `dst` has no free aligned block
    ///   (callers typically split and retry page-by-page); the source is
    ///   left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `head` is allocated but not a compound head.
    pub fn migrate_huge(&mut self, head: Pfn, dst: NodeId) -> Result<Pfn, MigrateError> {
        let (owner, src, order, kind) = {
            let frame = self.frames.frame(head);
            let owner = frame
                .owner()
                .ok_or(MigrateError::NotAllocated { pfn: head })?;
            assert!(
                frame.flags().contains(PageFlags::HEAD),
                "{head} is not a compound head"
            );
            if frame.node() == dst {
                return Err(MigrateError::SameNode { node: dst });
            }
            if frame.flags().contains(PageFlags::ISOLATED) {
                return Err(MigrateError::Busy { pfn: head });
            }
            (
                owner,
                frame.node(),
                frame.order(),
                frame.lru_kind().expect("compound head must be LRU-linked"),
            )
        };
        let new_head = match self
            .frames
            .has_node(dst)
            .then(|| self.frames.reserve_block(dst, order))
            .flatten()
        {
            Some(p) => p,
            None => {
                self.record(TraceEvent::MigrateFail {
                    page: owner,
                    to: dst,
                });
                return Err(MigrateError::DstNoMemory { node: dst });
            }
        };
        let pages = 1u64 << order;
        self.nodes[src.index()].lru.remove(&mut self.frames, head);
        for i in 0..pages {
            let old = Pfn(head.0 + i as u32);
            let (o_owner, flags, hotness, last, page_type) = {
                let f = self.frames.frame(old);
                (
                    f.owner().expect("compound member must be allocated"),
                    f.flags(),
                    f.hotness(),
                    f.last_access_ns(),
                    f.page_type(),
                )
            };
            self.frames.free(old);
            let new = Pfn(new_head.0 + i as u32);
            self.frames.claim(new, o_owner, page_type);
            let f = self.frames.frame_mut(new);
            *f.flags_mut() = flags;
            f.flags_mut().remove(PageFlags::ACTIVE); // resynced by LRU link
            f.set_hotness(hotness);
            f.set_last_access_ns(last);
            self.spaces
                .get_mut(&o_owner.pid)
                .unwrap_or_else(|| panic!("owner {} vanished", o_owner.pid))
                .map(o_owner.vpn, new);
        }
        self.frames.frame_mut(new_head).order = order;
        self.nodes[dst.index()]
            .lru
            .push_front(&mut self.frames, kind, new_head);
        self.record(TraceEvent::Migrate {
            page: owner,
            from: src,
            to: dst,
        });
        Ok(new_head)
    }

    /// Moves the movable base page `src` into the already-reserved frame
    /// `dst` on the same node — the compaction daemon's migration step.
    /// `dst` must have been taken off the free lists with
    /// [`FrameTable::reserve_page`]. The page keeps its LRU class but
    /// rejoins at the cold end.
    ///
    /// # Panics
    ///
    /// Panics if `src` is free or off-LRU, `dst` is on a different node,
    /// or `src` is pinned/compound (not movable).
    pub fn compact_relocate(&mut self, src: Pfn, dst: Pfn) {
        let (owner, node, flags, hotness, last, page_type, kind) = {
            let f = self.frames.frame(src);
            let owner = f.owner().unwrap_or_else(|| panic!("compacting free {src}"));
            (
                owner,
                f.node(),
                f.flags(),
                f.hotness(),
                f.last_access_ns(),
                f.page_type(),
                f.lru_kind().expect("compaction moves LRU-resident pages"),
            )
        };
        assert_eq!(
            self.frames.frame(dst).node(),
            node,
            "compaction is intra-node"
        );
        assert!(
            !flags.intersects(
                PageFlags::HEAD | PageFlags::TAIL | PageFlags::ISOLATED | PageFlags::UNEVICTABLE
            ),
            "{src} is not movable"
        );
        self.nodes[node.index()].lru.remove(&mut self.frames, src);
        self.frames.free(src);
        self.frames.claim(dst, owner, page_type);
        let f = self.frames.frame_mut(dst);
        *f.flags_mut() = flags;
        f.flags_mut().remove(PageFlags::ACTIVE);
        f.set_hotness(hotness);
        f.set_last_access_ns(last);
        self.spaces
            .get_mut(&owner.pid)
            .unwrap_or_else(|| panic!("owner {} vanished", owner.pid))
            .map(owner.vpn, dst);
        self.nodes[node.index()]
            .lru
            .push_back(&mut self.frames, kind, dst);
    }

    /// Pages `pfn` out to the swap device, freeing the frame.
    ///
    /// # Errors
    ///
    /// [`SwapError::Full`] if the device has no slot; the page is left
    /// resident.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free.
    pub fn swap_out(&mut self, pfn: Pfn) -> Result<SwapSlot, SwapError> {
        // Compound pages are not swapped as a unit; split first, then the
        // caller's chosen member pages out alone.
        if self
            .frames
            .frame(pfn)
            .flags()
            .intersects(PageFlags::HEAD | PageFlags::TAIL)
        {
            let head = self.compound_head(pfn);
            self.split_huge_page(head);
        }
        let owner = self
            .frames
            .frame(pfn)
            .owner()
            .unwrap_or_else(|| panic!("swap_out of free {pfn}"));
        let slot = self.swap.swap_out(owner)?;
        let nid = self.frames.frame(pfn).node();
        self.nodes[nid.index()].lru.remove(&mut self.frames, pfn);
        self.frames.free(pfn);
        let space = self
            .spaces
            .get_mut(&owner.pid)
            .unwrap_or_else(|| panic!("owner {} vanished", owner.pid));
        space.set_swapped(owner.vpn, slot);
        self.record(TraceEvent::SwapOut {
            page: owner,
            node: nid,
        });
        Ok(slot)
    }

    /// Brings a swapped-out page back in on `node` (major fault path).
    ///
    /// The page joins the inactive LRU of its class.
    ///
    /// # Errors
    ///
    /// [`AllocError`] if `node` cannot supply a frame (the swap slot is
    /// left intact so the fault can be retried elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `(pid, vpn)` is not currently swapped out.
    pub fn swap_in(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        node: NodeId,
        page_type: PageType,
    ) -> Result<Pfn, AllocError> {
        let slot = match self.spaces.get(&pid).and_then(|s| s.translate(vpn)) {
            Some(PageLocation::Swapped(slot)) => slot,
            other => panic!("{pid}:{vpn} is not swapped out (found {other:?})"),
        };
        let pfn = self.frames.alloc(node, PageKey::new(pid, vpn), page_type)?;
        self.swap
            .swap_in(slot)
            .expect("swap slot vanished while mapped");
        self.spaces
            .get_mut(&pid)
            .expect("space vanished")
            .map(vpn, pfn);
        let kind = LruKind::for_page(page_type, false);
        self.nodes[node.index()]
            .lru
            .push_front(&mut self.frames, kind, pfn);
        self.record(TraceEvent::SwapIn {
            page: PageKey::new(pid, vpn),
            node,
        });
        Ok(pfn)
    }

    /// Drops a clean file page without I/O (page-cache eviction). The next
    /// access will re-fault and re-read it.
    ///
    /// # Panics
    ///
    /// Panics if the frame is free or not file-backed.
    pub fn drop_file_page(&mut self, pfn: Pfn) {
        let frame = self.frames.frame(pfn);
        let owner = frame
            .owner()
            .unwrap_or_else(|| panic!("drop of free {pfn}"));
        assert!(
            frame.page_type().is_file_backed(),
            "{pfn} is anon; anon pages must be swapped, not dropped"
        );
        let nid = frame.node();
        self.nodes[nid.index()].lru.remove(&mut self.frames, pfn);
        self.frames.free(pfn);
        self.spaces
            .get_mut(&owner.pid)
            .unwrap_or_else(|| panic!("owner {} vanished", owner.pid))
            .unmap(owner.vpn);
        self.eviction_clocks[nid.index()] += 1;
        self.shadows.insert(
            owner,
            Shadow {
                node: nid,
                eviction_clock: self.eviction_clocks[nid.index()],
            },
        );
        self.record(TraceEvent::FileDrop {
            page: owner,
            node: nid,
        });
    }

    // ----- LRU convenience (counted) ---------------------------------------

    /// Activates a page (inactive → active), counting `pgactivate`.
    pub fn activate_page(&mut self, pfn: Pfn) {
        let nid = self.frames.frame(pfn).node();
        if self.frames.frame(pfn).lru_kind().map(|k| k.is_active()) == Some(false) {
            self.nodes[nid.index()].lru.activate(&mut self.frames, pfn);
            self.vmstat.count(VmEvent::PgActivate);
        }
    }

    /// Deactivates a page (active → inactive), counting `pgdeactivate`.
    pub fn deactivate_page(&mut self, pfn: Pfn) {
        let nid = self.frames.frame(pfn).node();
        if self.frames.frame(pfn).lru_kind().map(|k| k.is_active()) == Some(true) {
            self.nodes[nid.index()]
                .lru
                .deactivate(&mut self.frames, pfn);
            self.vmstat.count(VmEvent::PgDeactivate);
        }
    }

    /// Rotates a referenced page to the MRU end of its current list.
    pub fn rotate_page(&mut self, pfn: Pfn) {
        let nid = self.frames.frame(pfn).node();
        if self.frames.frame(pfn).lru_kind().is_some() {
            self.nodes[nid.index()]
                .lru
                .move_to_front(&mut self.frames, pfn);
        }
    }

    // ----- statistics -------------------------------------------------------

    /// Resident pages per node split `(anon, file)` — the per-node usage
    /// figure the paper's plots are built on.
    pub fn node_usage(&self, node: NodeId) -> (u64, u64) {
        let lru = &self.nodes[node.index()].lru;
        (lru.anon_total(), lru.file_total())
    }

    /// Per-process residency: how many of `pid`'s pages live on each node
    /// (indexed by node), for co-location reports.
    ///
    /// # Panics
    ///
    /// Panics if the pid is unknown.
    pub fn usage_by_pid(&self, pid: Pid) -> Vec<u64> {
        let mut out = vec![0u64; self.node_count()];
        for (_, loc) in self.space(pid).iter() {
            if let PageLocation::Mapped(pfn) = loc {
                out[self.frames.frame(pfn).node().index()] += 1;
            }
        }
        out
    }

    /// Exhaustive cross-structure invariant check, used by tests and
    /// property tests after every operation sequence.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn validate(&self) {
        // 0. Buddy free-list structure (link integrity, alignment,
        //    per-order counts, free totals).
        self.frames.validate_free_lists();
        // 1. Per-node frame accounting.
        for n in &self.nodes {
            let cap = self.frames.capacity(n.id());
            let free = self.frames.free_pages(n.id());
            let used = self.frames.used_pages(n.id());
            assert_eq!(free + used, cap, "accounting leak on {}", n.id());
            // 2. LRU linkage.
            n.lru.validate(&self.frames);
            // 3. Every allocated frame on this node is on one of its lists
            //    (the simulator never leaves pages floating off-LRU between
            //    operations) and its class matches its type — except
            //    compound tails, which are represented on the LRU solely
            //    by their head. Compound shape is checked along the way.
            let mut tails = 0u64;
            for pfn in self.frames.allocated_on(n.id()) {
                let frame = self.frames.frame(pfn);
                if frame.flags().contains(PageFlags::TAIL) {
                    assert!(frame.lru_kind().is_none(), "tail {pfn} on an LRU list");
                    tails += 1;
                }
                if frame.flags().contains(PageFlags::HEAD) {
                    assert_eq!(frame.order(), MAX_PAGE_ORDER, "head {pfn} with wrong order");
                    let start = self.frames.pfn_range(n.id()).start;
                    assert_eq!(
                        ((pfn.0 - start) as u64) % HUGE_PAGE_FRAMES,
                        0,
                        "misaligned compound head {pfn}"
                    );
                    let owner = frame.owner().expect("head must be allocated");
                    for i in 1..HUGE_PAGE_FRAMES {
                        let tail = self.frames.frame(Pfn(pfn.0 + i as u32));
                        assert!(
                            tail.flags().contains(PageFlags::TAIL),
                            "compound {pfn} missing tail {i}"
                        );
                        let t = tail.owner().expect("tail must be allocated");
                        assert_eq!(t.pid, owner.pid, "mixed-pid compound at {pfn}");
                        assert_eq!(
                            t.vpn.0,
                            owner.vpn.0 + i,
                            "non-contiguous compound vpns at {pfn}"
                        );
                    }
                }
            }
            let mut on_lists = 0u64;
            for kind in LruKind::ALL {
                on_lists += n.lru.len(kind);
            }
            assert_eq!(
                on_lists,
                used - tails,
                "{}: {} pages off-LRU",
                n.id(),
                used - tails - on_lists
            );
        }
        // 4. Page-table ↔ frame-owner bijection.
        let mut mapped = 0u64;
        for (pid, space) in &self.spaces {
            for (vpn, loc) in space.iter() {
                match loc {
                    PageLocation::Mapped(pfn) => {
                        mapped += 1;
                        let frame = self.frames.frame(pfn);
                        assert_eq!(
                            frame.owner(),
                            Some(PageKey::new(*pid, vpn)),
                            "rmap mismatch at {pfn}"
                        );
                    }
                    PageLocation::Swapped(slot) => {
                        assert_eq!(
                            self.swap.peek(slot),
                            Some(PageKey::new(*pid, vpn)),
                            "swap slot mismatch at {slot:?}"
                        );
                    }
                }
            }
        }
        let used_total: u64 = (0..self.node_count())
            .map(|i| self.frames.used_pages(NodeId(i as u8)))
            .sum();
        assert_eq!(mapped, used_total, "orphaned frames exist");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Memory {
        Memory::builder()
            .node(NodeKind::LocalDram, 64)
            .node(NodeKind::Cxl, 128)
            .swap_pages(256)
            .build()
    }

    #[test]
    fn builder_assigns_demotion_targets_by_distance() {
        let m = Memory::builder()
            .node(NodeKind::LocalDram, 16)
            .node(NodeKind::Cxl, 16)
            .node(NodeKind::Cxl, 16)
            .build();
        assert_eq!(m.node(NodeId(0)).demotion_target(), Some(NodeId(1)));
        assert_eq!(m.node(NodeId(1)).demotion_target(), None);
        assert_eq!(m.local_nodes().as_slice(), &[NodeId(0)]);
        assert_eq!(m.cxl_nodes().as_slice(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fallback_order_is_distance_sorted() {
        let m = Memory::builder()
            .node(NodeKind::LocalDram, 16)
            .node(NodeKind::Cxl, 16)
            .node(NodeKind::Cxl, 16)
            .build();
        assert_eq!(
            m.fallback_order(NodeId(0)).as_slice(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(
            m.fallback_order(NodeId(2)).as_slice(),
            &[NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn explicit_topology_drives_orders_and_latencies() {
        let mut t = Topology::new();
        t.node(NodeKind::LocalDram, 16); // 0
        t.node(NodeKind::LocalDram, 16); // 1: other socket
        t.node(NodeKind::Cxl, 16); // 2: socket 1's expander
        t.set_distance(NodeId(0), NodeId(1), 21);
        t.set_distance(NodeId(1), NodeId(2), 14);
        t.set_distance(NodeId(0), NodeId(2), 24);
        let m = Memory::builder().topology(t).build();
        // Socket 1 prefers its own expander over the remote socket.
        assert_eq!(
            m.fallback_order(NodeId(1)).as_slice(),
            &[NodeId(1), NodeId(2), NodeId(0)]
        );
        assert_eq!(m.node(NodeId(0)).demotion_target(), Some(NodeId(2)));
        assert_eq!(m.node(NodeId(2)).latency_ns(), 185);
        assert_eq!(m.topology().distance(NodeId(0), NodeId(1)), 21);
    }

    #[test]
    fn migration_matrix_counts_by_direction() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let down = m.migrate_page(pfn, NodeId(1)).unwrap();
        let _up = m.migrate_page(down, NodeId(0)).unwrap();
        let pfn2 = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(1), PageType::Anon)
            .unwrap();
        m.migrate_page(pfn2, NodeId(1)).unwrap();
        assert_eq!(m.migrations_between(NodeId(0), NodeId(1)), 2);
        assert_eq!(m.migrations_between(NodeId(1), NodeId(0)), 1);
        assert_eq!(m.migration_matrix().iter().sum::<u64>(), 3);
        // Clones carry the matrix (it is counter state, like vmstat).
        let c = m.clone();
        assert_eq!(c.migrations_between(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn home_nodes_default_to_first_local() {
        let mut t = Topology::new();
        t.node(NodeKind::Cxl, 16); // 0: expander first, deliberately
        t.node(NodeKind::LocalDram, 16); // 1
        t.node(NodeKind::LocalDram, 16); // 2
        let mut m = Memory::builder().topology(t).build();
        assert_eq!(m.home_node(Pid(1)), NodeId(1));
        m.set_home_node(Pid(1), NodeId(2));
        assert_eq!(m.home_node(Pid(1)), NodeId(2));
        assert_eq!(m.home_node(Pid(9)), NodeId(1), "unbound pids default");
    }

    #[test]
    #[should_panic(expected = "CPU-less")]
    fn cpu_less_home_node_rejected() {
        let mut m = two_node();
        m.set_home_node(Pid(1), NodeId(1));
    }

    #[test]
    fn node_set_aggregates_sum_over_members() {
        let m = Memory::builder()
            .node(NodeKind::LocalDram, 16)
            .node(NodeKind::Cxl, 32)
            .node(NodeKind::Cxl, 64)
            .build();
        assert_eq!(m.capacity_in(&m.cxl_nodes()), 96);
        assert_eq!(m.capacity_in(&m.local_nodes()), 16);
        assert_eq!(m.free_pages_in(&m.cxl_nodes()), 96);
    }

    #[test]
    fn alloc_and_map_places_new_pages_on_correct_lru() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let anon = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let file = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(1), PageType::File)
            .unwrap();
        // Kernel convention: new anon → active, new file → inactive.
        assert_eq!(m.frames().frame(anon).lru_kind(), Some(LruKind::AnonActive));
        assert_eq!(
            m.frames().frame(file).lru_kind(),
            Some(LruKind::FileInactive)
        );
        assert_eq!(m.vmstat().get(VmEvent::PgAllocLocal), 2);
        m.validate();
    }

    #[test]
    fn remote_allocation_counts_as_remote() {
        let mut m = two_node();
        m.create_process(Pid(1));
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        assert_eq!(m.vmstat().get(VmEvent::PgAllocRemote), 1);
        assert_eq!(m.vmstat().get(VmEvent::PgAllocLocal), 0);
    }

    #[test]
    fn migrate_preserves_mapping_type_flags_and_lru_class() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(7), PageType::Anon)
            .unwrap();
        m.frames_mut()
            .frame_mut(pfn)
            .flags_mut()
            .insert(PageFlags::DEMOTED);
        let new = m.migrate_page(pfn, NodeId(1)).unwrap();
        assert_ne!(pfn, new);
        assert_eq!(m.frames().frame(new).node(), NodeId(1));
        assert_eq!(m.frames().frame(new).page_type(), PageType::Anon);
        assert!(m.frames().frame(new).flags().contains(PageFlags::DEMOTED));
        // Still on an *active* anon list, now on node 1.
        assert_eq!(m.frames().frame(new).lru_kind(), Some(LruKind::AnonActive));
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(7)),
            Some(PageLocation::Mapped(new))
        );
        assert_eq!(m.vmstat().get(VmEvent::PgMigrateSuccess), 1);
        m.validate();
    }

    #[test]
    fn migrate_to_full_node_fails_cleanly() {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 4)
            .node(NodeKind::Cxl, 1)
            .build();
        m.create_process(Pid(1));
        // Fill the CXL node.
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(100), PageType::Anon)
            .unwrap();
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let err = m.migrate_page(pfn, NodeId(1)).unwrap_err();
        assert_eq!(err, MigrateError::DstNoMemory { node: NodeId(1) });
        // Source untouched.
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(0)),
            Some(PageLocation::Mapped(pfn))
        );
        assert_eq!(m.vmstat().get(VmEvent::PgMigrateFail), 1);
        m.validate();
    }

    #[test]
    fn migrate_same_node_and_unevictable_rejected() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        assert_eq!(
            m.migrate_page(pfn, NodeId(0)),
            Err(MigrateError::SameNode { node: NodeId(0) })
        );
        m.frames_mut()
            .frame_mut(pfn)
            .flags_mut()
            .insert(PageFlags::UNEVICTABLE);
        assert_eq!(
            m.migrate_page(pfn, NodeId(1)),
            Err(MigrateError::Unevictable { pfn })
        );
    }

    #[test]
    fn swap_out_and_in_round_trip() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(3), PageType::Anon)
            .unwrap();
        let slot = m.swap_out(pfn).unwrap();
        assert_eq!(m.free_pages(NodeId(0)), 64);
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(3)),
            Some(PageLocation::Swapped(slot))
        );
        m.validate();
        let back = m
            .swap_in(Pid(1), Vpn(3), NodeId(0), PageType::Anon)
            .unwrap();
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(3)),
            Some(PageLocation::Mapped(back))
        );
        assert_eq!(m.vmstat().get(VmEvent::PswpOut), 1);
        assert_eq!(m.vmstat().get(VmEvent::PswpIn), 1);
        assert_eq!(m.vmstat().get(VmEvent::PgMajFault), 1);
        m.validate();
    }

    #[test]
    fn drop_file_page_unmaps_entirely() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(3), PageType::File)
            .unwrap();
        m.drop_file_page(pfn);
        assert_eq!(m.space(Pid(1)).translate(Vpn(3)), None);
        assert_eq!(m.vmstat().get(VmEvent::PgDropFile), 1);
        m.validate();
    }

    #[test]
    #[should_panic(expected = "anon pages must be swapped")]
    fn drop_anon_page_panics() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(3), PageType::Anon)
            .unwrap();
        m.drop_file_page(pfn);
    }

    #[test]
    fn destroy_process_releases_everything() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn0 = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(1), PageType::File)
            .unwrap();
        m.swap_out(pfn0).unwrap();
        m.destroy_process(Pid(1));
        assert_eq!(m.free_pages(NodeId(0)), 64);
        assert_eq!(m.free_pages(NodeId(1)), 128);
        assert_eq!(m.swap().used_slots(), 0);
        assert!(!m.has_process(Pid(1)));
    }

    #[test]
    fn activate_deactivate_rotate_count_events() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::File)
            .unwrap();
        m.activate_page(pfn);
        assert_eq!(m.frames().frame(pfn).lru_kind(), Some(LruKind::FileActive));
        m.activate_page(pfn); // idempotent, no double count
        assert_eq!(m.vmstat().get(VmEvent::PgActivate), 1);
        m.deactivate_page(pfn);
        assert_eq!(m.vmstat().get(VmEvent::PgDeactivate), 1);
        m.rotate_page(pfn);
        m.validate();
    }

    #[test]
    fn workingset_refault_reactivates_recent_evictions() {
        let mut m = two_node();
        m.create_process(Pid(1));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(3), PageType::File)
            .unwrap();
        // Keep an active file page around so the refault distance test
        // has a non-empty active list to compare against.
        let keeper = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(4), PageType::File)
            .unwrap();
        m.activate_page(keeper);
        m.drop_file_page(pfn);
        // Refault immediately: distance 0 <= active_file → activated.
        let back = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(3), PageType::File)
            .unwrap();
        assert_eq!(m.frames().frame(back).lru_kind(), Some(LruKind::FileActive));
        assert_eq!(m.vmstat().get(VmEvent::WorkingsetRefault), 1);
        assert_eq!(m.vmstat().get(VmEvent::WorkingsetActivate), 1);
        m.validate();
    }

    #[test]
    fn distant_refault_stays_inactive() {
        let mut m = Memory::builder().node(NodeKind::LocalDram, 64).build();
        m.create_process(Pid(1));
        let victim = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::File)
            .unwrap();
        m.drop_file_page(victim);
        // Push the eviction clock far past the (empty) active list.
        for i in 1..20u64 {
            let p = m
                .alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
                .unwrap();
            m.drop_file_page(p);
        }
        let back = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::File)
            .unwrap();
        assert_eq!(
            m.frames().frame(back).lru_kind(),
            Some(LruKind::FileInactive)
        );
        assert_eq!(m.vmstat().get(VmEvent::WorkingsetActivate), 0);
        assert!(m.vmstat().get(VmEvent::WorkingsetRefault) >= 1);
    }

    #[test]
    fn usage_by_pid_counts_per_node() {
        let mut m = two_node();
        m.create_process(Pid(1));
        m.create_process(Pid(2));
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(1), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(1), Pid(2), Vpn(0), PageType::File)
            .unwrap();
        assert_eq!(m.usage_by_pid(Pid(1)), vec![1, 1]);
        assert_eq!(m.usage_by_pid(Pid(2)), vec![0, 1]);
    }

    #[test]
    fn node_usage_splits_by_class() {
        let mut m = two_node();
        m.create_process(Pid(1));
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(1), PageType::Tmpfs)
            .unwrap();
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(2), PageType::File)
            .unwrap();
        assert_eq!(m.node_usage(NodeId(0)), (1, 2));
    }

    // ---- compound (huge) pages -------------------------------------

    fn thp_two_node() -> Memory {
        Memory::builder()
            .node(NodeKind::LocalDram, 2048)
            .node(NodeKind::Cxl, 2048)
            .swap_pages(4096)
            .thp_mode(ThpMode::Always)
            .build()
    }

    #[test]
    fn alloc_huge_maps_whole_window_under_one_lru_entry() {
        let mut m = thp_two_node();
        assert_eq!(m.thp_mode(), ThpMode::Always);
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(512), PageType::Anon)
            .unwrap();
        let hf = m.frames().frame(head);
        assert!(hf.flags().contains(PageFlags::HEAD));
        assert_eq!(hf.order(), MAX_PAGE_ORDER);
        assert_eq!(hf.lru_kind(), Some(LruKind::AnonActive));
        // Every window page translates to its own frame; tails are
        // allocated but off-LRU.
        for i in 0..HUGE_PAGE_FRAMES {
            let pfn = Pfn(head.0 + i as u32);
            assert_eq!(
                m.space(Pid(1)).translate(Vpn(512 + i)),
                Some(PageLocation::Mapped(pfn))
            );
            if i > 0 {
                assert!(m.frames().frame(pfn).flags().contains(PageFlags::TAIL));
                assert_eq!(m.frames().frame(pfn).lru_kind(), None);
            }
        }
        assert_eq!(m.free_pages(NodeId(0)), 2048 - 512);
        assert_eq!(m.node(NodeId(0)).lru.total(), 1);
        assert_eq!(m.vmstat().get(VmEvent::ThpFaultAlloc), 1);
        m.validate();
        assert_eq!(m.compound_head(Pfn(head.0 + 100)), head);
    }

    #[test]
    fn split_huge_page_round_trip_is_lossless() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.frames_mut()
            .frame_mut(Pfn(head.0 + 7))
            .flags_mut()
            .insert(PageFlags::DIRTY);
        assert_eq!(m.split_huge_page(head), HUGE_PAGE_FRAMES);
        assert_eq!(m.vmstat().get(VmEvent::ThpSplit), 1);
        // All 512 pages now independently LRU-resident, mappings intact,
        // per-page state kept.
        assert_eq!(m.node(NodeId(0)).lru.total(), HUGE_PAGE_FRAMES);
        assert!(m
            .frames()
            .frame(Pfn(head.0 + 7))
            .flags()
            .contains(PageFlags::DIRTY));
        for i in 0..HUGE_PAGE_FRAMES {
            let pfn = Pfn(head.0 + i as u32);
            assert!(!m
                .frames()
                .frame(pfn)
                .flags()
                .intersects(PageFlags::HEAD | PageFlags::TAIL));
            assert_eq!(
                m.space(Pid(1)).translate(Vpn(i)),
                Some(PageLocation::Mapped(pfn))
            );
        }
        m.validate();
        // Base pages are individually migratable again.
        m.migrate_page(Pfn(head.0 + 3), NodeId(1)).unwrap();
        m.validate();
    }

    #[test]
    fn compound_members_reject_base_page_migration() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let tail = Pfn(head.0 + 9);
        assert_eq!(
            m.migrate_page(head, NodeId(1)),
            Err(MigrateError::CompoundPage { pfn: head })
        );
        assert_eq!(
            m.migrate_page(tail, NodeId(1)),
            Err(MigrateError::CompoundPage { pfn: tail })
        );
    }

    #[test]
    fn migrate_huge_moves_the_compound_as_one_unit() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.frames_mut().frame_mut(head).set_hotness(5);
        let new_head = m.migrate_huge(head, NodeId(1)).unwrap();
        assert_eq!(m.frames().frame(new_head).node(), NodeId(1));
        assert!(m.frames().frame(new_head).flags().contains(PageFlags::HEAD));
        assert_eq!(m.frames().frame(new_head).order(), MAX_PAGE_ORDER);
        assert_eq!(m.frames().frame(new_head).hotness(), 5);
        assert_eq!(
            m.frames().frame(new_head).lru_kind(),
            Some(LruKind::AnonActive)
        );
        // One migration decision → one matrix bump, not 512.
        assert_eq!(m.migrations_between(NodeId(0), NodeId(1)), 1);
        assert_eq!(m.vmstat().get(VmEvent::PgMigrateSuccess), 1);
        assert_eq!(m.free_pages(NodeId(0)), 2048);
        for i in 0..HUGE_PAGE_FRAMES {
            assert_eq!(
                m.space(Pid(1)).translate(Vpn(i)),
                Some(PageLocation::Mapped(Pfn(new_head.0 + i as u32)))
            );
        }
        m.validate();
    }

    #[test]
    fn migrate_huge_fails_cleanly_without_an_aligned_block() {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 1024)
            // 511 pages: free memory exists but no aligned order-9 block
            // can ever be assembled on this node.
            .node(NodeKind::Cxl, 511)
            .thp_mode(ThpMode::Always)
            .build();
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let err = m.migrate_huge(head, NodeId(1)).unwrap_err();
        assert_eq!(err, MigrateError::DstNoMemory { node: NodeId(1) });
        assert_eq!(m.vmstat().get(VmEvent::PgMigrateFail), 1);
        // Source untouched.
        assert!(m.frames().frame(head).flags().contains(PageFlags::HEAD));
        m.validate();
    }

    #[test]
    fn release_of_one_member_splits_the_compound_first() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        assert!(m.release(Pid(1), Vpn(40)));
        assert_eq!(m.vmstat().get(VmEvent::ThpSplit), 1);
        assert_eq!(m.space(Pid(1)).translate(Vpn(40)), None);
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(41)),
            Some(PageLocation::Mapped(Pfn(head.0 + 41)))
        );
        assert_eq!(m.free_pages(NodeId(0)), 2048 - 511);
        m.validate();
    }

    #[test]
    fn swap_out_of_a_member_splits_the_compound_first() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let victim = Pfn(head.0 + 100);
        let slot = m.swap_out(victim).unwrap();
        assert_eq!(m.vmstat().get(VmEvent::ThpSplit), 1);
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(100)),
            Some(PageLocation::Swapped(slot))
        );
        m.validate();
    }

    #[test]
    fn collapse_assembles_scattered_base_pages() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        // Scatter 512 base pages (interleaved with a neighbour window so
        // the PFN run is not naturally aligned or contiguous).
        for i in 0..HUGE_PAGE_FRAMES {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(4096 + i), PageType::Anon)
                .unwrap();
        }
        // Not warm yet → no candidate.
        assert_eq!(m.collapse_candidate(Pid(1), Vpn(0)), None);
        let pfn0 = match m.space(Pid(1)).translate(Vpn(0)) {
            Some(PageLocation::Mapped(p)) => p,
            _ => unreachable!(),
        };
        m.frames_mut()
            .frame_mut(pfn0)
            .flags_mut()
            .insert(PageFlags::REFERENCED);
        assert_eq!(m.collapse_candidate(Pid(1), Vpn(0)), Some(NodeId(0)));
        // A misaligned or partially-mapped window is never a candidate.
        assert_eq!(m.collapse_candidate(Pid(1), Vpn(512)), None);
        let head = m.collapse_range(Pid(1), Vpn(0), NodeId(0)).unwrap();
        assert_eq!(m.vmstat().get(VmEvent::ThpCollapseAlloc), 1);
        assert!(m.frames().frame(head).flags().contains(PageFlags::HEAD));
        assert!(m
            .frames()
            .frame(head)
            .flags()
            .contains(PageFlags::REFERENCED));
        for i in 0..HUGE_PAGE_FRAMES {
            assert_eq!(
                m.space(Pid(1)).translate(Vpn(i)),
                Some(PageLocation::Mapped(Pfn(head.0 + i as u32)))
            );
        }
        // Compound windows are not re-collapsible.
        assert_eq!(m.collapse_candidate(Pid(1), Vpn(0)), None);
        m.validate();
    }

    #[test]
    fn collapse_then_split_restores_base_page_state() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        for i in 0..HUGE_PAGE_FRAMES {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        let dirty_pfn = match m.space(Pid(1)).translate(Vpn(3)) {
            Some(PageLocation::Mapped(p)) => p,
            _ => unreachable!(),
        };
        m.frames_mut()
            .frame_mut(dirty_pfn)
            .flags_mut()
            .insert(PageFlags::DIRTY | PageFlags::REFERENCED);
        m.frames_mut().frame_mut(dirty_pfn).set_hotness(9);
        let head = m.collapse_range(Pid(1), Vpn(0), NodeId(0)).unwrap();
        m.split_huge_page(head);
        let back = match m.space(Pid(1)).translate(Vpn(3)) {
            Some(PageLocation::Mapped(p)) => p,
            _ => unreachable!(),
        };
        let f = m.frames().frame(back);
        assert!(f.flags().contains(PageFlags::DIRTY));
        assert!(f.flags().contains(PageFlags::REFERENCED));
        assert_eq!(f.hotness(), 9);
        m.validate();
    }

    #[test]
    fn destroy_process_releases_compounds() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        m.alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(4096), PageType::Anon)
            .unwrap();
        m.destroy_process(Pid(1));
        assert_eq!(m.free_pages(NodeId(0)), 2048);
        m.validate();
    }

    #[test]
    fn compact_relocate_moves_a_page_into_a_reserved_frame() {
        let mut m = thp_two_node();
        m.create_process(Pid(1));
        // Land two base pages, then free-list-surgery a destination.
        let a = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(1), PageType::Anon)
            .unwrap();
        let dst = Pfn(1000);
        assert!(m.frames_mut().reserve_page(dst));
        m.compact_relocate(a, dst);
        assert_eq!(
            m.space(Pid(1)).translate(Vpn(0)),
            Some(PageLocation::Mapped(dst))
        );
        assert_eq!(m.frames().frame(dst).lru_kind(), Some(LruKind::AnonActive));
        assert!(!m.frames().frame(a).is_allocated());
        m.validate();
    }
}
