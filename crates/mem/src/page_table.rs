//! Per-process address spaces: the virtual→physical mapping plus swap
//! entries, and the registry of processes.

use std::collections::HashMap;

use crate::swap::SwapSlot;
use crate::types::{Pfn, Pid, Vpn};

/// Where a virtual page currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLocation {
    /// Resident in memory at the given frame.
    Mapped(Pfn),
    /// Paged out to the given swap slot.
    Swapped(SwapSlot),
}

impl PageLocation {
    /// The frame, if resident.
    pub fn pfn(self) -> Option<Pfn> {
        match self {
            PageLocation::Mapped(pfn) => Some(pfn),
            PageLocation::Swapped(_) => None,
        }
    }
}

/// One process' page table.
///
/// # Examples
///
/// ```
/// use tiered_mem::{AddressSpace, PageLocation, Pfn, Pid, Vpn};
///
/// let mut space = AddressSpace::new(Pid(1));
/// space.map(Vpn(0), Pfn(42));
/// assert_eq!(space.translate(Vpn(0)), Some(PageLocation::Mapped(Pfn(42))));
/// assert_eq!(space.unmap(Vpn(0)), Some(PageLocation::Mapped(Pfn(42))));
/// assert_eq!(space.translate(Vpn(0)), None);
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    pid: Pid,
    map: HashMap<Vpn, PageLocation>,
    resident: u64,
    swapped: u64,
}

impl AddressSpace {
    /// Creates an empty address space for `pid`.
    pub fn new(pid: Pid) -> AddressSpace {
        AddressSpace {
            pid,
            map: HashMap::new(),
            resident: 0,
            swapped: 0,
        }
    }

    /// The owning process.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Looks up where `vpn` lives, if anywhere.
    #[inline]
    pub fn translate(&self, vpn: Vpn) -> Option<PageLocation> {
        self.map.get(&vpn).copied()
    }

    /// Number of resident (mapped) pages.
    #[inline]
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Number of swapped-out pages.
    #[inline]
    pub fn swapped_pages(&self) -> u64 {
        self.swapped
    }

    /// Total pages with any backing (resident + swapped).
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.resident + self.swapped
    }

    /// Installs a resident mapping, replacing any previous entry.
    ///
    /// Returns the previous location, if any.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn) -> Option<PageLocation> {
        let prev = self.map.insert(vpn, PageLocation::Mapped(pfn));
        self.account_remove(prev);
        self.resident += 1;
        prev
    }

    /// Marks a page as swapped out, replacing any previous entry.
    ///
    /// Returns the previous location, if any.
    pub fn set_swapped(&mut self, vpn: Vpn, slot: SwapSlot) -> Option<PageLocation> {
        let prev = self.map.insert(vpn, PageLocation::Swapped(slot));
        self.account_remove(prev);
        self.swapped += 1;
        prev
    }

    /// Removes the entry for `vpn`, returning where it was.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<PageLocation> {
        let prev = self.map.remove(&vpn);
        self.account_remove(prev);
        prev
    }

    fn account_remove(&mut self, prev: Option<PageLocation>) {
        match prev {
            Some(PageLocation::Mapped(_)) => self.resident -= 1,
            Some(PageLocation::Swapped(_)) => self.swapped -= 1,
            None => {}
        }
    }

    /// Iterates all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, PageLocation)> + '_ {
        self.map.iter().map(|(&v, &l)| (v, l))
    }

    /// Collects all VPNs, sorted (for deterministic scanning).
    pub fn sorted_vpns(&self) -> Vec<Vpn> {
        let mut v: Vec<Vpn> = self.map.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_accounting() {
        let mut s = AddressSpace::new(Pid(9));
        assert_eq!(s.pid(), Pid(9));
        s.map(Vpn(1), Pfn(100));
        s.map(Vpn(2), Pfn(101));
        assert_eq!(s.resident_pages(), 2);
        assert_eq!(s.total_pages(), 2);
        s.unmap(Vpn(1));
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.translate(Vpn(1)), None);
        assert_eq!(s.translate(Vpn(2)), Some(PageLocation::Mapped(Pfn(101))));
    }

    #[test]
    fn swap_transition_keeps_counts_consistent() {
        let mut s = AddressSpace::new(Pid(1));
        s.map(Vpn(5), Pfn(7));
        let prev = s.set_swapped(Vpn(5), SwapSlot(3));
        assert_eq!(prev, Some(PageLocation::Mapped(Pfn(7))));
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.swapped_pages(), 1);
        // Swap-in: back to mapped.
        let prev = s.map(Vpn(5), Pfn(8));
        assert_eq!(prev, Some(PageLocation::Swapped(SwapSlot(3))));
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.swapped_pages(), 0);
    }

    #[test]
    fn remap_replaces_without_leaking_counts() {
        let mut s = AddressSpace::new(Pid(1));
        s.map(Vpn(5), Pfn(7));
        s.map(Vpn(5), Pfn(9));
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.translate(Vpn(5)), Some(PageLocation::Mapped(Pfn(9))));
    }

    #[test]
    fn unmap_missing_is_none() {
        let mut s = AddressSpace::new(Pid(1));
        assert_eq!(s.unmap(Vpn(77)), None);
        assert_eq!(s.total_pages(), 0);
    }

    #[test]
    fn sorted_vpns_are_sorted() {
        let mut s = AddressSpace::new(Pid(1));
        for v in [9u64, 3, 7, 1] {
            s.map(Vpn(v), Pfn(v as u32));
        }
        assert_eq!(s.sorted_vpns(), vec![Vpn(1), Vpn(3), Vpn(7), Vpn(9)]);
    }

    #[test]
    fn page_location_pfn_helper() {
        assert_eq!(PageLocation::Mapped(Pfn(4)).pfn(), Some(Pfn(4)));
        assert_eq!(PageLocation::Swapped(SwapSlot(1)).pfn(), None);
    }
}
