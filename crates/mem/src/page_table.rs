//! Per-process address spaces: the virtual→physical mapping plus swap
//! entries, and the registry of processes.
//!
//! The mapping is a hand-rolled open-addressed hash table ([`VpnMap`])
//! rather than `std::collections::HashMap`: every simulated access funnels
//! through [`AddressSpace::translate`], so the lookup path is the hottest
//! code in the simulator. The table uses power-of-two capacities,
//! fibonacci (multiply-shift) hashing, linear probing, and tombstone-free
//! backshift deletion, and the fault path keeps a one-entry
//! last-translation cache in front of it.

use std::cell::Cell;

use crate::swap::SwapSlot;
use crate::types::{Pfn, Pid, Vpn};

/// Where a virtual page currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLocation {
    /// Resident in memory at the given frame.
    Mapped(Pfn),
    /// Paged out to the given swap slot.
    Swapped(SwapSlot),
}

impl PageLocation {
    /// The frame, if resident.
    pub fn pfn(self) -> Option<Pfn> {
        match self {
            PageLocation::Mapped(pfn) => Some(pfn),
            PageLocation::Swapped(_) => None,
        }
    }
}

/// Sentinel marking an empty slot. Valid VPNs never reach `u64::MAX`:
/// anon regions start at 0 and file regions at `1 << 32`, both far below.
const EMPTY: u64 = u64::MAX;

/// 2^64 / phi, the fibonacci hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

const MIN_CAP: usize = 8;

/// Open-addressed `Vpn -> PageLocation` table.
///
/// Layout: two parallel vectors (keys and values) of power-of-two length.
/// The home slot of a key is the top `log2(capacity)` bits of
/// `key * FIB` (multiply-shift), collisions probe linearly, and deletion
/// backshifts the following probe chain instead of leaving tombstones, so
/// lookup cost never degrades with churn. Iteration order is slot order —
/// a pure function of the insertion history, never of a randomized hash
/// seed, which keeps whole-table walks deterministic across runs.
#[derive(Clone, Debug)]
struct VpnMap {
    keys: Vec<u64>,
    vals: Vec<PageLocation>,
    len: usize,
    /// `64 - log2(capacity)`; multiply-shift uses the top bits.
    shift: u32,
}

impl VpnMap {
    fn new() -> VpnMap {
        VpnMap {
            keys: vec![EMPTY; MIN_CAP],
            vals: vec![PageLocation::Mapped(Pfn(0)); MIN_CAP],
            len: 0,
            shift: 64 - MIN_CAP.trailing_zeros(),
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, key: u64) -> Option<PageLocation> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, val: PageLocation) -> Option<PageLocation> {
        debug_assert_ne!(key, EMPTY, "Vpn(u64::MAX) collides with the empty sentinel");
        // Grow before the load factor exceeds 3/4 so probe chains stay short.
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            if k == key {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            i = (i + 1) & mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<PageLocation> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let old = self.vals[i];
        self.len -= 1;
        // Backshift deletion: slide each following chain member into the
        // hole unless that would move it before its home slot.
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let home = self.home(k);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.keys[hole] = EMPTY;
        Some(old)
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals =
            std::mem::replace(&mut self.vals, vec![PageLocation::Mapped(Pfn(0)); new_cap]);
        self.shift -= 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = (u64, PageLocation)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }
}

/// One process' page table.
///
/// # Examples
///
/// ```
/// use tiered_mem::{AddressSpace, PageLocation, Pfn, Pid, Vpn};
///
/// let mut space = AddressSpace::new(Pid(1));
/// space.map(Vpn(0), Pfn(42));
/// assert_eq!(space.translate(Vpn(0)), Some(PageLocation::Mapped(Pfn(42))));
/// assert_eq!(space.unmap(Vpn(0)), Some(PageLocation::Mapped(Pfn(42))));
/// assert_eq!(space.translate(Vpn(0)), None);
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    pid: Pid,
    map: VpnMap,
    resident: u64,
    swapped: u64,
    /// One-entry last-translation cache: workloads re-touch the same page
    /// in bursts, and the sampler walks pages it just translated.
    last: Cell<Option<(Vpn, PageLocation)>>,
}

impl AddressSpace {
    /// Creates an empty address space for `pid`.
    pub fn new(pid: Pid) -> AddressSpace {
        AddressSpace {
            pid,
            map: VpnMap::new(),
            resident: 0,
            swapped: 0,
            last: Cell::new(None),
        }
    }

    /// The owning process.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Looks up where `vpn` lives, if anywhere.
    #[inline]
    pub fn translate(&self, vpn: Vpn) -> Option<PageLocation> {
        if let Some((v, loc)) = self.last.get() {
            if v == vpn {
                return Some(loc);
            }
        }
        let loc = self.map.get(vpn.0)?;
        self.last.set(Some((vpn, loc)));
        Some(loc)
    }

    /// Number of resident (mapped) pages.
    #[inline]
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Number of swapped-out pages.
    #[inline]
    pub fn swapped_pages(&self) -> u64 {
        self.swapped
    }

    /// Total pages with any backing (resident + swapped).
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.resident + self.swapped
    }

    /// Installs a resident mapping, replacing any previous entry.
    ///
    /// Returns the previous location, if any.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn) -> Option<PageLocation> {
        let loc = PageLocation::Mapped(pfn);
        let prev = self.map.insert(vpn.0, loc);
        self.account_remove(prev);
        self.resident += 1;
        self.last.set(Some((vpn, loc)));
        prev
    }

    /// Marks a page as swapped out, replacing any previous entry.
    ///
    /// Returns the previous location, if any.
    pub fn set_swapped(&mut self, vpn: Vpn, slot: SwapSlot) -> Option<PageLocation> {
        let loc = PageLocation::Swapped(slot);
        let prev = self.map.insert(vpn.0, loc);
        self.account_remove(prev);
        self.swapped += 1;
        self.last.set(Some((vpn, loc)));
        prev
    }

    /// Removes the entry for `vpn`, returning where it was.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<PageLocation> {
        let prev = self.map.remove(vpn.0);
        self.account_remove(prev);
        if let Some((v, _)) = self.last.get() {
            if v == vpn {
                self.last.set(None);
            }
        }
        prev
    }

    fn account_remove(&mut self, prev: Option<PageLocation>) {
        match prev {
            Some(PageLocation::Mapped(_)) => self.resident -= 1,
            Some(PageLocation::Swapped(_)) => self.swapped -= 1,
            None => {}
        }
    }

    /// Iterates all entries in unspecified (but deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, PageLocation)> + '_ {
        self.map.iter().map(|(v, l)| (Vpn(v), l))
    }

    /// Collects all VPNs, sorted (for deterministic scanning).
    pub fn sorted_vpns(&self) -> Vec<Vpn> {
        let mut v = Vec::new();
        self.sorted_vpns_into(&mut v);
        v
    }

    /// Like [`AddressSpace::sorted_vpns`], but reuses `out` instead of
    /// allocating — the sampler calls this every scan tick.
    pub fn sorted_vpns_into(&self, out: &mut Vec<Vpn>) {
        out.clear();
        out.reserve(self.map.len());
        out.extend(self.map.iter().map(|(v, _)| Vpn(v)));
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_accounting() {
        let mut s = AddressSpace::new(Pid(9));
        assert_eq!(s.pid(), Pid(9));
        s.map(Vpn(1), Pfn(100));
        s.map(Vpn(2), Pfn(101));
        assert_eq!(s.resident_pages(), 2);
        assert_eq!(s.total_pages(), 2);
        s.unmap(Vpn(1));
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.translate(Vpn(1)), None);
        assert_eq!(s.translate(Vpn(2)), Some(PageLocation::Mapped(Pfn(101))));
    }

    #[test]
    fn swap_transition_keeps_counts_consistent() {
        let mut s = AddressSpace::new(Pid(1));
        s.map(Vpn(5), Pfn(7));
        let prev = s.set_swapped(Vpn(5), SwapSlot(3));
        assert_eq!(prev, Some(PageLocation::Mapped(Pfn(7))));
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(s.swapped_pages(), 1);
        // Swap-in: back to mapped.
        let prev = s.map(Vpn(5), Pfn(8));
        assert_eq!(prev, Some(PageLocation::Swapped(SwapSlot(3))));
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.swapped_pages(), 0);
    }

    #[test]
    fn remap_replaces_without_leaking_counts() {
        let mut s = AddressSpace::new(Pid(1));
        s.map(Vpn(5), Pfn(7));
        s.map(Vpn(5), Pfn(9));
        assert_eq!(s.resident_pages(), 1);
        assert_eq!(s.translate(Vpn(5)), Some(PageLocation::Mapped(Pfn(9))));
    }

    #[test]
    fn unmap_missing_is_none() {
        let mut s = AddressSpace::new(Pid(1));
        assert_eq!(s.unmap(Vpn(77)), None);
        assert_eq!(s.total_pages(), 0);
    }

    #[test]
    fn sorted_vpns_are_sorted() {
        let mut s = AddressSpace::new(Pid(1));
        for v in [9u64, 3, 7, 1] {
            s.map(Vpn(v), Pfn(v as u32));
        }
        assert_eq!(s.sorted_vpns(), vec![Vpn(1), Vpn(3), Vpn(7), Vpn(9)]);
        // The `_into` variant reuses the buffer and fully replaces it.
        let mut buf = vec![Vpn(999)];
        s.sorted_vpns_into(&mut buf);
        assert_eq!(buf, vec![Vpn(1), Vpn(3), Vpn(7), Vpn(9)]);
    }

    #[test]
    fn page_location_pfn_helper() {
        assert_eq!(PageLocation::Mapped(Pfn(4)).pfn(), Some(Pfn(4)));
        assert_eq!(PageLocation::Swapped(SwapSlot(1)).pfn(), None);
    }

    #[test]
    fn translate_cache_tracks_remap_swap_and_unmap() {
        let mut s = AddressSpace::new(Pid(1));
        s.map(Vpn(5), Pfn(7));
        // Prime the one-entry cache, then mutate through every path and
        // check translate never serves a stale location.
        assert_eq!(s.translate(Vpn(5)), Some(PageLocation::Mapped(Pfn(7))));
        s.map(Vpn(5), Pfn(8));
        assert_eq!(s.translate(Vpn(5)), Some(PageLocation::Mapped(Pfn(8))));
        s.set_swapped(Vpn(5), SwapSlot(2));
        assert_eq!(
            s.translate(Vpn(5)),
            Some(PageLocation::Swapped(SwapSlot(2)))
        );
        s.unmap(Vpn(5));
        assert_eq!(s.translate(Vpn(5)), None);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = AddressSpace::new(Pid(1));
        a.map(Vpn(1), Pfn(10));
        let b = a.clone();
        a.unmap(Vpn(1));
        assert_eq!(b.translate(Vpn(1)), Some(PageLocation::Mapped(Pfn(10))));
        assert_eq!(a.translate(Vpn(1)), None);
    }

    /// Churn the open-addressed table against a `HashMap` reference model
    /// with a deterministic LCG driving inserts, overwrites, removals, and
    /// lookups across several growth boundaries.
    #[test]
    fn vpn_map_matches_reference_model_under_churn() {
        use std::collections::HashMap;

        let mut lcg: u64 = 0x1234_5678_9abc_def0;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 16
        };
        let mut ours = VpnMap::new();
        let mut model: HashMap<u64, PageLocation> = HashMap::new();
        for _ in 0..20_000 {
            let r = step();
            // Small key domain forces heavy collision/overwrite/remove mix;
            // include keys offset by 1 << 32 to mimic file-region VPNs.
            let key = (r % 512) + if r & 1 == 0 { 1 << 32 } else { 0 };
            match (r >> 9) % 4 {
                0 | 1 => {
                    let val = PageLocation::Mapped(Pfn((r >> 20) as u32));
                    assert_eq!(ours.insert(key, val), model.insert(key, val));
                }
                2 => {
                    assert_eq!(ours.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(ours.get(key), model.get(&key).copied());
                }
            }
            assert_eq!(ours.len(), model.len());
        }
        // Full-table walk agrees with the model.
        let mut walked: Vec<(u64, PageLocation)> = ours.iter().collect();
        walked.sort_by_key(|&(k, _)| k);
        let mut expected: Vec<(u64, PageLocation)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        expected.sort_by_key(|&(k, _)| k);
        assert_eq!(walked, expected);
    }

    #[test]
    fn vpn_map_survives_growth_with_dense_keys() {
        let mut m = VpnMap::new();
        for i in 0..10_000u64 {
            assert_eq!(m.insert(i, PageLocation::Mapped(Pfn(i as u32))), None);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i), Some(PageLocation::Mapped(Pfn(i as u32))));
        }
        // Delete every other key, then verify the survivors still resolve
        // (backshift must not break probe chains).
        for i in (0..10_000u64).step_by(2) {
            assert!(m.remove(i).is_some());
        }
        for i in 0..10_000u64 {
            let want = if i % 2 == 1 {
                Some(PageLocation::Mapped(Pfn(i as u32)))
            } else {
                None
            };
            assert_eq!(m.get(i), want);
        }
    }
}
