//! Error types for the memory substrate.

use std::error::Error;
use std::fmt;

use crate::types::{NodeId, Pfn};

/// Why a page allocation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// The target node has no free page (or is below the watermark the
    /// caller required).
    NoMemory {
        /// The node the allocation targeted.
        node: NodeId,
    },
    /// The node id does not exist in this machine.
    InvalidNode {
        /// The offending node id.
        node: NodeId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoMemory { node } => write!(f, "out of memory on {node}"),
            AllocError::InvalidNode { node } => write!(f, "no such memory node: {node}"),
        }
    }
}

impl Error for AllocError {}

/// Why a page migration failed.
///
/// The paper's vmstat extension tracks each promotion failure reason
/// separately (§5.5); [`crate::VmEvent`] mirrors that.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrateError {
    /// The destination node could not supply a free page.
    DstNoMemory {
        /// The destination node.
        node: NodeId,
    },
    /// The frame is not currently allocated, so there is nothing to move.
    NotAllocated {
        /// The frame in question.
        pfn: Pfn,
    },
    /// The frame is already isolated by another operation (reference count
    /// abnormal, in kernel terms).
    Busy {
        /// The frame in question.
        pfn: Pfn,
    },
    /// Source and destination node are the same; migration is meaningless.
    SameNode {
        /// The node in question.
        node: NodeId,
    },
    /// The page is unevictable (mlocked) and may not be moved.
    Unevictable {
        /// The frame in question.
        pfn: Pfn,
    },
    /// The frame belongs to a compound (huge) page; callers must migrate
    /// the whole compound via [`crate::Memory::migrate_huge`] or split it
    /// first.
    CompoundPage {
        /// The frame in question.
        pfn: Pfn,
    },
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::DstNoMemory { node } => {
                write!(f, "migration destination {node} is out of memory")
            }
            MigrateError::NotAllocated { pfn } => write!(f, "{pfn} is not allocated"),
            MigrateError::Busy { pfn } => write!(f, "{pfn} is busy (isolated elsewhere)"),
            MigrateError::SameNode { node } => {
                write!(f, "source and destination are both {node}")
            }
            MigrateError::Unevictable { pfn } => write!(f, "{pfn} is unevictable"),
            MigrateError::CompoundPage { pfn } => {
                write!(f, "{pfn} is part of a compound page")
            }
        }
    }
}

impl Error for MigrateError {}

/// Why a swap operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwapError {
    /// The swap device has no free slot left.
    Full,
    /// The referenced swap slot does not hold a page.
    BadSlot,
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Full => f.write_str("swap device is full"),
            SwapError::BadSlot => f.write_str("swap slot is empty or invalid"),
        }
    }
}

impl Error for SwapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let msgs = [
            AllocError::NoMemory { node: NodeId(1) }.to_string(),
            AllocError::InvalidNode { node: NodeId(9) }.to_string(),
            MigrateError::DstNoMemory { node: NodeId(1) }.to_string(),
            MigrateError::NotAllocated { pfn: Pfn(3) }.to_string(),
            MigrateError::Busy { pfn: Pfn(3) }.to_string(),
            MigrateError::SameNode { node: NodeId(0) }.to_string(),
            MigrateError::Unevictable { pfn: Pfn(3) }.to_string(),
            MigrateError::CompoundPage { pfn: Pfn(3) }.to_string(),
            SwapError::Full.to_string(),
            SwapError::BadSlot.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "no trailing period: {m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "lowercase: {m}");
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AllocError>();
        assert_err::<MigrateError>();
        assert_err::<SwapError>();
    }
}
