//! Structured event tracing for the memory subsystem.
//!
//! The TPP paper's observability story (§5.5) is counter-based: vmstat
//! tells you *how many* pages were demoted or ping-ponged, but not *which*
//! pages, *when*, or *why*. This module adds the event layer underneath
//! the counters: every mutation path emits a [`TraceEvent`] through an
//! [`EventSink`], and each event knows which vmstat counters it implies
//! ([`TraceEvent::count_into`]), so the trace and the counters can never
//! disagree — [`crate::Memory::record`] bumps both from a single call.
//!
//! Three sinks are provided:
//!
//! * [`NullSink`] — the default; reports `enabled() == false` so the
//!   tracing fast path is a single branch and disabled runs are
//!   numerically and temporally identical to untraced ones,
//! * [`RingSink`] — a bounded in-memory ring with a shared handle, for
//!   tests and in-process diagnostics (ping-pong reports),
//! * [`WriterSink`] — JSONL output to any `io::Write`. The JSON writer is
//!   hand-rolled: the build environment cannot reach the crates registry,
//!   so no `serde`/`tracing` dependency is allowed.
//!
//! Combine sinks with [`TeeSink`] to e.g. keep a ring for diagnostics
//! while streaming JSONL to disk.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::rc::Rc;

use crate::types::{NodeId, PageKey, PageType};
use crate::vmstat::{VmEvent, VmStat};

/// Why a promotion attempt failed (one JSON/counter bucket per reason,
/// mirroring the paper's per-reason failure counters).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PromoteFailReason {
    /// Destination node below its allocation watermark.
    LowMem,
    /// Page busy/isolated (abnormal refcount in the kernel).
    Busy,
    /// System-wide condition (e.g. promotion rate limit exhausted).
    System,
}

impl PromoteFailReason {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            PromoteFailReason::LowMem => "lowmem",
            PromoteFailReason::Busy => "busy",
            PromoteFailReason::System => "system",
        }
    }

    fn vm_event(self) -> VmEvent {
        match self {
            PromoteFailReason::LowMem => VmEvent::PgPromoteFailLowMem,
            PromoteFailReason::Busy => VmEvent::PgPromoteFailBusy,
            PromoteFailReason::System => VmEvent::PgPromoteFailSystem,
        }
    }
}

/// Why a promotion candidate was skipped before an attempt was issued.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PromoteSkipReason {
    /// TPP's active-LRU filter: the page was on an inactive list and got
    /// a second chance (activation) instead of a migration.
    Inactive,
    /// Hotness below the policy's promotion threshold (AutoTiering-style
    /// frequency filter). Traced but not counted: no vmstat counter
    /// corresponds to a cold skip.
    Cold,
}

impl PromoteSkipReason {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            PromoteSkipReason::Inactive => "inactive",
            PromoteSkipReason::Cold => "cold",
        }
    }
}

/// One structured trace event. Emitted by [`crate::Memory::record`],
/// which also bumps the vmstat counters the event implies, so the two
/// views stay consistent by construction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceEvent {
    /// Page fault handled by a policy (one per placement attempt, to
    /// match the `pgfault` counter's semantics).
    Fault {
        /// Faulting page.
        page: PageKey,
        /// Whether the fault required a swap-in.
        major: bool,
    },
    /// NUMA hint fault taken on a sampled page.
    HintFault {
        /// Faulting page.
        page: PageKey,
        /// Node the page resides on.
        node: NodeId,
    },
    /// Hint fault on a CPU-attached node — wasted sampling work.
    HintFaultLocal {
        /// Faulting page.
        page: PageKey,
        /// Node the page resides on.
        node: NodeId,
    },
    /// Page allocated on a CPU-attached node.
    AllocLocal {
        /// Newly mapped page.
        page: PageKey,
        /// Node that supplied the frame.
        node: NodeId,
    },
    /// Page allocation landed on a CPU-less (CXL) node.
    AllocRemote {
        /// Newly mapped page.
        page: PageKey,
        /// Node that supplied the frame.
        node: NodeId,
    },
    /// Allocation stalled in direct reclaim.
    AllocStall {
        /// Node that could not satisfy the allocation.
        node: NodeId,
    },
    /// Successful migration (any direction).
    Migrate {
        /// Migrated page.
        page: PageKey,
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// Migration failed (destination out of memory).
    MigrateFail {
        /// Page that stayed put.
        page: PageKey,
        /// Destination that rejected it.
        to: NodeId,
    },
    /// Page became a promotion candidate.
    PromoteCandidate {
        /// Candidate page.
        page: PageKey,
        /// Whether the page carried `PG_demoted` — the ping-pong
        /// detector of §5.5.
        demoted: bool,
    },
    /// Promotion attempt issued (candidate passed all filters).
    PromoteAttempt {
        /// Promoted page.
        page: PageKey,
        /// Source (CXL) node.
        from: NodeId,
        /// Destination (local) node.
        to: NodeId,
    },
    /// Promotion succeeded.
    PromoteSuccess {
        /// Promoted page.
        page: PageKey,
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Page class (anon vs file-backed) for the split counters.
        page_type: PageType,
    },
    /// Promotion failed, with the reason bucket.
    PromoteFail {
        /// Page that stayed on the slow tier.
        page: PageKey,
        /// Failure reason.
        reason: PromoteFailReason,
    },
    /// Promotion candidate skipped before an attempt.
    PromoteSkip {
        /// Skipped page.
        page: PageKey,
        /// Skip reason.
        reason: PromoteSkipReason,
    },
    /// Page demoted to a lower tier.
    Demote {
        /// Demoted page.
        page: PageKey,
        /// Source (local) node.
        from: NodeId,
        /// Destination (CXL) node.
        to: NodeId,
        /// Page class for the split counters.
        page_type: PageType,
    },
    /// Demotion failed and fell back to the legacy reclaim path.
    DemoteFallback {
        /// Page that will be reclaimed instead.
        page: PageKey,
        /// Node the page was on.
        node: NodeId,
    },
    /// Reclaim scanner visited pages on a node (one event per scan batch).
    ReclaimScan {
        /// Scanned node.
        node: NodeId,
        /// Pages visited in this batch.
        pages: u64,
    },
    /// Reclaim stole (evicted) a page.
    ReclaimSteal {
        /// Evicted page.
        page: PageKey,
        /// Node it was stolen from.
        node: NodeId,
    },
    /// Page written to the swap device.
    SwapOut {
        /// Swapped page.
        page: PageKey,
        /// Node the frame was freed from.
        node: NodeId,
    },
    /// Page read back from the swap device (major fault).
    SwapIn {
        /// Restored page.
        page: PageKey,
        /// Node that received it.
        node: NodeId,
    },
    /// Clean file page dropped without I/O.
    FileDrop {
        /// Dropped page.
        page: PageKey,
        /// Node it was dropped from.
        node: NodeId,
    },
    /// khugepaged assembled a run of base pages into a compound page.
    Collapse {
        /// The compound's head page (pid + lowest vpn of the run).
        page: PageKey,
        /// Node the compound was assembled on.
        node: NodeId,
        /// Base pages in the new compound.
        pages: u64,
    },
    /// A compound page was shattered back into base pages.
    Split {
        /// The former head page.
        page: PageKey,
        /// Node the compound lived on.
        node: NodeId,
        /// Base pages released by the split.
        pages: u64,
    },
    /// A compaction pass finished on a node.
    Compact {
        /// Compacted node.
        node: NodeId,
        /// Base pages relocated by the migration scanner.
        migrated: u64,
        /// Whether the pass produced at least one free max-order block.
        success: bool,
    },
    /// Free-page count crossed a named watermark on a node.
    WatermarkCross {
        /// Node whose watermark was crossed.
        node: NodeId,
        /// Watermark name (`"min"`, `"low"`, `"high"`, `"demote"`, …).
        level: &'static str,
        /// Free pages at the crossing.
        free: u64,
        /// `true` when free fell below the watermark, `false` when it
        /// recovered above it.
        below: bool,
    },
    /// A reclaim/demotion daemon woke up.
    DaemonWake {
        /// Daemon name (`"kswapd"`, `"demoter"`, …).
        daemon: &'static str,
        /// Node the daemon serves, if per-node.
        node: Option<NodeId>,
    },
    /// Free-form policy decision with a policy-supplied reason.
    Decision {
        /// Policy name (matches `PlacementPolicy::name`).
        policy: &'static str,
        /// Decision reason, stable for aggregation.
        reason: &'static str,
        /// Page the decision concerned, if any.
        page: Option<PageKey>,
    },
}

impl TraceEvent {
    /// Stable lowercase event name used in JSONL output and summaries.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::HintFault { .. } => "hint_fault",
            TraceEvent::HintFaultLocal { .. } => "hint_fault_local",
            TraceEvent::AllocLocal { .. } => "alloc_local",
            TraceEvent::AllocRemote { .. } => "alloc_remote",
            TraceEvent::AllocStall { .. } => "alloc_stall",
            TraceEvent::Migrate { .. } => "migrate",
            TraceEvent::MigrateFail { .. } => "migrate_fail",
            TraceEvent::PromoteCandidate { .. } => "promote_candidate",
            TraceEvent::PromoteAttempt { .. } => "promote_attempt",
            TraceEvent::PromoteSuccess { .. } => "promote_success",
            TraceEvent::PromoteFail { .. } => "promote_fail",
            TraceEvent::PromoteSkip { .. } => "promote_skip",
            TraceEvent::Demote { .. } => "demote",
            TraceEvent::DemoteFallback { .. } => "demote_fallback",
            TraceEvent::ReclaimScan { .. } => "reclaim_scan",
            TraceEvent::ReclaimSteal { .. } => "reclaim_steal",
            TraceEvent::SwapOut { .. } => "swap_out",
            TraceEvent::SwapIn { .. } => "swap_in",
            TraceEvent::FileDrop { .. } => "file_drop",
            TraceEvent::Collapse { .. } => "collapse",
            TraceEvent::Split { .. } => "split",
            TraceEvent::Compact { .. } => "compact",
            TraceEvent::WatermarkCross { .. } => "watermark_cross",
            TraceEvent::DaemonWake { .. } => "daemon_wake",
            TraceEvent::Decision { .. } => "decision",
        }
    }

    /// Bumps every vmstat counter this event implies. This is the single
    /// source of truth for the event ↔ counter mapping: `Memory::record`
    /// calls it, so a traced counter can never drift from its events.
    pub fn count_into(&self, vmstat: &mut VmStat) {
        match *self {
            TraceEvent::Fault { major, .. } => {
                vmstat.count(VmEvent::PgFault);
                // Major faults are counted by the swap-in path itself.
                let _ = major;
            }
            TraceEvent::HintFault { .. } => vmstat.count(VmEvent::NumaHintFaults),
            TraceEvent::HintFaultLocal { .. } => vmstat.count(VmEvent::NumaHintFaultsLocal),
            TraceEvent::AllocLocal { .. } => vmstat.count(VmEvent::PgAllocLocal),
            TraceEvent::AllocRemote { .. } => vmstat.count(VmEvent::PgAllocRemote),
            TraceEvent::AllocStall { .. } => vmstat.count(VmEvent::PgAllocStall),
            TraceEvent::Migrate { .. } => vmstat.count(VmEvent::PgMigrateSuccess),
            TraceEvent::MigrateFail { .. } => vmstat.count(VmEvent::PgMigrateFail),
            TraceEvent::PromoteCandidate { demoted, .. } => {
                vmstat.count(VmEvent::PgPromoteCandidate);
                if demoted {
                    vmstat.count(VmEvent::PgPromoteCandidateDemoted);
                }
            }
            TraceEvent::PromoteAttempt { .. } => vmstat.count(VmEvent::PgPromoteAttempt),
            TraceEvent::PromoteSuccess { page_type, .. } => {
                if page_type.is_anon() {
                    vmstat.count(VmEvent::PgPromoteSuccessAnon);
                } else {
                    vmstat.count(VmEvent::PgPromoteSuccessFile);
                }
            }
            TraceEvent::PromoteFail { reason, .. } => vmstat.count(reason.vm_event()),
            TraceEvent::PromoteSkip { reason, .. } => {
                if reason == PromoteSkipReason::Inactive {
                    vmstat.count(VmEvent::PgPromoteSkipInactive);
                }
            }
            TraceEvent::Demote { page_type, .. } => {
                if page_type.is_anon() {
                    vmstat.count(VmEvent::PgDemoteAnon);
                } else {
                    vmstat.count(VmEvent::PgDemoteFile);
                }
            }
            TraceEvent::DemoteFallback { .. } => vmstat.count(VmEvent::PgDemoteFallback),
            TraceEvent::ReclaimScan { pages, .. } => vmstat.count_n(VmEvent::PgScan, pages),
            TraceEvent::ReclaimSteal { .. } => vmstat.count(VmEvent::PgSteal),
            TraceEvent::SwapOut { .. } => vmstat.count(VmEvent::PswpOut),
            TraceEvent::SwapIn { .. } => {
                vmstat.count(VmEvent::PswpIn);
                vmstat.count(VmEvent::PgMajFault);
            }
            TraceEvent::FileDrop { .. } => vmstat.count(VmEvent::PgDropFile),
            TraceEvent::Collapse { .. } => vmstat.count(VmEvent::ThpCollapseAlloc),
            TraceEvent::Split { .. } => vmstat.count(VmEvent::ThpSplit),
            TraceEvent::Compact { success, .. } => {
                if success {
                    vmstat.count(VmEvent::CompactSuccess);
                } else {
                    vmstat.count(VmEvent::CompactFail);
                }
            }
            TraceEvent::WatermarkCross { .. }
            | TraceEvent::DaemonWake { .. }
            | TraceEvent::Decision { .. } => {}
        }
    }

    /// The page this event concerns, if any.
    pub fn page(&self) -> Option<PageKey> {
        match *self {
            TraceEvent::Fault { page, .. }
            | TraceEvent::HintFault { page, .. }
            | TraceEvent::HintFaultLocal { page, .. }
            | TraceEvent::AllocLocal { page, .. }
            | TraceEvent::AllocRemote { page, .. }
            | TraceEvent::Migrate { page, .. }
            | TraceEvent::MigrateFail { page, .. }
            | TraceEvent::PromoteCandidate { page, .. }
            | TraceEvent::PromoteAttempt { page, .. }
            | TraceEvent::PromoteSuccess { page, .. }
            | TraceEvent::PromoteFail { page, .. }
            | TraceEvent::PromoteSkip { page, .. }
            | TraceEvent::Demote { page, .. }
            | TraceEvent::DemoteFallback { page, .. }
            | TraceEvent::ReclaimSteal { page, .. }
            | TraceEvent::SwapOut { page, .. }
            | TraceEvent::SwapIn { page, .. }
            | TraceEvent::FileDrop { page, .. }
            | TraceEvent::Collapse { page, .. }
            | TraceEvent::Split { page, .. } => Some(page),
            TraceEvent::Decision { page, .. } => page,
            TraceEvent::AllocStall { .. }
            | TraceEvent::ReclaimScan { .. }
            | TraceEvent::Compact { .. }
            | TraceEvent::WatermarkCross { .. }
            | TraceEvent::DaemonWake { .. } => None,
        }
    }
}

/// A [`TraceEvent`] stamped with simulation time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceRecord {
    /// Simulation timestamp in nanoseconds.
    pub ts_ns: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one JSON object (no trailing newline).
    ///
    /// The format is flat and stable: `ts` and `event` first, then the
    /// event's fields. Written by hand because the build environment has
    /// no access to serde.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"ts\":{},\"event\":\"{}\"",
            self.ts_ns,
            self.event.name()
        );
        if let Some(page) = self.event.page() {
            let _ = write!(s, ",\"pid\":{},\"vpn\":{}", page.pid.0, page.vpn.0);
        }
        match self.event {
            TraceEvent::Fault { major, .. } => {
                let _ = write!(s, ",\"major\":{major}");
            }
            TraceEvent::HintFault { node, .. }
            | TraceEvent::HintFaultLocal { node, .. }
            | TraceEvent::AllocLocal { node, .. }
            | TraceEvent::AllocRemote { node, .. }
            | TraceEvent::AllocStall { node }
            | TraceEvent::DemoteFallback { node, .. }
            | TraceEvent::ReclaimSteal { node, .. }
            | TraceEvent::SwapOut { node, .. }
            | TraceEvent::SwapIn { node, .. }
            | TraceEvent::FileDrop { node, .. } => {
                let _ = write!(s, ",\"node\":{}", node.0);
            }
            TraceEvent::Migrate { from, to, .. } | TraceEvent::PromoteAttempt { from, to, .. } => {
                let _ = write!(s, ",\"from\":{},\"to\":{}", from.0, to.0);
            }
            TraceEvent::MigrateFail { to, .. } => {
                let _ = write!(s, ",\"to\":{}", to.0);
            }
            TraceEvent::PromoteCandidate { demoted, .. } => {
                let _ = write!(s, ",\"demoted\":{demoted}");
            }
            TraceEvent::PromoteSuccess {
                from,
                to,
                page_type,
                ..
            }
            | TraceEvent::Demote {
                from,
                to,
                page_type,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"from\":{},\"to\":{},\"page_type\":\"{}\"",
                    from.0,
                    to.0,
                    page_type_name(page_type)
                );
            }
            TraceEvent::PromoteFail { reason, .. } => {
                let _ = write!(s, ",\"reason\":\"{}\"", reason.as_str());
            }
            TraceEvent::PromoteSkip { reason, .. } => {
                let _ = write!(s, ",\"reason\":\"{}\"", reason.as_str());
            }
            TraceEvent::ReclaimScan { node, pages } => {
                let _ = write!(s, ",\"node\":{},\"pages\":{pages}", node.0);
            }
            TraceEvent::Collapse { node, pages, .. } | TraceEvent::Split { node, pages, .. } => {
                let _ = write!(s, ",\"node\":{},\"pages\":{pages}", node.0);
            }
            TraceEvent::Compact {
                node,
                migrated,
                success,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{},\"migrated\":{migrated},\"success\":{success}",
                    node.0
                );
            }
            TraceEvent::WatermarkCross {
                node,
                level,
                free,
                below,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{},\"level\":\"{}\",\"free\":{free},\"below\":{below}",
                    node.0,
                    escape_json(level)
                );
            }
            TraceEvent::DaemonWake { daemon, node } => {
                let _ = write!(s, ",\"daemon\":\"{}\"", escape_json(daemon));
                if let Some(node) = node {
                    let _ = write!(s, ",\"node\":{}", node.0);
                }
            }
            TraceEvent::Decision { policy, reason, .. } => {
                let _ = write!(
                    s,
                    ",\"policy\":\"{}\",\"reason\":\"{}\"",
                    escape_json(policy),
                    escape_json(reason)
                );
            }
        }
        s.push('}');
        s
    }
}

fn page_type_name(t: PageType) -> &'static str {
    match t {
        PageType::Anon => "anon",
        PageType::File => "file",
        PageType::Tmpfs => "tmpfs",
    }
}

/// Minimal JSON string escaping for the reason/name strings we emit.
/// Reasons are `&'static str` written in this repo, so this only guards
/// against accidental quotes/backslashes/control characters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The vmstat counters that are bumped exclusively through
/// [`crate::Memory::record`], i.e. the counters a complete trace fully
/// reconstructs via [`replay_counters`]. Counters outside this list
/// (LRU activity, working-set, PTE-scan counts) are plain counts with no
/// per-event record.
pub const TRACED_COUNTERS: &[VmEvent] = &[
    VmEvent::PgFault,
    VmEvent::PgMajFault,
    VmEvent::NumaHintFaults,
    VmEvent::NumaHintFaultsLocal,
    VmEvent::PgAllocLocal,
    VmEvent::PgAllocRemote,
    VmEvent::PgAllocStall,
    VmEvent::PgMigrateSuccess,
    VmEvent::PgMigrateFail,
    VmEvent::PgPromoteCandidate,
    VmEvent::PgPromoteCandidateDemoted,
    VmEvent::PgPromoteAttempt,
    VmEvent::PgPromoteSuccessAnon,
    VmEvent::PgPromoteSuccessFile,
    VmEvent::PgPromoteFailLowMem,
    VmEvent::PgPromoteFailBusy,
    VmEvent::PgPromoteFailSystem,
    VmEvent::PgPromoteSkipInactive,
    VmEvent::PgDemoteAnon,
    VmEvent::PgDemoteFile,
    VmEvent::PgDemoteFallback,
    VmEvent::PgScan,
    VmEvent::PgSteal,
    VmEvent::PswpOut,
    VmEvent::PswpIn,
    VmEvent::PgDropFile,
];

/// Replays a trace's counter side effects into a fresh [`VmStat`].
///
/// For a trace that covers a whole run, every counter in
/// [`TRACED_COUNTERS`] must match the machine's final vmstat exactly —
/// this is the parity check behind `repro --trace`.
pub fn replay_counters(records: &[TraceRecord]) -> VmStat {
    let mut vm = VmStat::new();
    for r in records {
        r.event.count_into(&mut vm);
    }
    vm
}

/// Destination for trace events.
///
/// Implementations must be cheap when disabled: `Memory::record` checks
/// [`EventSink::enabled`] once at attach time and skips event
/// construction entirely on the null path.
pub trait EventSink {
    /// Consumes one record.
    fn emit(&mut self, record: &TraceRecord);

    /// Whether this sink wants events at all. The default is `true`;
    /// [`NullSink`] overrides to `false` so tracing can be compiled down
    /// to a single cached branch.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// The zero-cost default sink: drops everything, reports disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _record: &TraceRecord) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A bounded in-memory ring of recent records with a cloneable shared
/// handle: attach one clone to `Memory`, keep the other to inspect the
/// events afterwards.
///
/// When full, the oldest record is dropped (`dropped()` reports how
/// many). Use [`RingSink::unbounded`] for parity tests that must see
/// every event.
///
/// # Examples
///
/// ```
/// use tiered_mem::{Memory, NodeKind, PageType, Pid, RingSink, Vpn};
///
/// let ring = RingSink::unbounded();
/// let mut m = Memory::builder().node(NodeKind::LocalDram, 8).build();
/// m.set_event_sink(Box::new(ring.clone()));
/// m.create_process(Pid(1));
/// m.alloc_and_map(tiered_mem::NodeId::LOCAL, Pid(1), Vpn(0), PageType::Anon).unwrap();
/// assert_eq!(ring.snapshot().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct RingSink {
    inner: Rc<RefCell<RingInner>>,
}

#[derive(Debug)]
struct RingInner {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            inner: Rc::new(RefCell::new(RingInner {
                records: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            })),
        }
    }

    /// Creates a ring that never drops (for parity tests).
    pub fn unbounded() -> RingSink {
        RingSink::new(usize::MAX)
    }

    /// Copies out the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.borrow().records.iter().copied().collect()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().records.is_empty()
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Counts buffered events whose [`TraceEvent::name`] equals `name`.
    pub fn count_named(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .records
            .iter()
            .filter(|r| r.event.name() == name)
            .count() as u64
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, record: &TraceRecord) {
        let mut inner = self.inner.borrow_mut();
        if inner.records.len() >= inner.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(*record);
    }
}

/// JSONL sink: one JSON object per line to any writer.
pub struct WriterSink {
    out: Box<dyn Write>,
    lines: u64,
}

impl std::fmt::Debug for WriterSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterSink")
            .field("lines", &self.lines)
            .finish()
    }
}

impl WriterSink {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write>) -> WriterSink {
        WriterSink { out, lines: 0 }
    }

    /// Opens (truncates) `path` and writes buffered JSONL to it.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<WriterSink> {
        let file = std::fs::File::create(path)?;
        Ok(WriterSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl EventSink for WriterSink {
    fn emit(&mut self, record: &TraceRecord) {
        // I/O errors are reported once on flush; the sim cannot unwind
        // mid-operation.
        let _ = writeln!(self.out, "{}", record.to_json());
        self.lines += 1;
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            eprintln!("telemetry: flush failed: {e}");
        }
    }
}

impl Drop for WriterSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Fans every record out to several sinks (e.g. a ring for diagnostics
/// plus a JSONL file).
#[derive(Debug, Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl std::fmt::Debug for Box<dyn EventSink> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventSink(enabled={})", self.enabled())
    }
}

impl TeeSink {
    /// Creates an empty tee (disabled until a sink is added).
    pub fn new() -> TeeSink {
        TeeSink::default()
    }

    /// Adds a sink, builder-style.
    pub fn with(mut self, sink: Box<dyn EventSink>) -> TeeSink {
        self.sinks.push(sink);
        self
    }
}

impl EventSink for TeeSink {
    fn emit(&mut self, record: &TraceRecord) {
        for sink in &mut self.sinks {
            sink.emit(record);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Pid, Vpn};

    fn key(pid: u32, vpn: u64) -> PageKey {
        PageKey::new(Pid(pid), Vpn(vpn))
    }

    #[test]
    fn every_event_has_a_stable_name_and_json_shape() {
        let events = [
            TraceEvent::Fault {
                page: key(1, 2),
                major: true,
            },
            TraceEvent::HintFault {
                page: key(1, 2),
                node: NodeId(1),
            },
            TraceEvent::HintFaultLocal {
                page: key(1, 2),
                node: NodeId(0),
            },
            TraceEvent::AllocLocal {
                page: key(1, 2),
                node: NodeId(0),
            },
            TraceEvent::AllocRemote {
                page: key(1, 2),
                node: NodeId(1),
            },
            TraceEvent::AllocStall { node: NodeId(0) },
            TraceEvent::Migrate {
                page: key(1, 2),
                from: NodeId(0),
                to: NodeId(1),
            },
            TraceEvent::MigrateFail {
                page: key(1, 2),
                to: NodeId(1),
            },
            TraceEvent::PromoteCandidate {
                page: key(1, 2),
                demoted: true,
            },
            TraceEvent::PromoteAttempt {
                page: key(1, 2),
                from: NodeId(1),
                to: NodeId(0),
            },
            TraceEvent::PromoteSuccess {
                page: key(1, 2),
                from: NodeId(1),
                to: NodeId(0),
                page_type: PageType::Anon,
            },
            TraceEvent::PromoteFail {
                page: key(1, 2),
                reason: PromoteFailReason::LowMem,
            },
            TraceEvent::PromoteSkip {
                page: key(1, 2),
                reason: PromoteSkipReason::Inactive,
            },
            TraceEvent::Demote {
                page: key(1, 2),
                from: NodeId(0),
                to: NodeId(1),
                page_type: PageType::File,
            },
            TraceEvent::DemoteFallback {
                page: key(1, 2),
                node: NodeId(0),
            },
            TraceEvent::ReclaimScan {
                node: NodeId(0),
                pages: 32,
            },
            TraceEvent::ReclaimSteal {
                page: key(1, 2),
                node: NodeId(0),
            },
            TraceEvent::SwapOut {
                page: key(1, 2),
                node: NodeId(1),
            },
            TraceEvent::SwapIn {
                page: key(1, 2),
                node: NodeId(0),
            },
            TraceEvent::FileDrop {
                page: key(1, 2),
                node: NodeId(0),
            },
            TraceEvent::Collapse {
                page: key(1, 2),
                node: NodeId(0),
                pages: 512,
            },
            TraceEvent::Split {
                page: key(1, 2),
                node: NodeId(1),
                pages: 512,
            },
            TraceEvent::Compact {
                node: NodeId(0),
                migrated: 64,
                success: true,
            },
            TraceEvent::WatermarkCross {
                node: NodeId(0),
                level: "demote",
                free: 17,
                below: true,
            },
            TraceEvent::DaemonWake {
                daemon: "kswapd",
                node: Some(NodeId(1)),
            },
            TraceEvent::Decision {
                policy: "tpp",
                reason: "ping_pong",
                page: Some(key(1, 2)),
            },
        ];
        let mut names = std::collections::HashSet::new();
        for (i, event) in events.iter().enumerate() {
            assert!(
                names.insert(event.name()),
                "duplicate name {}",
                event.name()
            );
            let json = TraceRecord {
                ts_ns: i as u64,
                event: *event,
            }
            .to_json();
            assert!(
                json.starts_with(&format!("{{\"ts\":{i},\"event\":\"")),
                "{json}"
            );
            assert!(json.ends_with('}'), "{json}");
            // Balanced quotes: every key/value string is closed.
            assert_eq!(json.matches('"').count() % 2, 0, "{json}");
        }
    }

    #[test]
    fn count_into_maps_events_to_expected_counters() {
        let mut vs = VmStat::new();
        TraceEvent::Demote {
            page: key(1, 1),
            from: NodeId(0),
            to: NodeId(1),
            page_type: PageType::Anon,
        }
        .count_into(&mut vs);
        TraceEvent::PromoteCandidate {
            page: key(1, 1),
            demoted: true,
        }
        .count_into(&mut vs);
        TraceEvent::SwapIn {
            page: key(1, 1),
            node: NodeId(0),
        }
        .count_into(&mut vs);
        TraceEvent::ReclaimScan {
            node: NodeId(0),
            pages: 5,
        }
        .count_into(&mut vs);
        TraceEvent::Decision {
            policy: "x",
            reason: "y",
            page: None,
        }
        .count_into(&mut vs);
        assert_eq!(vs.get(VmEvent::PgDemoteAnon), 1);
        assert_eq!(vs.get(VmEvent::PgPromoteCandidate), 1);
        assert_eq!(vs.get(VmEvent::PgPromoteCandidateDemoted), 1);
        assert_eq!(vs.get(VmEvent::PswpIn), 1);
        assert_eq!(vs.get(VmEvent::PgMajFault), 1);
        assert_eq!(vs.get(VmEvent::PgScan), 5);
    }

    #[test]
    fn huge_page_events_map_to_thp_counters() {
        let mut vs = VmStat::new();
        TraceEvent::Collapse {
            page: key(1, 0),
            node: NodeId(0),
            pages: 512,
        }
        .count_into(&mut vs);
        TraceEvent::Split {
            page: key(1, 0),
            node: NodeId(1),
            pages: 512,
        }
        .count_into(&mut vs);
        TraceEvent::Compact {
            node: NodeId(0),
            migrated: 3,
            success: true,
        }
        .count_into(&mut vs);
        TraceEvent::Compact {
            node: NodeId(0),
            migrated: 0,
            success: false,
        }
        .count_into(&mut vs);
        assert_eq!(vs.get(VmEvent::ThpCollapseAlloc), 1);
        assert_eq!(vs.get(VmEvent::ThpSplit), 1);
        assert_eq!(vs.get(VmEvent::CompactSuccess), 1);
        assert_eq!(vs.get(VmEvent::CompactFail), 1);
    }

    #[test]
    fn ring_sink_bounds_and_counts() {
        let ring = RingSink::new(2);
        let mut sink = ring.clone();
        for i in 0..3u64 {
            sink.emit(&TraceRecord {
                ts_ns: i,
                event: TraceEvent::AllocStall { node: NodeId(0) },
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.count_named("alloc_stall"), 2);
        let snap = ring.snapshot();
        assert_eq!(snap[0].ts_ns, 1); // oldest was dropped
    }

    #[test]
    fn writer_sink_emits_one_line_per_record() {
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Rc::new(RefCell::new(Vec::new()));
        {
            let mut sink = WriterSink::new(Box::new(Shared(buf.clone())));
            sink.emit(&TraceRecord {
                ts_ns: 7,
                event: TraceEvent::SwapOut {
                    page: key(3, 9),
                    node: NodeId(1),
                },
            });
            assert_eq!(sink.lines(), 1);
        }
        let text = String::from_utf8(buf.borrow().clone()).unwrap();
        assert_eq!(
            text,
            "{\"ts\":7,\"event\":\"swap_out\",\"pid\":3,\"vpn\":9,\"node\":1}\n"
        );
    }

    #[test]
    fn tee_fans_out_and_reports_enabled() {
        let a = RingSink::new(8);
        let b = RingSink::new(8);
        let mut tee = TeeSink::new()
            .with(Box::new(a.clone()))
            .with(Box::new(b.clone()));
        assert!(tee.enabled());
        tee.emit(&TraceRecord {
            ts_ns: 0,
            event: TraceEvent::AllocStall { node: NodeId(0) },
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(!TeeSink::new().with(Box::new(NullSink)).enabled());
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
