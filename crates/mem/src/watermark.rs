//! Free-page watermarks, including TPP's decoupled allocation/demotion
//! watermarks (paper §5.2).
//!
//! Default Linux couples allocation and reclamation around a single set of
//! `min`/`low`/`high` watermarks: reclaim starts below `low`, stops at
//! `high`, and allocations stall (or spill to a remote node) below `min`.
//! TPP adds a `demote_scale_factor` (default 2% of node capacity) so that
//! background demotion *starts earlier* and *reclaims further*, leaving a
//! headroom of free pages for new allocations and promotions.

/// Classic Linux zone watermarks, in pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Watermarks {
    /// Below `min`, allocations on this node fail and spill to the next
    /// node in the fallback list (direct-reclaim territory).
    pub min: u64,
    /// Below `low`, the background reclaimer (kswapd) wakes up.
    pub low: u64,
    /// Reclaim stops once free pages reach `high`.
    pub high: u64,
}

impl Watermarks {
    /// Derives watermarks for a node of `capacity` pages, approximating the
    /// Linux defaults (`watermark_scale_factor` of roughly 0.1% capacity
    /// per gap, floored so tiny test nodes still have distinct levels).
    ///
    /// # Examples
    ///
    /// ```
    /// use tiered_mem::Watermarks;
    /// let wm = Watermarks::for_capacity(262_144); // 1 GiB of 4 KiB pages
    /// assert!(wm.min < wm.low && wm.low < wm.high);
    /// ```
    pub fn for_capacity(capacity: u64) -> Watermarks {
        let gap = (capacity / 1000).max(4);
        let min = gap;
        Watermarks {
            min,
            low: min + gap,
            high: min + 2 * gap,
        }
    }

    /// Watermarks that never trigger (all zero); useful for nodes whose
    /// allocations are not performance-critical in tests.
    pub fn disabled() -> Watermarks {
        Watermarks {
            min: 0,
            low: 0,
            high: 0,
        }
    }

    /// Whether an ordinary allocation may proceed with `free` pages left.
    ///
    /// Mirrors the kernel fast path: allocation is allowed while free pages
    /// stay above `min` (kswapd is woken separately below `low`).
    #[inline]
    pub fn allows_allocation(&self, free: u64) -> bool {
        free > self.min
    }

    /// Whether background reclaim should be running with `free` pages left.
    #[inline]
    pub fn needs_reclaim(&self, free: u64) -> bool {
        free < self.low
    }

    /// Whether reclaim has restored enough headroom to stop.
    #[inline]
    pub fn reclaim_satisfied(&self, free: u64) -> bool {
        free >= self.high
    }
}

/// TPP's decoupled watermark set (paper §5.2).
///
/// * Allocations are governed by the classic watermarks (`base`).
/// * Background **demotion** triggers once free pages drop below
///   `demote_trigger` (a `demote_scale_factor` fraction of capacity,
///   default 2%) and keeps going until `demote_target`, which sits *above*
///   the allocation watermark — this is the decoupling that maintains free
///   headroom for new allocations and promotions.
/// * **Promotions** ignore the allocation watermark entirely and are only
///   bounded by `min`, so hot pages are never trapped on the CXL node just
///   because the local node is moderately busy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TppWatermarks {
    /// The classic watermark triple allocations check against.
    pub base: Watermarks,
    /// Demotion starts when free pages fall below this (2% of capacity by
    /// default).
    pub demote_trigger: u64,
    /// Demotion continues until free pages reach this (above the trigger).
    pub demote_target: u64,
}

/// Default `demote_scale_factor` in basis points (2% = 200 bp), matching
/// the `/proc/sys/vm/demote_scale_factor` default from the paper.
pub const DEFAULT_DEMOTE_SCALE_BP: u32 = 200;

impl TppWatermarks {
    /// Builds the decoupled watermark set for a node of `capacity` pages
    /// with the given `demote_scale_factor` in basis points (1/100 of a
    /// percent; the paper's default 2% is 200 bp).
    ///
    /// The demotion target is 1.5× the trigger so the reclaimer always
    /// frees more than the bare trigger level, maintaining headroom.
    ///
    /// # Examples
    ///
    /// ```
    /// use tiered_mem::{TppWatermarks, DEFAULT_DEMOTE_SCALE_BP};
    /// let wm = TppWatermarks::for_capacity(100_000, DEFAULT_DEMOTE_SCALE_BP);
    /// assert_eq!(wm.demote_trigger, 2000); // 2% of capacity
    /// assert!(wm.demote_target > wm.demote_trigger);
    /// ```
    pub fn for_capacity(capacity: u64, demote_scale_bp: u32) -> TppWatermarks {
        let base = Watermarks::for_capacity(capacity);
        let trigger = (capacity * demote_scale_bp as u64 / 10_000).max(base.high);
        TppWatermarks {
            base,
            demote_trigger: trigger,
            demote_target: trigger + trigger / 2,
        }
    }

    /// Whether background demotion should run with `free` pages left.
    #[inline]
    pub fn needs_demotion(&self, free: u64) -> bool {
        free < self.demote_trigger
    }

    /// Whether demotion has restored the free-page headroom.
    #[inline]
    pub fn demotion_satisfied(&self, free: u64) -> bool {
        free >= self.demote_target
    }

    /// Whether a promotion into this node may proceed with `free` pages
    /// left. Promotions bypass the allocation watermark (paper §5.3) and
    /// only respect the hard `min` floor.
    #[inline]
    pub fn allows_promotion(&self, free: u64) -> bool {
        free > self.base.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_ordering_holds_for_all_sizes() {
        for cap in [16u64, 100, 1000, 262_144, 26_214_400] {
            let wm = Watermarks::for_capacity(cap);
            assert!(wm.min < wm.low, "cap={cap}");
            assert!(wm.low < wm.high, "cap={cap}");
            assert!(
                wm.high < cap.max(16),
                "cap={cap}: high {} too large",
                wm.high
            );
        }
    }

    #[test]
    fn allocation_and_reclaim_predicates() {
        let wm = Watermarks::for_capacity(10_000);
        assert!(wm.allows_allocation(wm.min + 1));
        assert!(!wm.allows_allocation(wm.min));
        assert!(wm.needs_reclaim(wm.low - 1));
        assert!(!wm.needs_reclaim(wm.low));
        assert!(wm.reclaim_satisfied(wm.high));
        assert!(!wm.reclaim_satisfied(wm.high - 1));
    }

    #[test]
    fn tpp_trigger_is_two_percent_by_default() {
        let wm = TppWatermarks::for_capacity(1_000_000, DEFAULT_DEMOTE_SCALE_BP);
        assert_eq!(wm.demote_trigger, 20_000);
        assert_eq!(wm.demote_target, 30_000);
    }

    #[test]
    fn tpp_demotion_watermark_sits_above_allocation_watermark() {
        // The paper requires demotion_watermark > allocation_watermark so
        // reclaim keeps running after allocations resume.
        for cap in [10_000u64, 1_000_000, 25_000_000] {
            let wm = TppWatermarks::for_capacity(cap, DEFAULT_DEMOTE_SCALE_BP);
            assert!(wm.demote_trigger >= wm.base.high);
            assert!(wm.demote_target > wm.demote_trigger);
        }
    }

    #[test]
    fn tpp_trigger_never_below_classic_high() {
        // With a tiny scale factor the trigger degrades to the classic high
        // watermark rather than below it.
        let wm = TppWatermarks::for_capacity(10_000, 1);
        assert_eq!(wm.demote_trigger, wm.base.high);
    }

    #[test]
    fn promotion_bypasses_allocation_watermark() {
        let wm = TppWatermarks::for_capacity(100_000, DEFAULT_DEMOTE_SCALE_BP);
        // Free count between min and low: ordinary allocation is allowed
        // only above min, promotion likewise — but promotion stays allowed
        // even when free < demote_trigger (node under demotion pressure).
        let free = wm.base.min + 1;
        assert!(wm.allows_promotion(free));
        assert!(wm.needs_demotion(free));
        assert!(!wm.allows_promotion(wm.base.min));
    }

    #[test]
    fn disabled_watermarks_never_trigger() {
        let wm = Watermarks::disabled();
        assert!(wm.allows_allocation(1));
        assert!(!wm.needs_reclaim(0));
        assert!(wm.reclaim_satisfied(0));
    }
}
