//! Per-frame state flags, mirroring the Linux `page->flags` bits that the
//! TPP mechanisms depend on.
//!
//! The paper repurposes the unused `0x40` page-flag bit as `PG_demoted`
//! (§5.5); we keep the same bit value for fidelity.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A set of page flags.
///
/// Implemented as a transparent `u16` bitset. The type deliberately mirrors
/// the ergonomics of the `bitflags` crate without taking the dependency.
///
/// # Examples
///
/// ```
/// use tiered_mem::PageFlags;
///
/// let mut f = PageFlags::empty();
/// f.insert(PageFlags::REFERENCED);
/// assert!(f.contains(PageFlags::REFERENCED));
/// f.remove(PageFlags::REFERENCED);
/// assert!(f.is_empty());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PageFlags(u16);

impl PageFlags {
    /// The page was referenced since the last LRU scan (PTE accessed-bit
    /// analogue; `PG_referenced`).
    pub const REFERENCED: PageFlags = PageFlags(0x01);
    /// The page is on an active LRU list (`PG_active`).
    pub const ACTIVE: PageFlags = PageFlags(0x02);
    /// The page has been dirtied and needs writeback before reclaim
    /// (`PG_dirty`).
    pub const DIRTY: PageFlags = PageFlags(0x04);
    /// NUMA-balancing hint: the PTE was poisoned by the sampling scanner,
    /// so the next access takes a minor fault (the `PROT_NONE` analogue).
    pub const HINTED: PageFlags = PageFlags(0x08);
    /// The page is temporarily isolated from the LRU for migration or
    /// reclaim (`PG_isolated` analogue).
    pub const ISOLATED: PageFlags = PageFlags(0x10);
    /// The page cannot be evicted (mlocked; `PG_unevictable`).
    pub const UNEVICTABLE: PageFlags = PageFlags(0x20);
    /// The page was demoted to a slower tier and not yet promoted back.
    /// TPP's `PG_demoted`, bit `0x40` exactly as in the paper (§5.5).
    pub const DEMOTED: PageFlags = PageFlags(0x40);
    /// The frame is the head of a compound (huge) page (`PG_head`). The
    /// compound's order is stored on the head frame; only the head is
    /// linked on an LRU list.
    pub const HEAD: PageFlags = PageFlags(0x80);
    /// The frame is a tail of a compound page (`PageTail` analogue). Tail
    /// frames keep their own owner and reference/hotness state but are
    /// never LRU-linked, sampled, or migrated individually.
    pub const TAIL: PageFlags = PageFlags(0x100);
    /// The frame heads a free block on a buddy free list (`PG_buddy`).
    /// Maintained by [`FrameTable`](crate::FrameTable) only.
    pub const BUDDY: PageFlags = PageFlags(0x200);

    /// An empty flag set.
    #[inline]
    pub const fn empty() -> PageFlags {
        PageFlags(0)
    }

    /// Whether no flag is set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether every flag in `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PageFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag in `other` is set in `self`.
    #[inline]
    pub const fn intersects(self, other: PageFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Sets every flag in `other`.
    #[inline]
    pub fn insert(&mut self, other: PageFlags) {
        self.0 |= other.0;
    }

    /// Clears every flag in `other`.
    #[inline]
    pub fn remove(&mut self, other: PageFlags) {
        self.0 &= !other.0;
    }

    /// Sets or clears `other` depending on `value`.
    #[inline]
    pub fn set(&mut self, other: PageFlags, value: bool) {
        if value {
            self.insert(other);
        } else {
            self.remove(other);
        }
    }

    /// Clears `other` and reports whether it was previously set
    /// (`TestClearPageReferenced` analogue).
    #[inline]
    pub fn test_and_clear(&mut self, other: PageFlags) -> bool {
        let was = self.intersects(other);
        self.remove(other);
        was
    }

    /// The raw bit representation.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }
}

impl BitOr for PageFlags {
    type Output = PageFlags;
    fn bitor(self, rhs: PageFlags) -> PageFlags {
        PageFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PageFlags {
    fn bitor_assign(&mut self, rhs: PageFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for PageFlags {
    type Output = PageFlags;
    fn bitand(self, rhs: PageFlags) -> PageFlags {
        PageFlags(self.0 & rhs.0)
    }
}

impl Not for PageFlags {
    type Output = PageFlags;
    fn not(self) -> PageFlags {
        PageFlags(!self.0)
    }
}

impl fmt::Debug for PageFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(PageFlags, &str); 10] = [
            (PageFlags::REFERENCED, "REFERENCED"),
            (PageFlags::ACTIVE, "ACTIVE"),
            (PageFlags::DIRTY, "DIRTY"),
            (PageFlags::HINTED, "HINTED"),
            (PageFlags::ISOLATED, "ISOLATED"),
            (PageFlags::UNEVICTABLE, "UNEVICTABLE"),
            (PageFlags::DEMOTED, "DEMOTED"),
            (PageFlags::HEAD, "HEAD"),
            (PageFlags::TAIL, "TAIL"),
            (PageFlags::BUDDY, "BUDDY"),
        ];
        if self.is_empty() {
            return f.write_str("PageFlags(empty)");
        }
        let mut first = true;
        f.write_str("PageFlags(")?;
        for (flag, name) in NAMES {
            if self.contains(flag) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demoted_bit_matches_paper() {
        // The paper repurposes the unused 0x40 page-flag bit for PG_demoted.
        assert_eq!(PageFlags::DEMOTED.bits(), 0x40);
    }

    #[test]
    fn insert_remove_contains() {
        let mut f = PageFlags::empty();
        assert!(f.is_empty());
        f.insert(PageFlags::ACTIVE | PageFlags::DIRTY);
        assert!(f.contains(PageFlags::ACTIVE));
        assert!(f.contains(PageFlags::DIRTY));
        assert!(f.contains(PageFlags::ACTIVE | PageFlags::DIRTY));
        assert!(!f.contains(PageFlags::ACTIVE | PageFlags::HINTED));
        assert!(f.intersects(PageFlags::ACTIVE | PageFlags::HINTED));
        f.remove(PageFlags::ACTIVE);
        assert!(!f.contains(PageFlags::ACTIVE));
        assert!(f.contains(PageFlags::DIRTY));
    }

    #[test]
    fn test_and_clear_reports_previous_state() {
        let mut f = PageFlags::REFERENCED;
        assert!(f.test_and_clear(PageFlags::REFERENCED));
        assert!(!f.test_and_clear(PageFlags::REFERENCED));
        assert!(f.is_empty());
    }

    #[test]
    fn set_conditionally() {
        let mut f = PageFlags::empty();
        f.set(PageFlags::HINTED, true);
        assert!(f.contains(PageFlags::HINTED));
        f.set(PageFlags::HINTED, false);
        assert!(!f.contains(PageFlags::HINTED));
    }

    #[test]
    fn debug_is_never_empty_string() {
        assert_eq!(format!("{:?}", PageFlags::empty()), "PageFlags(empty)");
        assert_eq!(
            format!("{:?}", PageFlags::ACTIVE | PageFlags::DEMOTED),
            "PageFlags(ACTIVE|DEMOTED)"
        );
    }

    #[test]
    fn flags_are_distinct_bits() {
        let all = [
            PageFlags::REFERENCED,
            PageFlags::ACTIVE,
            PageFlags::DIRTY,
            PageFlags::HINTED,
            PageFlags::ISOLATED,
            PageFlags::UNEVICTABLE,
            PageFlags::DEMOTED,
            PageFlags::HEAD,
            PageFlags::TAIL,
            PageFlags::BUDDY,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert!(!a.intersects(*b), "{a:?} overlaps {b:?}");
                }
            }
        }
    }
}
