//! # tiered-mem
//!
//! A page-granular memory substrate for simulating tiered-memory systems,
//! built for the reproduction of *TPP: Transparent Page Placement for
//! CXL-Enabled Tiered Memory* (ASPLOS 2023).
//!
//! The crate models the parts of the Linux memory-management subsystem
//! that the paper's mechanisms live in:
//!
//! * a machine-wide **frame table** with per-node free lists
//!   ([`FrameTable`]),
//! * **NUMA nodes** of different technology tiers — CPU-attached DRAM,
//!   CPU-less CXL expanders, and switch-attached CXL pools
//!   ([`MemoryNode`], [`NodeKind`]),
//! * a machine **topology** with a NUMA distance matrix and per-link
//!   properties, from which allocation fallback and demotion orders are
//!   derived ([`Topology`]),
//! * free-page **watermarks**, including TPP's decoupled
//!   allocation/demotion watermarks ([`Watermarks`], [`TppWatermarks`]),
//! * per-node **LRU lists** (`active`/`inactive` × `anon`/`file`) with
//!   intrusive O(1) isolation ([`NodeLru`]),
//! * per-process **page tables** with swap entries ([`AddressSpace`]),
//! * a **migration engine** and a slow **swap device**
//!   ([`Memory::migrate_page`], [`SwapDevice`]),
//! * `/proc/vmstat`-style **event counters** including all of TPP's new
//!   observability counters ([`VmStat`], [`VmEvent`]),
//! * structured **event tracing** beneath the counters: every counted
//!   mutation can also emit a timestamped [`TraceEvent`] through a
//!   pluggable [`EventSink`] ([`telemetry`]).
//!
//! Everything is *mechanism*; placement *policy* (when to demote, what to
//! promote) lives in the `tpp` crate.
//!
//! ## Example
//!
//! ```
//! use tiered_mem::{Memory, NodeId, NodeKind, PageType, Pid, Vpn};
//!
//! // A machine with 256 MiB of local DRAM and 1 GiB of CXL memory.
//! let mut memory = Memory::builder()
//!     .node(NodeKind::LocalDram, tiered_mem::pages_from_mib(256))
//!     .node(NodeKind::Cxl, tiered_mem::pages_from_mib(1024))
//!     .build();
//!
//! memory.create_process(Pid(1));
//! let pfn = memory.alloc_and_map(NodeId::LOCAL, Pid(1), Vpn(0), PageType::Anon)?;
//! // Demote it to the CXL node.
//! let moved = memory.migrate_page(pfn, NodeId(1))?;
//! assert_eq!(memory.frames().frame(moved).node(), NodeId(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod flags;
mod frame;
mod lru;
mod memory;
mod node;
mod page_table;
mod swap;
pub mod telemetry;
mod topology;
mod types;
mod vmstat;
mod watermark;

pub use error::{AllocError, MigrateError, SwapError};
pub use flags::PageFlags;
pub use frame::{Frame, FrameState, FrameTable, HUGE_PAGE_FRAMES, MAX_PAGE_ORDER};
pub use lru::{LruKind, NodeLru};
pub use memory::{Memory, MemoryBuilder};
pub use node::{MemoryNode, NodeKind};
pub use page_table::{AddressSpace, PageLocation};
pub use swap::{SwapDevice, SwapSlot};
pub use telemetry::{
    EventSink, NullSink, PromoteFailReason, PromoteSkipReason, RingSink, TeeSink, TraceEvent,
    TraceRecord, WriterSink,
};
pub use topology::{Link, Topology, LOCAL_DISTANCE};
pub use types::{
    mib_from_pages, pages_from_mib, NodeId, NodeList, PageKey, PageType, Pfn, Pid, ThpMode, Vpn,
    GIB, MIB, PAGE_SIZE,
};
pub use vmstat::{VmEvent, VmStat};
pub use watermark::{TppWatermarks, Watermarks, DEFAULT_DEMOTE_SCALE_BP};
