//! Property-style tests for the memory substrate: arbitrary operation
//! sequences must never break the cross-structure invariants that
//! `Memory::validate` checks (frame accounting, LRU partition, page-table
//! ↔ rmap bijection, swap-slot consistency).
//!
//! `tiered-mem` is dependency-free, so randomised sequences come from a
//! local SplitMix64 generator instead of proptest; every case is a pure
//! function of its seed.

use tiered_mem::{LruKind, Memory, NodeId, NodeKind, PageLocation, PageType, Pfn, Pid, Vpn};

/// Minimal deterministic generator for test sequences (SplitMix64).
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One step of a random workload against the substrate.
#[derive(Clone, Debug)]
enum Op {
    Map { node: u8, vpn: u64, ptype: u8 },
    Release { vpn: u64 },
    Migrate { vpn: u64, dst: u8 },
    SwapOut { vpn: u64 },
    SwapIn { vpn: u64, node: u8 },
    Activate { vpn: u64 },
    Deactivate { vpn: u64 },
    Rotate { vpn: u64 },
    DropFile { vpn: u64 },
}

fn random_op(rng: &mut TestRng) -> Op {
    let vpn = rng.below(32);
    match rng.below(9) {
        0 => Op::Map {
            node: rng.below(2) as u8,
            vpn,
            ptype: rng.below(3) as u8,
        },
        1 => Op::Release { vpn },
        2 => Op::Migrate {
            vpn,
            dst: rng.below(2) as u8,
        },
        3 => Op::SwapOut { vpn },
        4 => Op::SwapIn {
            vpn,
            node: rng.below(2) as u8,
        },
        5 => Op::Activate { vpn },
        6 => Op::Deactivate { vpn },
        7 => Op::Rotate { vpn },
        _ => Op::DropFile { vpn },
    }
}

fn random_ops(seed: u64, max_len: u64) -> Vec<Op> {
    let mut rng = TestRng(seed);
    let len = 1 + rng.below(max_len);
    (0..len).map(|_| random_op(&mut rng)).collect()
}

fn ptype_of(code: u8) -> PageType {
    match code % 3 {
        0 => PageType::Anon,
        1 => PageType::File,
        _ => PageType::Tmpfs,
    }
}

fn small_memory() -> Memory {
    Memory::builder()
        .node(NodeKind::LocalDram, 24)
        .node(NodeKind::Cxl, 24)
        .swap_pages(64)
        .build()
}

fn mapped_pfn(m: &Memory, pid: Pid, vpn: Vpn) -> Option<Pfn> {
    m.space(pid).translate(vpn).and_then(|l| l.pfn())
}

fn apply(m: &mut Memory, pid: Pid, op: &Op) {
    match *op {
        Op::Map { node, vpn, ptype } => {
            let vpn = Vpn(vpn);
            if m.space(pid).translate(vpn).is_none() {
                let _ = m.alloc_and_map(NodeId(node), pid, vpn, ptype_of(ptype));
            }
        }
        Op::Release { vpn } => {
            m.release(pid, Vpn(vpn));
        }
        Op::Migrate { vpn, dst } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                let _ = m.migrate_page(pfn, NodeId(dst));
            }
        }
        Op::SwapOut { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                let _ = m.swap_out(pfn);
            }
        }
        Op::SwapIn { vpn, node } => {
            let vpn = Vpn(vpn);
            if let Some(PageLocation::Swapped(_)) = m.space(pid).translate(vpn) {
                // Page type must match the LRU class later; anon is fine as
                // the simulator re-types on swap-in like a fresh mapping.
                let _ = m.swap_in(pid, vpn, NodeId(node), PageType::Anon);
            }
        }
        Op::Activate { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                m.activate_page(pfn);
            }
        }
        Op::Deactivate { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                m.deactivate_page(pfn);
            }
        }
        Op::Rotate { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                m.rotate_page(pfn);
            }
        }
        Op::DropFile { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                if m.frames().frame(pfn).page_type().is_file_backed() {
                    m.drop_file_page(pfn);
                }
            }
        }
    }
}

/// Any op sequence leaves all substrate invariants intact.
#[test]
fn random_ops_preserve_invariants() {
    for seed in 0..128u64 {
        let ops = random_ops(seed, 199);
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        for op in &ops {
            apply(&mut m, pid, op);
            m.validate();
        }
    }
}

/// Free + used always equals capacity regardless of op order, and the
/// swap device never leaks slots after process destruction.
#[test]
fn teardown_releases_all_resources() {
    for seed in 1000..1064u64 {
        let ops = random_ops(seed, 149);
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        for op in &ops {
            apply(&mut m, pid, op);
        }
        m.destroy_process(pid);
        assert_eq!(m.free_pages(NodeId(0)), 24, "seed {seed}");
        assert_eq!(m.free_pages(NodeId(1)), 24, "seed {seed}");
        assert_eq!(m.swap().used_slots(), 0, "seed {seed}");
    }
}

/// Migration never changes what a process observes: the (vpn → type)
/// view is identical before and after a migration pass.
#[test]
fn migration_is_transparent_to_the_process() {
    for seed in 2000..2032u64 {
        let mut rng = TestRng(seed);
        let count = 1 + rng.below(23);
        let vpns: std::collections::BTreeSet<u64> = (0..count).map(|_| rng.below(64)).collect();
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        let mut view = Vec::new();
        for (i, &v) in vpns.iter().enumerate() {
            let ptype = ptype_of(i as u8);
            if m.alloc_and_map(NodeId(0), pid, Vpn(v), ptype).is_ok() {
                view.push((Vpn(v), ptype));
            }
        }
        // Migrate everything we can to the CXL node.
        for &(vpn, _) in &view {
            if let Some(pfn) = mapped_pfn(&m, pid, vpn) {
                let _ = m.migrate_page(pfn, NodeId(1));
            }
        }
        for &(vpn, ptype) in &view {
            let pfn = mapped_pfn(&m, pid, vpn).expect("mapping lost in migration");
            assert_eq!(m.frames().frame(pfn).page_type(), ptype);
            assert_eq!(m.frames().frame(pfn).owner().unwrap().vpn, vpn);
        }
        m.validate();
    }
}

/// LRU lists form a partition of each node's allocated pages: every
/// allocated frame is on exactly one list, with the class matching its
/// page type.
#[test]
fn lru_is_a_partition() {
    for seed in 3000..3064u64 {
        let ops = random_ops(seed, 149);
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        for op in &ops {
            apply(&mut m, pid, op);
        }
        for node in [NodeId(0), NodeId(1)] {
            let mut counted = 0u64;
            for kind in LruKind::ALL {
                for pfn in m.node(node).lru.collect(m.frames(), kind) {
                    let f = m.frames().frame(pfn);
                    assert!(f.is_allocated());
                    assert_eq!(f.page_type().is_anon(), kind.is_anon());
                    counted += 1;
                }
            }
            assert_eq!(
                counted,
                m.frames().used_pages(node),
                "seed {seed} node {node:?}"
            );
        }
    }
}
