//! Property-based tests for the memory substrate: arbitrary operation
//! sequences must never break the cross-structure invariants that
//! `Memory::validate` checks (frame accounting, LRU partition, page-table
//! ↔ rmap bijection, swap-slot consistency).

use proptest::prelude::*;

use tiered_mem::{
    LruKind, Memory, NodeId, NodeKind, PageLocation, PageType, Pfn, Pid, Vpn,
};

/// One step of a random workload against the substrate.
#[derive(Clone, Debug)]
enum Op {
    Map { node: u8, vpn: u64, ptype: u8 },
    Release { vpn: u64 },
    Migrate { vpn: u64, dst: u8 },
    SwapOut { vpn: u64 },
    SwapIn { vpn: u64, node: u8 },
    Activate { vpn: u64 },
    Deactivate { vpn: u64 },
    Rotate { vpn: u64 },
    DropFile { vpn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2u8, 0..32u64, 0..3u8).prop_map(|(node, vpn, ptype)| Op::Map { node, vpn, ptype }),
        (0..32u64).prop_map(|vpn| Op::Release { vpn }),
        (0..32u64, 0..2u8).prop_map(|(vpn, dst)| Op::Migrate { vpn, dst }),
        (0..32u64).prop_map(|vpn| Op::SwapOut { vpn }),
        (0..32u64, 0..2u8).prop_map(|(vpn, node)| Op::SwapIn { vpn, node }),
        (0..32u64).prop_map(|vpn| Op::Activate { vpn }),
        (0..32u64).prop_map(|vpn| Op::Deactivate { vpn }),
        (0..32u64).prop_map(|vpn| Op::Rotate { vpn }),
        (0..32u64).prop_map(|vpn| Op::DropFile { vpn }),
    ]
}

fn ptype_of(code: u8) -> PageType {
    match code % 3 {
        0 => PageType::Anon,
        1 => PageType::File,
        _ => PageType::Tmpfs,
    }
}

fn small_memory() -> Memory {
    Memory::builder()
        .node(NodeKind::LocalDram, 24)
        .node(NodeKind::Cxl, 24)
        .swap_pages(64)
        .build()
}

fn mapped_pfn(m: &Memory, pid: Pid, vpn: Vpn) -> Option<Pfn> {
    m.space(pid).translate(vpn).and_then(|l| l.pfn())
}

fn apply(m: &mut Memory, pid: Pid, op: &Op) {
    match *op {
        Op::Map { node, vpn, ptype } => {
            let vpn = Vpn(vpn);
            if m.space(pid).translate(vpn).is_none() {
                let _ = m.alloc_and_map(NodeId(node), pid, vpn, ptype_of(ptype));
            }
        }
        Op::Release { vpn } => {
            m.release(pid, Vpn(vpn));
        }
        Op::Migrate { vpn, dst } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                let _ = m.migrate_page(pfn, NodeId(dst));
            }
        }
        Op::SwapOut { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                let _ = m.swap_out(pfn);
            }
        }
        Op::SwapIn { vpn, node } => {
            let vpn = Vpn(vpn);
            if let Some(PageLocation::Swapped(_)) = m.space(pid).translate(vpn) {
                // Page type must match the LRU class later; anon is fine as
                // the simulator re-types on swap-in like a fresh mapping.
                let _ = m.swap_in(pid, vpn, NodeId(node), PageType::Anon);
            }
        }
        Op::Activate { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                m.activate_page(pfn);
            }
        }
        Op::Deactivate { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                m.deactivate_page(pfn);
            }
        }
        Op::Rotate { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                m.rotate_page(pfn);
            }
        }
        Op::DropFile { vpn } => {
            if let Some(pfn) = mapped_pfn(m, pid, Vpn(vpn)) {
                if m.frames().frame(pfn).page_type().is_file_backed() {
                    m.drop_file_page(pfn);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any op sequence leaves all substrate invariants intact.
    #[test]
    fn random_ops_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        for op in &ops {
            apply(&mut m, pid, op);
            m.validate();
        }
    }

    /// Free + used always equals capacity regardless of op order, and the
    /// swap device never leaks slots after process destruction.
    #[test]
    fn teardown_releases_all_resources(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        for op in &ops {
            apply(&mut m, pid, op);
        }
        m.destroy_process(pid);
        prop_assert_eq!(m.free_pages(NodeId(0)), 24);
        prop_assert_eq!(m.free_pages(NodeId(1)), 24);
        prop_assert_eq!(m.swap().used_slots(), 0);
    }

    /// Migration never changes what a process observes: the (vpn → type)
    /// view is identical before and after a migration pass.
    #[test]
    fn migration_is_transparent_to_the_process(
        vpns in prop::collection::btree_set(0..64u64, 1..24),
    ) {
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        let mut view = Vec::new();
        for (i, &v) in vpns.iter().enumerate() {
            let ptype = ptype_of(i as u8);
            if m.alloc_and_map(NodeId(0), pid, Vpn(v), ptype).is_ok() {
                view.push((Vpn(v), ptype));
            }
        }
        // Migrate everything we can to the CXL node.
        for &(vpn, _) in &view {
            if let Some(pfn) = mapped_pfn(&m, pid, vpn) {
                let _ = m.migrate_page(pfn, NodeId(1));
            }
        }
        for &(vpn, ptype) in &view {
            let pfn = mapped_pfn(&m, pid, vpn).expect("mapping lost in migration");
            prop_assert_eq!(m.frames().frame(pfn).page_type(), ptype);
            prop_assert_eq!(m.frames().frame(pfn).owner().unwrap().vpn, vpn);
        }
        m.validate();
    }

    /// LRU lists form a partition of each node's allocated pages: every
    /// allocated frame is on exactly one list, with the class matching its
    /// page type.
    #[test]
    fn lru_is_a_partition(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut m = small_memory();
        let pid = Pid(1);
        m.create_process(pid);
        for op in &ops {
            apply(&mut m, pid, op);
        }
        for node in [NodeId(0), NodeId(1)] {
            let mut counted = 0u64;
            for kind in LruKind::ALL {
                for pfn in m.node(node).lru.collect(m.frames(), kind) {
                    let f = m.frames().frame(pfn);
                    prop_assert!(f.is_allocated());
                    prop_assert_eq!(f.page_type().is_anon(), kind.is_anon());
                    counted += 1;
                }
            }
            prop_assert_eq!(counted, m.frames().used_pages(node));
        }
    }
}
