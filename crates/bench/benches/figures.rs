//! End-to-end figure benchmarks: wall-clock cost of regenerating each
//! evaluation experiment at quick scale. These double as smoke tests
//! that every figure's pipeline runs under `cargo bench`.

use tpp_bench::microbench::bench;

use tiered_sim::SEC;
use tpp::configs;
use tpp::experiment::{run_cell, PolicyChoice};

fn bench_cell(name: &str, choice: PolicyChoice) {
    let profile = tiered_workloads::cache1(3_000);
    let ws = profile.working_set_pages();
    bench(name, || {
        let r =
            run_cell(&profile, configs::one_to_four(ws), &choice, 10 * SEC, 1).expect("supported");
        std::hint::black_box(r.throughput);
    });
}

fn bench_eval_cells() {
    bench_cell("figures/cache1_1to4_linux_10s", PolicyChoice::Linux);
    bench_cell("figures/cache1_1to4_tpp_10s", PolicyChoice::Tpp);
    bench_cell(
        "figures/cache1_1to4_numabal_10s",
        PolicyChoice::NumaBalancing,
    );
}

fn bench_characterization() {
    use chameleon::{Chameleon, ChameleonConfig, CollectorConfig};
    use tpp::System;
    let profile = tiered_workloads::web(3_000);
    bench("figures/chameleon_profile_web_10s", || {
        let mut system = System::new(
            configs::all_local(profile.working_set_pages()),
            PolicyChoice::Linux.build(),
            Box::new(profile.build()),
            1,
        )
        .unwrap();
        let mut profiler = Chameleon::new(ChameleonConfig {
            collector: CollectorConfig {
                sample_period: 200,
                cores: 32,
                core_groups: 4,
                mini_interval_ns: SEC,
            },
            interval_ns: 5 * SEC,
            max_gap_intervals: 16,
        });
        system.run_observed(10 * SEC, &mut profiler);
        std::hint::black_box(profiler.worker().tracked_pages());
    });
}

fn main() {
    bench_eval_cells();
    bench_characterization();
}
