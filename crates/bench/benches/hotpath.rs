//! Micro-benchmarks for the per-access hot path: the three layers an
//! access flows through millions of times per simulated second —
//! workload rank sampling, region geometry + offset resolution, and the
//! system's access-resolution fast path. Runs with `harness = false` on
//! the in-tree [`tpp_bench::microbench`] harness (no external deps).

use tpp_bench::microbench::bench;

use tiered_mem::{PageLocation, PageType, Vpn};
use tiered_sim::{Access, AccessKind, SimRng, Workload, SEC};
use tiered_workloads::{RegionSpec, WindowedRegion, ZipfSampler};
use tpp::policy::Tpp;
use tpp::{configs, System};

/// Domain size for the sampler benches: the scale of a large region's
/// hot window, big enough that a CDF binary search would be ~20 probes.
const ZIPF_DOMAIN: u64 = 1_000_000;

fn bench_zipf_sample() {
    let zipf = ZipfSampler::new(ZIPF_DOMAIN, 0.8);
    let mut rng = SimRng::seed(42);
    bench("hotpath/zipf_sample", || {
        std::hint::black_box(zipf.sample(&mut rng));
    });
}

fn bench_region_sample() {
    let spec = RegionSpec::steady(0, ZIPF_DOMAIN, PageType::Anon, 0.3);
    let region = WindowedRegion::new(spec);
    let mut rng = SimRng::seed(43);
    // Advance time a little per draw so the geometry cache sees realistic
    // epoch churn (mostly hits, a miss whenever the dwell step rolls).
    let mut now = 0u64;
    bench("hotpath/region_sample", || {
        now += 1_000; // ~1 µs between accesses
        std::hint::black_box(region.sample(now, &mut rng));
    });
}

fn bench_execute_access_hot() {
    // A warmed-up system: every page of the working set mapped, so the
    // bench exercises the mapped-not-hinted fast path the run loop takes
    // for the overwhelming majority of accesses.
    let ws_pages = 20_000u64;
    let workload = tiered_workloads::uniform(ws_pages).build();
    let pid = workload.pid();
    let memory = configs::two_to_one(ws_pages + ws_pages / 2);
    let mut system = System::new(memory, Box::new(Tpp::new()), Box::new(workload), 44).unwrap();
    system.run(2 * SEC);
    let mapped: Vec<Vpn> = (0..ws_pages)
        .map(Vpn)
        .filter(|&v| {
            matches!(
                system.memory().space(pid).translate(v),
                Some(PageLocation::Mapped(_))
            )
        })
        .collect();
    assert!(
        mapped.len() as u64 > ws_pages / 4,
        "warm-up mapped only {} pages",
        mapped.len()
    );
    let now = system.now_ns();
    let mut i = 0usize;
    bench("hotpath/execute_access_hot", || {
        let access = Access {
            pid,
            vpn: mapped[i % mapped.len()],
            kind: AccessKind::Load,
            page_type: PageType::Anon,
        };
        i += 1;
        std::hint::black_box(system.resolve_access(now, &access));
    });
}

fn main() {
    bench_zipf_sample();
    bench_region_sample();
    bench_execute_access_hot();
}
