//! Micro-benchmarks for the policy hot paths: fault handling, demotion
//! passes, promotion via hint faults, and hint-PTE scanning. Runs with
//! `harness = false` on the in-tree [`tpp_bench::microbench`] harness.

use tpp_bench::microbench::{bench, bench_with_setup};

use tiered_mem::{Memory, NodeId, NodeKind, PageType, Pid, Vpn};
use tiered_sim::{LatencyModel, SimRng};
use tpp::policy::{
    HintSampler, LinuxDefault, PlacementPolicy, PolicyCtx, SampleScope, SamplerConfig, Tpp,
};

fn machine(local: u64, cxl: u64) -> Memory {
    let mut m = Memory::builder()
        .node(NodeKind::LocalDram, local)
        .node(NodeKind::Cxl, cxl)
        .swap_pages(4 * (local + cxl))
        .build();
    m.create_process(Pid(1));
    m
}

fn bench_fault_path() {
    let lat = LatencyModel::datacenter();
    {
        let mut m = machine(1 << 16, 1 << 16);
        let mut rng = SimRng::seed(1);
        let mut policy = LinuxDefault::new();
        let mut vpn = 0u64;
        bench("policy/linux_fault_fastpath", || {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            let out = policy.handle_fault(&mut ctx, Pid(1), Vpn(vpn), PageType::Anon);
            std::hint::black_box(out.pfn);
            m.release(Pid(1), Vpn(vpn));
            vpn += 1;
        });
    }
    {
        let mut m = machine(1 << 16, 1 << 16);
        let mut rng = SimRng::seed(1);
        let mut policy = Tpp::new();
        let mut vpn = 0u64;
        bench("policy/tpp_fault_fastpath", || {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            let out = policy.handle_fault(&mut ctx, Pid(1), Vpn(vpn), PageType::Anon);
            std::hint::black_box(out.pfn);
            m.release(Pid(1), Vpn(vpn));
            vpn += 1;
        });
    }
}

fn bench_demotion_tick() {
    let lat = LatencyModel::datacenter();
    bench_with_setup(
        "policy/tpp_demotion_tick_under_pressure",
        || {
            // Local node filled past the demotion trigger.
            let mut m = machine(4096, 16384);
            for i in 0..4000u64 {
                m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
                    .unwrap();
            }
            (m, Tpp::new(), SimRng::seed(2))
        },
        |(mut m, mut policy, mut rng)| {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            policy.tick(&mut ctx);
            std::hint::black_box(m.vmstat().demoted_total());
        },
    );
}

fn bench_promotion_hint_fault() {
    let lat = LatencyModel::datacenter();
    bench_with_setup(
        "policy/tpp_promotion_hint_fault",
        || {
            let mut m = machine(8192, 8192);
            // Anon pages on the CXL node (start on the active list,
            // so the filter lets them through).
            let pfns: Vec<_> = (0..1024u64)
                .map(|i| {
                    m.alloc_and_map(NodeId(1), Pid(1), Vpn(i), PageType::Anon)
                        .unwrap()
                })
                .collect();
            (m, Tpp::new(), SimRng::seed(3), pfns)
        },
        |(mut m, mut policy, mut rng, pfns)| {
            for pfn in pfns {
                let mut ctx = PolicyCtx {
                    memory: &mut m,
                    latency: &lat,
                    now_ns: 0,
                    rng: &mut rng,
                };
                std::hint::black_box(policy.on_hint_fault(&mut ctx, pfn));
            }
        },
    );
}

fn bench_sampler() {
    let mut m = machine(1 << 15, 1 << 15);
    for i in 0..16384u64 {
        let node = if i % 2 == 0 { NodeId(0) } else { NodeId(1) };
        m.alloc_and_map(node, Pid(1), Vpn(i), PageType::Anon)
            .unwrap();
    }
    let mut sampler = HintSampler::new(SamplerConfig {
        pages_per_scan: 4096,
        period_ns: 1,
        scope: SampleScope::CxlOnly,
    });
    bench("policy/hint_sampler_scan_16k_pages", || {
        std::hint::black_box(sampler.scan(&mut m));
    });
}

fn main() {
    bench_fault_path();
    bench_demotion_tick();
    bench_promotion_hint_fault();
    bench_sampler();
}
