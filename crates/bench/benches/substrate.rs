//! Micro-benchmarks for the memory substrate: the operations every
//! simulated second is made of. Runs with `harness = false` on the
//! in-tree [`tpp_bench::microbench`] harness (no external deps).

use tpp_bench::microbench::{bench, bench_with_setup};

use tiered_mem::{LruKind, Memory, NodeId, NodeKind, PageType, Pfn, Pid, Vpn};

fn machine(local: u64, cxl: u64) -> Memory {
    Memory::builder()
        .node(NodeKind::LocalDram, local)
        .node(NodeKind::Cxl, cxl)
        .swap_pages(local + cxl)
        .build()
}

fn populated(pages: u64) -> (Memory, Vec<Pfn>) {
    let mut m = machine(pages + 64, pages + 64);
    m.create_process(Pid(1));
    let pfns = (0..pages)
        .map(|i| {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap()
        })
        .collect();
    (m, pfns)
}

fn bench_alloc_free() {
    let mut m = machine(4096, 4096);
    m.create_process(Pid(1));
    let mut vpn = 0u64;
    bench("substrate/alloc_and_map+release", || {
        let v = Vpn(vpn % 2048);
        vpn += 1;
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), v, PageType::Anon)
            .unwrap();
        std::hint::black_box(pfn);
        m.release(Pid(1), v);
    });
}

fn bench_lru_rotate() {
    {
        let (mut m, pfns) = populated(4096);
        let mut i = 0usize;
        bench("substrate/lru_move_to_front", || {
            m.rotate_page(pfns[i % pfns.len()]);
            i += 1;
        });
    }
    {
        let (mut m, pfns) = populated(4096);
        let mut i = 0usize;
        bench("substrate/lru_activate_deactivate", || {
            let pfn = pfns[i % pfns.len()];
            m.deactivate_page(pfn);
            m.activate_page(pfn);
            i += 1;
        });
    }
}

fn bench_migration() {
    let (mut m, _) = populated(1024);
    let mut i = 0usize;
    bench("substrate/migrate_page_round_trip", || {
        let pfn = m
            .space(Pid(1))
            .translate(Vpn((i % 1024) as u64))
            .unwrap()
            .pfn()
            .unwrap();
        let moved = m.migrate_page(pfn, NodeId(1)).unwrap();
        let back = m.migrate_page(moved, NodeId(0)).unwrap();
        std::hint::black_box(back);
        i += 1;
    });
}

fn bench_swap() {
    let (mut m, _) = populated(1024);
    let mut i = 0usize;
    bench("substrate/swap_out_in_round_trip", || {
        let v = Vpn((i % 1024) as u64);
        let pfn = m.space(Pid(1)).translate(v).unwrap().pfn().unwrap();
        m.swap_out(pfn).unwrap();
        let back = m.swap_in(Pid(1), v, NodeId(0), PageType::Anon).unwrap();
        std::hint::black_box(back);
        i += 1;
    });
}

fn bench_tail_window() {
    let (m, _) = populated(8192);
    bench("substrate/lru_tail_window_64", || {
        let w = m
            .node(NodeId(0))
            .lru
            .tail_window(m.frames(), LruKind::AnonActive, 64);
        std::hint::black_box(w.len());
    });
}

fn bench_validate() {
    let (m, _) = populated(8192);
    bench_with_setup("substrate/full_validate_8k_pages", || (), |_| m.validate());
}

fn main() {
    bench_alloc_free();
    bench_lru_rotate();
    bench_migration();
    bench_swap();
    bench_tail_window();
    bench_validate();
}
