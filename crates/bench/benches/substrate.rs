//! Micro-benchmarks for the memory substrate: the operations every
//! simulated second is made of. Runs with `harness = false` on the
//! in-tree [`tpp_bench::microbench`] harness (no external deps).

use tpp_bench::microbench::{bench, bench_with_setup};

use tiered_mem::{AddressSpace, LruKind, Memory, NodeId, NodeKind, PageType, Pfn, Pid, Vpn};

fn machine(local: u64, cxl: u64) -> Memory {
    Memory::builder()
        .node(NodeKind::LocalDram, local)
        .node(NodeKind::Cxl, cxl)
        .swap_pages(local + cxl)
        .build()
}

fn populated(pages: u64) -> (Memory, Vec<Pfn>) {
    let mut m = machine(pages + 64, pages + 64);
    m.create_process(Pid(1));
    let pfns = (0..pages)
        .map(|i| {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap()
        })
        .collect();
    (m, pfns)
}

fn bench_alloc_free() {
    let mut m = machine(4096, 4096);
    m.create_process(Pid(1));
    let mut vpn = 0u64;
    bench("substrate/alloc_and_map+release", || {
        let v = Vpn(vpn % 2048);
        vpn += 1;
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), v, PageType::Anon)
            .unwrap();
        std::hint::black_box(pfn);
        m.release(Pid(1), v);
    });
}

fn bench_lru_rotate() {
    {
        let (mut m, pfns) = populated(4096);
        let mut i = 0usize;
        bench("substrate/lru_move_to_front", || {
            m.rotate_page(pfns[i % pfns.len()]);
            i += 1;
        });
    }
    {
        let (mut m, pfns) = populated(4096);
        let mut i = 0usize;
        bench("substrate/lru_activate_deactivate", || {
            let pfn = pfns[i % pfns.len()];
            m.deactivate_page(pfn);
            m.activate_page(pfn);
            i += 1;
        });
    }
}

fn bench_migration() {
    let (mut m, _) = populated(1024);
    let mut i = 0usize;
    bench("substrate/migrate_page_round_trip", || {
        let pfn = m
            .space(Pid(1))
            .translate(Vpn((i % 1024) as u64))
            .unwrap()
            .pfn()
            .unwrap();
        let moved = m.migrate_page(pfn, NodeId(1)).unwrap();
        let back = m.migrate_page(moved, NodeId(0)).unwrap();
        std::hint::black_box(back);
        i += 1;
    });
}

fn bench_swap() {
    let (mut m, _) = populated(1024);
    let mut i = 0usize;
    bench("substrate/swap_out_in_round_trip", || {
        let v = Vpn((i % 1024) as u64);
        let pfn = m.space(Pid(1)).translate(v).unwrap().pfn().unwrap();
        m.swap_out(pfn).unwrap();
        let back = m.swap_in(Pid(1), v, NodeId(0), PageType::Anon).unwrap();
        std::hint::black_box(back);
        i += 1;
    });
}

fn bench_tail_window() {
    let (m, _) = populated(8192);
    bench("substrate/lru_tail_window_64", || {
        let w = m
            .node(NodeId(0))
            .lru
            .tail_window(m.frames(), LruKind::AnonActive, 64);
        std::hint::black_box(w.len());
    });
    let mut scratch: Vec<Pfn> = Vec::new();
    bench("substrate/lru_tail_window_64_scratch_reuse", || {
        m.node(NodeId(0))
            .lru
            .tail_window_into(m.frames(), LruKind::AnonActive, 64, &mut scratch);
        std::hint::black_box(scratch.len());
    });
}

/// Pages mapped into the translation benches' address space: large
/// enough that the table outgrows every CPU cache level.
const XLATE_PAGES: u64 = 1_000_000;

/// A tiny deterministic LCG (numerical-recipes constants) so the access
/// sequence is pseudo-random without any external dependency.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn xlate_space() -> AddressSpace {
    let mut space = AddressSpace::new(Pid(1));
    for i in 0..XLATE_PAGES {
        space.map(Vpn(i), Pfn(i as u32));
    }
    space
}

fn bench_translate() {
    let space = xlate_space();
    // Last-translation cache hit: the same VPN back to back.
    bench("substrate/translate_1m_cached_same_vpn", || {
        std::hint::black_box(space.translate(Vpn(123_456)));
    });
    // Table hit: pseudo-random mapped VPNs (defeats the one-entry cache).
    let mut state = 1u64;
    bench("substrate/translate_1m_hit_random", || {
        let vpn = Vpn(lcg(&mut state) % XLATE_PAGES);
        std::hint::black_box(space.translate(vpn));
    });
    // Miss: VPNs that were never mapped.
    let mut state = 2u64;
    bench("substrate/translate_1m_miss_random", || {
        let vpn = Vpn(XLATE_PAGES + lcg(&mut state) % XLATE_PAGES);
        std::hint::black_box(space.translate(vpn));
    });
    // Swapped: a resident/swapped mix, hitting the swapped half.
    let mut swapped = xlate_space();
    for i in 0..XLATE_PAGES / 2 {
        swapped.set_swapped(Vpn(i * 2), tiered_mem::SwapSlot(i));
    }
    let mut state = 3u64;
    bench("substrate/translate_1m_swapped_random", || {
        let vpn = Vpn((lcg(&mut state) % (XLATE_PAGES / 2)) * 2);
        std::hint::black_box(swapped.translate(vpn));
    });
}

/// The `std::collections::HashMap` the open-addressed table replaced,
/// under the same 1M-page random-lookup load — the baseline for the
/// page-table speedup claim.
fn bench_hashmap_baseline() {
    let mut map: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for i in 0..XLATE_PAGES {
        map.insert(i, i);
    }
    let mut state = 1u64;
    bench("substrate/hashmap_1m_hit_random_baseline", || {
        let vpn = lcg(&mut state) % XLATE_PAGES;
        std::hint::black_box(map.get(&vpn));
    });
    let mut state = 2u64;
    bench("substrate/hashmap_1m_miss_random_baseline", || {
        let vpn = XLATE_PAGES + lcg(&mut state) % XLATE_PAGES;
        std::hint::black_box(map.get(&vpn));
    });
}

fn bench_validate() {
    let (m, _) = populated(8192);
    bench_with_setup("substrate/full_validate_8k_pages", || (), |_| m.validate());
}

fn main() {
    bench_alloc_free();
    bench_lru_rotate();
    bench_migration();
    bench_swap();
    bench_tail_window();
    bench_translate();
    bench_hashmap_baseline();
    bench_validate();
}
