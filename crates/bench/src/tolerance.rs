//! Regression gate for `repro`: compares the CSV tables a run just wrote
//! against checked-in expected snapshots, within a numeric tolerance.
//!
//! The simulator is deterministic given a seed, so at the standard scale
//! every figure is reproducible bit-for-bit; the tolerance only absorbs
//! float-formatting differences across platforms. `repro` exits non-zero
//! when any pinned figure deviates.

use std::path::{Path, PathBuf};

/// Relative tolerance for numeric cells (absolute for values near zero).
pub const REL_TOLERANCE: f64 = 0.02;

/// The checked-in snapshot directory (`crates/bench/expected`).
pub fn expected_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/expected"))
}

/// Strips units/formatting from a cell and parses it as a number:
/// `"93.4%"` → `93.4`, `"1.07x"` → `1.07`, `"12,345"` → `12345.0`.
fn numeric(cell: &str) -> Option<f64> {
    let cleaned: String = cell
        .trim()
        .trim_end_matches(['%', 'x', 's'])
        .chars()
        .filter(|c| *c != ',')
        .collect();
    cleaned.parse::<f64>().ok()
}

fn cells_match(expected: &str, actual: &str) -> bool {
    if expected.trim() == actual.trim() {
        return true;
    }
    match (numeric(expected), numeric(actual)) {
        (Some(e), Some(a)) => {
            let scale = e.abs().max(1.0);
            (e - a).abs() <= REL_TOLERANCE * scale
        }
        _ => false,
    }
}

/// Splits one CSV line into cells (supports the quoting `write_csv`
/// emits: `"..."` with doubled inner quotes).
fn split_csv(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                cell.push('"');
                chars.next();
            }
            '"' => quoted = !quoted,
            ',' if !quoted => cells.push(std::mem::take(&mut cell)),
            c => cell.push(c),
        }
    }
    cells.push(cell);
    cells
}

/// Compares one produced CSV against its expected snapshot. Returns every
/// deviation as a human-readable line.
pub fn compare_csv(name: &str, expected: &str, actual: &str) -> Vec<String> {
    let mut deviations = Vec::new();
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    if exp_lines.len() != act_lines.len() {
        deviations.push(format!(
            "{name}: {} rows, expected {}",
            act_lines.len(),
            exp_lines.len()
        ));
        return deviations;
    }
    for (row, (e_line, a_line)) in exp_lines.iter().zip(&act_lines).enumerate() {
        let e_cells = split_csv(e_line);
        let a_cells = split_csv(a_line);
        if e_cells.len() != a_cells.len() {
            deviations.push(format!("{name} row {row}: column count differs"));
            continue;
        }
        for (col, (e, a)) in e_cells.iter().zip(&a_cells).enumerate() {
            if !cells_match(e, a) {
                deviations.push(format!(
                    "{name} row {row} col {col}: got {a:?}, expected {e:?} (tolerance {:.0}%)",
                    REL_TOLERANCE * 100.0
                ));
            }
        }
    }
    deviations
}

/// Checks every snapshot in `expected` that this run reproduced into
/// `results`. Snapshots whose table was not produced (target not run) are
/// skipped. Returns `(files_checked, deviations)`.
pub fn check_results(results: &Path, expected: &Path) -> (usize, Vec<String>) {
    let mut checked = 0;
    let mut deviations = Vec::new();
    let Ok(entries) = std::fs::read_dir(expected) else {
        return (0, deviations);
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".csv"))
        .collect();
    names.sort();
    for name in names {
        let produced = results.join(&name);
        if !produced.exists() {
            continue;
        }
        let exp = match std::fs::read_to_string(expected.join(&name)) {
            Ok(s) => s,
            Err(e) => {
                deviations.push(format!("{name}: cannot read snapshot: {e}"));
                continue;
            }
        };
        let act = match std::fs::read_to_string(&produced) {
            Ok(s) => s,
            Err(e) => {
                deviations.push(format!("{name}: cannot read result: {e}"));
                continue;
            }
        };
        checked += 1;
        deviations.extend(compare_csv(&name, &exp, &act));
    }
    (checked, deviations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_csvs_pass() {
        let csv = "a,b\n1,93.4%\n";
        assert!(compare_csv("t.csv", csv, csv).is_empty());
    }

    #[test]
    fn small_numeric_drift_is_within_tolerance() {
        let exp = "a,b\nx,93.4%\n";
        let act = "a,b\nx,92.1%\n";
        assert!(compare_csv("t.csv", exp, act).is_empty());
        let far = "a,b\nx,80.0%\n";
        assert_eq!(compare_csv("t.csv", exp, far).len(), 1);
    }

    #[test]
    fn text_cells_must_match_exactly() {
        let exp = "a,b\ncache1,1\n";
        let act = "a,b\ncache2,1\n";
        assert_eq!(compare_csv("t.csv", exp, act).len(), 1);
    }

    #[test]
    fn row_count_mismatch_is_one_deviation() {
        let exp = "a\n1\n2\n";
        let act = "a\n1\n";
        assert_eq!(compare_csv("t.csv", exp, act).len(), 1);
    }

    #[test]
    fn quoted_cells_split_correctly() {
        assert_eq!(split_csv("1,\"x,y\",\"a\"\"b\""), vec!["1", "x,y", "a\"b"]);
    }

    #[test]
    fn relative_factors_parse() {
        assert_eq!(numeric("1.07x"), Some(1.07));
        assert_eq!(numeric("93.4%"), Some(93.4));
        assert_eq!(numeric("12,345"), Some(12345.0));
        assert_eq!(numeric("cache1"), None);
    }

    #[test]
    fn missing_results_are_skipped() {
        let dir = std::env::temp_dir().join("tpp_tolerance_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let (checked, deviations) = check_results(&dir, &expected_dir());
        assert!(deviations.is_empty());
        let _ = checked; // nothing produced → nothing checked
        std::fs::remove_dir_all(&dir).ok();
    }
}
