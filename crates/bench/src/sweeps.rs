//! Extension experiments beyond the paper's figures: parameter sweeps
//! over the design choices DESIGN.md calls out, plus the in-memory-swap
//! comparison the related-work section (§7) argues qualitatively.
//!
//! * [`sweep_demote_scale`] — sensitivity to `demote_scale_factor`
//!   (how much free headroom the demotion daemon maintains),
//! * [`sweep_cxl_latency`] — sensitivity to the CXL device latency
//!   (ASIC target vs. FPGA prototype vs. worse),
//! * [`sweep_ratio`] — the local:CXL capacity curve between the paper's
//!   2:1 and 1:4 end points,
//! * [`sweep_thp`] — transparent huge pages (`never`/`madvise`/`always`)
//!   under default Linux vs. TPP,
//! * [`zswap_comparison`] — TPP vs. in-memory swapping (zswap/zram).
//!
//! Like the evaluation figures, sweeps enumerate their whole grid as
//! [`CellSpec`]s (the shared all-local baseline is always spec 0) and run
//! the batch on `scale.jobs` executor workers; rows are derived from the
//! results in spec order, so the tables are identical at any job count.

use tiered_mem::{Memory, NodeKind};
use tiered_workloads::WorkloadProfile;
use tpp::configs;
use tpp::experiment::{CellSpec, ExperimentResult, PolicyChoice};

use crate::executor::{parallel_map, run_cells};
use crate::scale::{pct, print_table, Scale};

fn baseline_spec(profile: &WorkloadProfile, scale: &Scale) -> CellSpec {
    let ws = profile.working_set_pages();
    CellSpec::new(
        profile.clone(),
        move || configs::all_local(ws),
        PolicyChoice::Linux,
        scale.duration_ns,
        scale.seed,
    )
}

/// Runs `specs` on the executor and unwraps every cell (sweep grids only
/// contain supported machine/policy pairs).
fn run_all(specs: &[CellSpec], scale: &Scale) -> Vec<ExperimentResult> {
    run_cells(scale.jobs, specs)
        .into_iter()
        .map(|r| r.expect("sweep cells use supported machine/policy pairs"))
        .collect()
}

/// The Cache1 1:4 machine the sweeps perturb: one knob at a time off
/// this base shape.
fn one_to_four_shape(ws: u64) -> (u64, u64) {
    let total = ws * 105 / 100;
    let local = total / 5;
    (local, total - local)
}

/// Sweep `demote_scale_factor` (basis points) on Cache1 1:4 under TPP.
///
/// The paper fixes 2% (200 bp); this shows why: too little headroom and
/// promotions starve, too much and the local node wastes capacity.
pub fn sweep_demote_scale(scale: &Scale) -> Vec<Vec<String>> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    let points = [25u32, 100, 200, 400, 800];
    let mut specs = vec![baseline_spec(&profile, scale)];
    for bp in points {
        let (local, cxl) = one_to_four_shape(ws);
        specs.push(CellSpec::new(
            profile.clone(),
            move || {
                let mut builder = Memory::builder();
                builder
                    .node(NodeKind::LocalDram, local.max(64))
                    .node(NodeKind::Cxl, cxl.max(64))
                    .swap_pages(ws * 4)
                    .demote_scale_bp(bp);
                builder.build()
            },
            PolicyChoice::Tpp,
            scale.duration_ns,
            scale.seed,
        ));
    }
    let results = run_all(&specs, scale);
    let base = &results[0];
    let mut rows = Vec::new();
    for (bp, r) in points.iter().zip(&results[1..]) {
        rows.push(vec![
            format!("{:.2}%", *bp as f64 / 100.0),
            pct(r.local_traffic),
            format!("{}", r.promoted()),
            format!("{}", r.demoted()),
            pct(r.vmstat.promote_success_rate()),
            pct(r.relative_throughput(base)),
        ]);
    }
    print_table(
        "Sweep — demote_scale_factor (Cache1, 1:4, TPP)",
        &[
            "demote_scale_factor",
            "local traffic",
            "promoted",
            "demoted",
            "promo success",
            "throughput vs all-local",
        ],
        &rows,
    );
    rows
}

/// Sweep the CXL device latency on Cache1 1:4: the ASIC target (~185 ns),
/// the paper's FPGA prototype (+250 ns), and worse.
pub fn sweep_cxl_latency(scale: &Scale) -> Vec<Vec<String>> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    let points = [
        ("ASIC target (185 ns)", 185u64),
        ("FPGA prototype (350 ns)", 350),
        ("slow device (500 ns)", 500),
    ];
    let mut specs = vec![baseline_spec(&profile, scale)];
    let mut labels = Vec::new();
    for (label, latency) in points {
        for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
            let (local, cxl) = one_to_four_shape(ws);
            specs.push(CellSpec::new(
                profile.clone(),
                move || {
                    let mut builder = Memory::builder();
                    builder
                        .node(NodeKind::LocalDram, local.max(64))
                        .node_with_latency(NodeKind::Cxl, cxl.max(64), latency)
                        .swap_pages(ws * 4);
                    builder.build()
                },
                choice,
                scale.duration_ns,
                scale.seed,
            ));
            labels.push(label);
        }
    }
    let results = run_all(&specs, scale);
    let base = &results[0];
    let mut rows = Vec::new();
    for (label, r) in labels.iter().zip(&results[1..]) {
        rows.push(vec![
            label.to_string(),
            r.policy.clone(),
            pct(r.local_traffic),
            pct(r.relative_throughput(base)),
        ]);
    }
    print_table(
        "Sweep — CXL latency sensitivity (Cache1, 1:4)",
        &[
            "CXL device",
            "policy",
            "local traffic",
            "throughput vs all-local",
        ],
        &rows,
    );
    rows
}

/// Sweep the local:CXL capacity ratio from 2:1 down to 1:5.
pub fn sweep_ratio(scale: &Scale) -> Vec<Vec<String>> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    let points = [
        ("2:1", 2u64, 1u64),
        ("1:1", 1, 1),
        ("1:2", 1, 2),
        ("1:4", 1, 4),
        ("1:5", 1, 5),
    ];
    let mut specs = vec![baseline_spec(&profile, scale)];
    let mut labels = Vec::new();
    for (label, local_parts, cxl_parts) in points {
        for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
            specs.push(CellSpec::new(
                profile.clone(),
                move || configs::ratio(ws, local_parts, cxl_parts),
                choice,
                scale.duration_ns,
                scale.seed,
            ));
            labels.push(label);
        }
    }
    let results = run_all(&specs, scale);
    let base = &results[0];
    let mut rows = Vec::new();
    for (label, r) in labels.iter().zip(&results[1..]) {
        rows.push(vec![
            label.to_string(),
            r.policy.clone(),
            pct(r.local_traffic),
            pct(r.relative_throughput(base)),
        ]);
    }
    print_table(
        "Sweep — local:CXL capacity ratio (Cache1)",
        &[
            "ratio",
            "policy",
            "local traffic",
            "throughput vs all-local",
        ],
        &rows,
    );
    rows
}

/// Topology grid: Cache1 and Web across the multi-socket/multi-CXL
/// presets (`2s2c`, `pooled`, `3tier`), default Linux vs. TPP.
///
/// The "nearest demote" column is the share of demotions that landed on
/// the demoting socket's *nearest* lower-tier node (its distance-derived
/// first choice) — the distance-aware placement the topology engine is
/// for. `-` means the policy never demoted.
pub fn sweep_topology(scale: &Scale) -> Vec<Vec<String>> {
    use tiered_mem::NodeId;
    let profiles = [
        tiered_workloads::cache1(scale.ws_pages),
        tiered_workloads::web(scale.ws_pages),
    ];
    let presets = configs::topology_preset_names();
    // Specs 0..profiles.len() are the per-workload all-local baselines;
    // the grid cells follow in (preset, workload, policy) order.
    let mut specs: Vec<CellSpec> = profiles.iter().map(|p| baseline_spec(p, scale)).collect();
    let mut cells = Vec::new();
    for &preset in presets {
        for (pi, profile) in profiles.iter().enumerate() {
            let ws = profile.working_set_pages();
            for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
                specs.push(CellSpec::new(
                    profile.clone(),
                    move || configs::topology_preset(preset, ws),
                    choice,
                    scale.duration_ns,
                    scale.seed,
                ));
                cells.push((preset, pi));
            }
        }
    }
    let results = run_all(&specs, scale);
    let mut rows = Vec::new();
    for ((preset, pi), r) in cells.iter().zip(&results[profiles.len()..]) {
        let base = &results[*pi];
        // Re-derive each socket's nearest target from the preset machine
        // (results carry only the migration matrix).
        let machine = configs::topology_preset(preset, profiles[*pi].working_set_pages());
        let (mut near, mut out) = (0u64, 0u64);
        for &socket in machine.local_nodes().iter() {
            let nearest = machine
                .node(socket)
                .demotion_target()
                .expect("presets give every socket a lower tier");
            for to in 0..r.node_count {
                if to != socket.index() {
                    out += r.migrations_between(socket, NodeId(to as u8));
                }
            }
            near += r.migrations_between(socket, nearest);
        }
        let near_share = if out == 0 {
            "-".to_string()
        } else {
            pct(near as f64 / out as f64)
        };
        rows.push(vec![
            preset.to_string(),
            r.workload.clone(),
            r.policy.clone(),
            pct(r.local_traffic),
            format!("{}", r.demoted()),
            near_share,
            pct(r.relative_throughput(base)),
        ]);
    }
    print_table(
        "Sweep — topology presets (Cache1/Web, Linux vs TPP)",
        &[
            "preset",
            "workload",
            "policy",
            "local traffic",
            "demoted",
            "nearest demote",
            "throughput vs all-local",
        ],
        &rows,
    );
    rows
}

/// Transparent-huge-page grid: Cache1 (the paper's demotion-heavy 1:4
/// configuration) and the THP-friendly profile, default Linux vs. TPP,
/// across the three `ThpMode`s.
///
/// `never` must reproduce the base-page numbers exactly (the huge-page
/// subsystem is compiled out of the run, not merely idle). `madvise`
/// enables khugepaged collapse only; `always` adds fault-time THP
/// allocation and kcompactd. The counters show where huge pages come
/// from (fault vs. collapse) and what tiering does to them: TPP demotes
/// compound units whole when the CXL node has an aligned free block and
/// splits them otherwise, so demotion-heavy cells report nonzero
/// `thp_split`.
pub fn sweep_thp(scale: &Scale) -> Vec<Vec<String>> {
    use tiered_mem::{ThpMode, VmEvent};
    let profiles = [
        tiered_workloads::cache1(scale.ws_pages),
        tiered_workloads::thp_friendly(scale.ws_pages),
    ];
    let modes = [ThpMode::Never, ThpMode::Madvise, ThpMode::Always];
    // Specs 0..profiles.len() are the per-workload all-local baselines;
    // grid cells follow in (workload, policy, mode) order.
    let mut specs: Vec<CellSpec> = profiles.iter().map(|p| baseline_spec(p, scale)).collect();
    let mut cells = Vec::new();
    for (pi, profile) in profiles.iter().enumerate() {
        let ws = profile.working_set_pages();
        for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
            for mode in modes {
                let (local, cxl) = one_to_four_shape(ws);
                specs.push(CellSpec::new(
                    profile.clone(),
                    move || {
                        let mut builder = Memory::builder();
                        builder
                            .node(NodeKind::LocalDram, local.max(64))
                            .node(NodeKind::Cxl, cxl.max(64))
                            .swap_pages(ws * 4)
                            .thp_mode(mode);
                        builder.build()
                    },
                    choice.clone(),
                    scale.duration_ns,
                    scale.seed,
                ));
                cells.push((pi, mode));
            }
        }
    }
    let results = run_all(&specs, scale);
    let mut rows = Vec::new();
    for ((pi, mode), r) in cells.iter().zip(&results[profiles.len()..]) {
        let base = &results[*pi];
        rows.push(vec![
            r.workload.clone(),
            r.policy.clone(),
            mode.to_string(),
            format!("{}", r.vmstat.get(VmEvent::ThpFaultAlloc)),
            format!("{}", r.vmstat.get(VmEvent::ThpCollapseAlloc)),
            format!("{}", r.vmstat.get(VmEvent::ThpSplit)),
            format!(
                "{}/{}",
                r.vmstat.get(VmEvent::CompactSuccess),
                r.vmstat.get(VmEvent::CompactFail)
            ),
            pct(r.relative_throughput(base)),
        ]);
    }
    print_table(
        "Sweep — transparent huge pages (Cache1/THP-friendly, 1:4, Linux vs TPP)",
        &[
            "workload",
            "policy",
            "thp",
            "thp_fault_alloc",
            "collapsed",
            "split",
            "compact ok/fail",
            "throughput vs all-local",
        ],
        &rows,
    );
    rows
}

/// TPP vs. in-memory swapping (zswap/zram-style): the §7 argument.
///
/// Both configurations expose the same DRAM and CXL capacity, used two
/// different ways:
///
/// * **CXL as a swap pool** ([`PolicyChoice::InMemorySwap`]): the machine
///   has only the local DRAM as memory; the CXL capacity backs a fast
///   in-memory swap device. Every access to cold data takes a page fault
///   and a pool round trip.
/// * **CXL as memory** ([`PolicyChoice::Tpp`]): the CXL capacity is a
///   CPU-less NUMA node; cold pages are directly addressable there.
pub fn zswap_comparison(scale: &Scale) -> Vec<Vec<String>> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    let (local, cxl) = one_to_four_shape(ws);
    let mut specs = vec![baseline_spec(&profile, scale)];
    // CXL as an in-memory swap pool.
    specs.push(CellSpec::new(
        profile.clone(),
        move || {
            let mut builder = Memory::builder();
            builder
                .node(NodeKind::LocalDram, local.max(64))
                .swap_pages(cxl + ws);
            builder.build()
        },
        PolicyChoice::InMemorySwap,
        scale.duration_ns,
        scale.seed,
    ));
    // CXL as addressable memory under TPP (and default Linux for scale).
    for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
        specs.push(CellSpec::new(
            profile.clone(),
            move || configs::one_to_four(ws),
            choice,
            scale.duration_ns,
            scale.seed,
        ));
    }
    let results = run_all(&specs, scale);
    let base = &results[0];
    let mut rows = Vec::new();
    for (i, r) in results[1..].iter().enumerate() {
        let label = if i == 0 {
            "CXL as swap pool (inmem_swap)".to_string()
        } else {
            format!("CXL as memory ({})", r.policy)
        };
        rows.push(vec![
            label,
            pct(r.local_traffic),
            format!("{}", r.swap_outs()),
            format!("{}", r.vmstat.get(tiered_mem::VmEvent::PswpIn)),
            format!("{}", r.demoted()),
            pct(r.relative_throughput(base)),
        ]);
    }
    print_table(
        "Extra — CXL as swap pool vs CXL as memory (Cache1, same capacities)",
        &[
            "configuration",
            "local traffic",
            "pool outs",
            "pool ins (faults)",
            "demoted",
            "throughput vs all-local",
        ],
        &rows,
    );
    rows
}

/// Co-location experiment: a latency-sensitive cache and a batch Data
/// Warehouse job share one 2:1 machine. TPP arbitrates the shared local
/// node transparently; default Linux lets whoever allocated first keep
/// it.
///
/// `MultiSystem` lanes share one machine, so this experiment cannot be
/// expressed as independent [`CellSpec`] cells; the two policy variants
/// are still fanned out with [`parallel_map`] (each worker builds and
/// runs its own `MultiSystem` locally).
pub fn colocation(scale: &Scale) -> Vec<Vec<String>> {
    use tpp::MultiSystem;
    let choices = [PolicyChoice::Linux, PolicyChoice::Tpp];
    let per_choice: Vec<Vec<Vec<String>>> = parallel_map(scale.jobs, choices.len(), |ci| {
        let choice = &choices[ci];
        let cache = tiered_workloads::cache1(scale.ws_pages / 2);
        let warehouse = tiered_workloads::data_warehouse(scale.ws_pages / 2);
        let total_ws = cache.working_set_pages() + warehouse.working_set_pages();
        let mut system = MultiSystem::new(
            configs::two_to_one(total_ws),
            choice.build(),
            vec![Box::new(cache.build()), Box::new(warehouse.build())],
            scale.seed,
        )
        .expect("2:1 supported");
        system.run(scale.duration_ns);
        let half = scale.duration_ns / 2;
        (0..system.lane_count())
            .map(|i| {
                let m = system.lane_metrics(i);
                vec![
                    choice.label().to_string(),
                    system.lane_name(i).to_string(),
                    format!("{:.0}", m.steady_throughput(half, u64::MAX)),
                    pct(m.local_traffic_fraction()),
                    format!("{}", m.p99_op_latency_ns() / 1000),
                ]
            })
            .collect()
    });
    let rows: Vec<Vec<String>> = per_choice.into_iter().flatten().collect();
    print_table(
        "Extra — co-located cache1 + data_warehouse on one 2:1 machine",
        &[
            "policy",
            "workload",
            "ops/s",
            "local traffic",
            "p99 op latency (µs)",
        ],
        &rows,
    );
    rows
}

/// Verifies the §5.1/§6.2.1 reclaim-rate claim with a mechanism probe:
/// fill the local node with cold swap-backed (tmpfs) pages, run each
/// policy's background daemon for one simulated second of wakeups, and
/// measure how many pages it can move out. The ~44× gap between paging
/// (130 µs/page) and migration (3 µs/page) emerges from the device
/// model.
pub fn reclaim_rate_comparison(_scale: &Scale) -> Vec<Vec<String>> {
    use tiered_mem::{NodeId, PageType, Pid, Vpn};
    use tiered_sim::{LatencyModel, SimRng, MS};
    use tpp::policy::PolicyCtx;

    let build = || {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 40_000)
            .node(NodeKind::Cxl, 80_000)
            .swap_pages(200_000)
            .build();
        m.create_process(Pid(1));
        // Fill local with cold tmpfs pages (must swap under the default
        // kernel; migratable under TPP).
        for i in 0..39_980u64 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Tmpfs)
                .unwrap();
        }
        m
    };
    let lat = LatencyModel::datacenter();
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
        let mut m = build();
        let mut policy = choice.build();
        let mut rng = SimRng::seed(1);
        // One simulated second of daemon wakeups (20 ticks at 50 ms),
        // with sustained allocation pressure: every page the daemon
        // frees is instantly consumed by a new cold allocation, so the
        // eviction *mechanism* runs at full capability the whole time
        // (the paper's surge scenario).
        let mut next_vpn = 1_000_000u64;
        let mut evicted_total = 0u64;
        for t in 0..20u64 {
            let before = m.frames().used_pages(NodeId(0));
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: t * 50 * MS,
                rng: &mut rng,
            };
            policy.tick(&mut ctx);
            evicted_total += before.saturating_sub(m.frames().used_pages(NodeId(0)));
            while m.free_pages(NodeId(0)) > 20 {
                m.alloc_and_map(NodeId(0), Pid(1), Vpn(next_vpn), PageType::Tmpfs)
                    .expect("refill allocation");
                next_vpn += 1;
            }
        }
        rates.push(evicted_total as f64);
        rows.push(vec![
            choice.label().to_string(),
            format!("{evicted_total}"),
            format!("{}", m.swap().used_slots()),
            format!("{}", m.vmstat().demoted_total()),
        ]);
    }
    let ratio = if rates[0] > 0.0 {
        rates[1] / rates[0]
    } else {
        f64::INFINITY
    };
    rows.push(vec![
        "tpp / linux".to_string(),
        format!("{ratio:.0}x"),
        String::new(),
        String::new(),
    ]);
    print_table(
        "Extra — reclaim mechanism rate probe (cold tmpfs, 1 s of daemon wakeups; paper: ~44x)",
        &["policy", "pages evicted/s", "in swap", "demoted"],
        &rows,
    );
    rows
}
