//! `repro` — regenerates every table and figure of the TPP paper.
//!
//! ```text
//! cargo run --release -p tpp-bench --bin repro -- all
//! cargo run --release -p tpp-bench --bin repro -- fig15 [--quick]
//! cargo run --release -p tpp-bench --bin repro -- --trace /tmp/t.jsonl
//! ```
//!
//! Tables are exported as CSV into `results/` (override with
//! `--csv <dir>`). At standard scale, produced tables are compared against the
//! checked-in snapshots in `crates/bench/expected/`; the run exits
//! non-zero if any figure deviates beyond tolerance.
//!
//! `--trace <path>` appends a dedicated instrumented run (cache1 on the
//! 1:4 machine under TPP) that streams every kernel-style event to
//! `<path>` as JSONL, prints the counter-parity table, the per-policy
//! decision summary and the §5.5 ping-pong report, and exits non-zero if
//! the trace disagrees with the vmstat counters. `--metrics-dir <path>`
//! additionally exports that run's metrics (CSV/JSON). Figure targets
//! always run untraced, so their numbers are unchanged by `--trace`.

use std::path::PathBuf;
use std::time::Instant;

use tpp_bench::charfig;
use tpp_bench::evalfig;
use tpp_bench::sweeps;
use tpp_bench::Scale;

/// Every runnable experiment target, in `all` execution order, with a
/// one-line description (`repro --list`).
const TARGETS: &[(&str, &str)] = &[
    (
        "fig2",
        "memory-tier latency hierarchy of the simulated machine",
    ),
    (
        "fig7",
        "total tracked memory vs. memory accessed in 1-/2-interval windows",
    ),
    ("fig8", "per-page-type hotness within a 2-interval window"),
    ("fig9", "anon/file shares of resident memory over time"),
    ("fig10", "throughput vs. page-type utilisation per interval"),
    ("fig11", "re-access-interval CDF per workload"),
    (
        "fig15",
        "production 2:1 machine, Linux vs TPP, all four workloads",
    ),
    ("fig16", "memory expansion 1:4, Cache workloads"),
    (
        "fig17",
        "ablation: allocation/reclamation watermark decoupling",
    ),
    ("fig18", "ablation: active-LRU promotion filter"),
    ("table1", "page-type-aware allocation (caches to CXL)"),
    ("fig19", "TPP vs NUMA balancing vs AutoTiering"),
    ("reclaim_rate", "reclaim mechanism rate probe (paper: ~44x)"),
    ("zswap", "CXL as swap pool vs CXL as memory"),
    (
        "colocation",
        "co-located cache1 + data_warehouse on one machine",
    ),
    (
        "sweep_dsf",
        "sweep demote_scale_factor on Cache1 1:4 under TPP",
    ),
    ("sweep_latency", "sweep CXL device latency on Cache1 1:4"),
    ("sweep_ratio", "sweep the local:CXL capacity ratio"),
    (
        "topology",
        "multi-socket/multi-CXL presets (2s2c, pooled, 3tier), Cache1/Web",
    ),
    (
        "thp",
        "transparent huge pages (never/madvise/always), Linux vs TPP",
    ),
];

struct Args {
    quick: bool,
    jobs: usize,
    csv_dir: PathBuf,
    trace: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
    timings_json: Option<PathBuf>,
    targets: Vec<String>,
}

/// Worker threads to use when `--jobs` is not given: every core.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_args() -> Args {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        quick: false,
        jobs: default_jobs(),
        csv_dir: PathBuf::from("results"),
        trace: None,
        metrics_dir: None,
        timings_json: None,
        targets: Vec::new(),
    };
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| match it.next() {
            Some(v) => v,
            None => {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--list" => {
                let width = TARGETS.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
                for (name, desc) in TARGETS {
                    println!("{name:width$}  {desc}");
                }
                std::process::exit(0);
            }
            "--quick" => args.quick = true,
            "--jobs" => {
                let v = value_of("--jobs");
                args.jobs = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => args.csv_dir = PathBuf::from(value_of("--csv")),
            "--trace" => args.trace = Some(PathBuf::from(value_of("--trace"))),
            "--metrics-dir" => args.metrics_dir = Some(PathBuf::from(value_of("--metrics-dir"))),
            "--timings-json" => {
                args.timings_json = Some(PathBuf::from(value_of("--timings-json")));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "flags: --list --quick --jobs <n> --csv <dir> --trace <path> \
                     --metrics-dir <dir> --timings-json <path>"
                );
                std::process::exit(2);
            }
            target => args.targets.push(target.to_string()),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut scale = if args.quick {
        Scale::quick()
    } else {
        Scale::standard()
    };
    scale.jobs = args.jobs;
    tpp_bench::scale::set_csv_dir(&args.csv_dir);

    // A bare `--trace`/`--metrics-dir` invocation asks only for the
    // instrumented capture run; figure targets still default to `all`
    // when named explicitly or when no telemetry flag is present.
    let capture_only =
        args.targets.is_empty() && (args.trace.is_some() || args.metrics_dir.is_some());
    let targets: Vec<&str> = if capture_only {
        Vec::new()
    } else if args.targets.is_empty() || args.targets.iter().any(|t| t == "all") {
        TARGETS.iter().map(|(name, _)| *name).collect()
    } else {
        args.targets.iter().map(|s| s.as_str()).collect()
    };

    let run_start = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();

    let needs_characterization = targets
        .iter()
        .any(|t| matches!(*t, "fig7" | "fig8" | "fig9" | "fig10" | "fig11"));
    let chars = if needs_characterization {
        eprintln!("characterizing workloads (Chameleon)...");
        let t = Instant::now();
        let chars = charfig::characterize_all(&scale);
        timings.push(("characterize".to_string(), t.elapsed().as_secs_f64()));
        chars
    } else {
        Vec::new()
    };

    for target in &targets {
        eprintln!("running {target}...");
        let t = Instant::now();
        match *target {
            "fig2" => {
                charfig::fig2();
            }
            "fig7" => {
                charfig::fig7(&chars);
            }
            "fig8" => {
                charfig::fig8(&chars);
            }
            "fig9" => {
                charfig::fig9(&chars);
            }
            "fig10" => {
                charfig::fig10(&chars);
            }
            "fig11" => {
                charfig::fig11(&chars);
            }
            "fig15" => {
                evalfig::fig15(&scale);
            }
            "fig16" => {
                evalfig::fig16(&scale);
            }
            "fig17" => {
                evalfig::fig17(&scale);
            }
            "fig18" => {
                evalfig::fig18(&scale);
            }
            "table1" => {
                evalfig::table1(&scale);
            }
            "fig19" => {
                evalfig::fig19(&scale);
            }
            "reclaim_rate" => {
                sweeps::reclaim_rate_comparison(&scale);
            }
            "zswap" => {
                sweeps::zswap_comparison(&scale);
            }
            "colocation" => {
                sweeps::colocation(&scale);
            }
            "sweep_dsf" => {
                sweeps::sweep_demote_scale(&scale);
            }
            "sweep_latency" => {
                sweeps::sweep_cxl_latency(&scale);
            }
            "sweep_ratio" => {
                sweeps::sweep_ratio(&scale);
            }
            "topology" => {
                sweeps::sweep_topology(&scale);
            }
            "thp" => {
                sweeps::sweep_thp(&scale);
            }
            other => {
                eprintln!("unknown target: {other}");
                let known: Vec<&str> = TARGETS.iter().map(|(name, _)| *name).collect();
                eprintln!("known: {} all (see --list)", known.join(" "));
                std::process::exit(2);
            }
        }
        timings.push((target.to_string(), t.elapsed().as_secs_f64()));
    }

    let mut failed = false;

    if let Some(path) = &args.timings_json {
        let total_wall_s = run_start.elapsed().as_secs_f64();
        let ops = tpp_bench::executor::ops_total();
        let per_target: Vec<String> = timings
            .iter()
            .map(|(name, secs)| format!("    {{\"target\": \"{name}\", \"wall_s\": {secs:.3}}}"))
            .collect();
        let json = format!(
            "{{\n  \"jobs\": {},\n  \"scale\": \"{}\",\n  \"total_wall_s\": {:.3},\n  \
             \"simulated_accesses\": {},\n  \"aggregate_ops_per_s\": {:.0},\n  \"targets\": [\n{}\n  ]\n}}\n",
            scale.jobs,
            if args.quick { "quick" } else { "standard" },
            total_wall_s,
            ops,
            ops as f64 / total_wall_s.max(1e-9),
            per_target.join(",\n"),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write timings to {}: {e}", path.display());
            failed = true;
        } else {
            eprintln!("timings written to {}", path.display());
        }
    }

    // Regression gate: at standard scale the simulator is deterministic,
    // so produced tables must match the checked-in snapshots.
    if !args.quick && !targets.is_empty() {
        let expected = tpp_bench::tolerance::expected_dir();
        let (checked, deviations) = tpp_bench::tolerance::check_results(&args.csv_dir, &expected);
        if deviations.is_empty() {
            eprintln!("tolerance check: {checked} table(s) match the expected snapshots");
        } else {
            eprintln!("tolerance check FAILED ({checked} table(s) checked):");
            for d in &deviations {
                eprintln!("  {d}");
            }
            failed = true;
        }
    }

    if args.trace.is_some() || args.metrics_dir.is_some() {
        eprintln!("running instrumented capture (cache1, 1:4, tpp)...");
        match tpp_bench::capture::capture_run(
            &scale,
            args.trace.as_deref(),
            args.metrics_dir.as_deref(),
        ) {
            Ok(outcome) => {
                if let Some(path) = &args.trace {
                    eprintln!(
                        "trace: {} events written to {}",
                        outcome.jsonl_lines,
                        path.display()
                    );
                }
                if !outcome.parity_mismatches.is_empty() {
                    eprintln!("trace parity FAILED:");
                    for m in &outcome.parity_mismatches {
                        eprintln!("  {m}");
                    }
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("capture run failed: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
