//! `repro` — regenerates every table and figure of the TPP paper.
//!
//! ```text
//! cargo run --release -p tpp-bench --bin repro -- all
//! cargo run --release -p tpp-bench --bin repro -- fig15 [--quick]
//! ```

use tpp_bench::charfig;
use tpp_bench::evalfig;
use tpp_bench::sweeps;
use tpp_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        match args.get(i + 1) {
            Some(dir) => tpp_bench::scale::set_csv_dir(dir),
            None => {
                eprintln!("--csv requires a directory argument");
                std::process::exit(2);
            }
        }
    }
    let scale = if quick { Scale::quick() } else { Scale::standard() };
    let mut skip_next = false;
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let targets = if targets.is_empty() || targets.contains(&"all") {
        vec![
            "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig15", "fig16", "fig17",
            "fig18", "table1", "fig19", "reclaim_rate", "zswap", "colocation", "sweep_dsf",
            "sweep_latency", "sweep_ratio",
        ]
    } else {
        targets
    };

    let needs_characterization = targets
        .iter()
        .any(|t| matches!(*t, "fig7" | "fig8" | "fig9" | "fig10" | "fig11"));
    let chars = if needs_characterization {
        eprintln!("characterizing workloads (Chameleon)...");
        charfig::characterize_all(&scale)
    } else {
        Vec::new()
    };

    for target in targets {
        eprintln!("running {target}...");
        match target {
            "fig2" => {
                charfig::fig2();
            }
            "fig7" => {
                charfig::fig7(&chars);
            }
            "fig8" => {
                charfig::fig8(&chars);
            }
            "fig9" => {
                charfig::fig9(&chars);
            }
            "fig10" => {
                charfig::fig10(&chars);
            }
            "fig11" => {
                charfig::fig11(&chars);
            }
            "fig15" => {
                evalfig::fig15(&scale);
            }
            "fig16" => {
                evalfig::fig16(&scale);
            }
            "fig17" => {
                evalfig::fig17(&scale);
            }
            "fig18" => {
                evalfig::fig18(&scale);
            }
            "table1" => {
                evalfig::table1(&scale);
            }
            "fig19" => {
                evalfig::fig19(&scale);
            }
            "reclaim_rate" => {
                sweeps::reclaim_rate_comparison(&scale);
            }
            "zswap" => {
                sweeps::zswap_comparison(&scale);
            }
            "colocation" => {
                sweeps::colocation(&scale);
            }
            "sweep_dsf" => {
                sweeps::sweep_demote_scale(&scale);
            }
            "sweep_latency" => {
                sweeps::sweep_cxl_latency(&scale);
            }
            "sweep_ratio" => {
                sweeps::sweep_ratio(&scale);
            }
            other => {
                eprintln!("unknown target: {other}");
                eprintln!(
                    "known: fig2 fig7 fig8 fig9 fig10 fig11 fig15 fig16 fig17 fig18 table1 \
                     fig19 reclaim_rate zswap colocation sweep_dsf sweep_latency sweep_ratio all"
                );
                std::process::exit(2);
            }
        }
    }
}
