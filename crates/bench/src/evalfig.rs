//! Evaluation figures (paper §6): Figures 15–19 and Table 1.
//!
//! Every function returns structured results (for integration tests and
//! the micro-benchmarks) and prints the paper-shaped table.
//!
//! Figures no longer run cells inline: they *enumerate* the full grid as
//! [`CellSpec`] descriptors first and hand the batch to
//! [`crate::executor::run_cells`], which fans it over `scale.jobs` worker
//! threads. Results come back in spec order, so tables (and the CSV
//! exports behind them) are byte-identical at any job count.

use tiered_mem::{Memory, VmEvent};
use tiered_sim::SEC;
use tiered_workloads::WorkloadProfile;
use tpp::configs;
use tpp::experiment::{CellSpec, ExperimentResult, PolicyChoice};
use tpp::policy::TppConfig;

use crate::executor::run_cells;
use crate::scale::{pct, print_table, Scale};

/// One workload's comparison: the all-local baseline plus one result per
/// evaluated policy.
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// The all-from-local-memory baseline (default kernel, single node).
    pub baseline: ExperimentResult,
    /// Policy results on the tiered machine.
    pub cells: Vec<ExperimentResult>,
}

/// The spec for the all-local baseline every comparison is relative to.
fn baseline_spec(profile: &WorkloadProfile, scale: &Scale) -> CellSpec {
    let ws = profile.working_set_pages();
    CellSpec::new(
        profile.clone(),
        move || configs::all_local(ws),
        PolicyChoice::Linux,
        scale.duration_ns,
        scale.seed,
    )
}

/// Enumerates one comparison group: the baseline spec followed by one
/// spec per policy on the machine built by `machine`.
fn comparison_specs(
    profile: &WorkloadProfile,
    machine: impl Fn() -> Memory + Send + Sync + Clone + 'static,
    policies: &[PolicyChoice],
    scale: &Scale,
) -> Vec<CellSpec> {
    let mut specs = vec![baseline_spec(profile, scale)];
    for choice in policies {
        specs.push(CellSpec::new(
            profile.clone(),
            machine.clone(),
            choice.clone(),
            scale.duration_ns,
            scale.seed,
        ));
    }
    specs
}

/// Runs comparison groups as one flat batch on `scale.jobs` workers and
/// regroups the results. Each group is `[baseline, cell, cell, ...]` as
/// produced by [`comparison_specs`].
fn run_comparisons(groups: Vec<Vec<CellSpec>>, scale: &Scale) -> Vec<Comparison> {
    let shapes: Vec<(String, usize)> = groups
        .iter()
        .map(|g| (g[0].profile.name.clone(), g.len()))
        .collect();
    let flat: Vec<CellSpec> = groups.into_iter().flatten().collect();
    let mut results = run_cells(scale.jobs, &flat).into_iter();
    shapes
        .into_iter()
        .map(|(workload, n)| {
            let mut cells: Vec<ExperimentResult> = (0..n)
                .map(|_| {
                    results
                        .next()
                        .expect("one result per spec")
                        .expect("policy was pre-validated for this machine")
                })
                .collect();
            let baseline = cells.remove(0);
            Comparison {
                workload,
                baseline,
                cells,
            }
        })
        .collect()
}

fn traffic_perf_rows(comparisons: &[Comparison]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in comparisons {
        for r in &c.cells {
            let demote_rate = r.demoted() as f64 / (r.duration_ns as f64 / SEC as f64);
            let reclaim_rate =
                r.vmstat.get(VmEvent::PgSteal) as f64 / (r.duration_ns as f64 / SEC as f64);
            rows.push(vec![
                c.workload.clone(),
                r.policy.clone(),
                pct(r.local_traffic),
                pct(1.0 - r.local_traffic),
                pct(r.anon_resident_local),
                pct(r.relative_throughput(&c.baseline)),
                format!("{demote_rate:.0}"),
                format!("{reclaim_rate:.0}"),
                format!("{}", r.promoted()),
            ]);
        }
    }
    rows
}

const TRAFFIC_HEADER: [&str; 9] = [
    "workload",
    "policy",
    "local traffic",
    "CXL traffic",
    "anon on local",
    "throughput vs all-local",
    "demote/s",
    "pageout/s",
    "promoted",
];

/// Figure 15: default production environment (2:1), default Linux vs TPP
/// on all four workloads.
pub fn fig15(scale: &Scale) -> Vec<Comparison> {
    let groups: Vec<Vec<CellSpec>> = tiered_workloads::all_production(scale.ws_pages)
        .iter()
        .map(|p| {
            let ws = p.working_set_pages();
            comparison_specs(
                p,
                move || configs::two_to_one(ws),
                &[PolicyChoice::Linux, PolicyChoice::Tpp],
                scale,
            )
        })
        .collect();
    let comparisons = run_comparisons(groups, scale);
    print_table(
        "Figure 15 — 2:1 local:CXL, default Linux vs TPP",
        &TRAFFIC_HEADER,
        &traffic_perf_rows(&comparisons),
    );
    comparisons
}

/// Figure 16: large memory expansion (1:4) for the Cache workloads.
pub fn fig16(scale: &Scale) -> Vec<Comparison> {
    let profiles = [
        tiered_workloads::cache1(scale.ws_pages),
        tiered_workloads::cache2(scale.ws_pages),
    ];
    let groups: Vec<Vec<CellSpec>> = profiles
        .iter()
        .map(|p| {
            let ws = p.working_set_pages();
            comparison_specs(
                p,
                move || configs::one_to_four(ws),
                &[PolicyChoice::Linux, PolicyChoice::Tpp],
                scale,
            )
        })
        .collect();
    let comparisons = run_comparisons(groups, scale);
    print_table(
        "Figure 16 — 1:4 local:CXL (80% of working set on CXL)",
        &TRAFFIC_HEADER,
        &traffic_perf_rows(&comparisons),
    );
    comparisons
}

/// Figure 17: ablation of allocation/reclamation decoupling (Cache1,
/// 1:4).
pub fn fig17(scale: &Scale) -> Vec<Comparison> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    let coupled = TppConfig {
        decouple: false,
        ..TppConfig::default()
    };
    let groups = vec![comparison_specs(
        &profile,
        move || configs::one_to_four(ws),
        &[PolicyChoice::TppCustom(coupled), PolicyChoice::Tpp],
        scale,
    )];
    let comparison = run_comparisons(groups, scale).pop().expect("one group");
    let mut rows = Vec::new();
    for (label, r) in [
        ("coupled", &comparison.cells[0]),
        ("decoupled", &comparison.cells[1]),
    ] {
        let alloc_p95 = r.metrics.alloc_local_rate.percentile(0.95).unwrap_or(0.0);
        let promo_mean = r.metrics.promotion_rate.mean().unwrap_or(0.0);
        let promo_p99 = r.metrics.promotion_rate.percentile(0.99).unwrap_or(0.0);
        rows.push(vec![
            label.to_string(),
            format!("{alloc_p95:.0}"),
            format!("{promo_mean:.0}"),
            format!("{promo_p99:.0}"),
            pct(1.0 - r.local_traffic),
            pct(r.relative_throughput(&comparison.baseline)),
        ]);
    }
    print_table(
        "Figure 17 — decoupling allocation & reclamation (Cache1, 1:4)",
        &[
            "variant",
            "local alloc p95 (pages/s)",
            "promo mean (pages/s)",
            "promo p99 (pages/s)",
            "CXL traffic",
            "throughput vs all-local",
        ],
        &rows,
    );
    vec![comparison]
}

/// Figure 18: ablation of the active-LRU promotion filter (Cache1, 1:4).
pub fn fig18(scale: &Scale) -> Vec<Comparison> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    let instant = TppConfig {
        active_lru_filter: false,
        ..TppConfig::default()
    };
    let groups = vec![comparison_specs(
        &profile,
        move || configs::one_to_four(ws),
        &[PolicyChoice::TppCustom(instant), PolicyChoice::Tpp],
        scale,
    )];
    let comparison = run_comparisons(groups, scale).pop().expect("one group");
    let mut rows = Vec::new();
    for (label, r) in [
        ("instant promotion", &comparison.cells[0]),
        ("active-LRU filter", &comparison.cells[1]),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{}", r.promoted()),
            format!("{}", r.vmstat.get(VmEvent::PgPromoteCandidateDemoted)),
            pct(r.vmstat.promote_success_rate()),
            format!("{}", r.demoted()),
            pct(r.local_traffic),
            pct(r.relative_throughput(&comparison.baseline)),
        ]);
    }
    print_table(
        "Figure 18 — active-LRU-based hot-page detection (Cache1, 1:4)",
        &[
            "variant",
            "promoted",
            "demoted-then-promoted (ping-pong)",
            "promo success rate",
            "demoted",
            "local traffic",
            "throughput vs all-local",
        ],
        &rows,
    );
    vec![comparison]
}

/// Table 1: page-type-aware allocation (caches to CXL).
pub fn table1(scale: &Scale) -> Vec<Comparison> {
    let aware = TppConfig {
        cache_to_cxl: true,
        ..TppConfig::default()
    };
    type Cell = (WorkloadProfile, &'static str, fn(u64) -> Memory);
    let cells: Vec<Cell> = vec![
        (
            tiered_workloads::web(scale.ws_pages),
            "2:1",
            configs::two_to_one,
        ),
        (
            tiered_workloads::cache1(scale.ws_pages),
            "1:4",
            configs::one_to_four,
        ),
        (
            tiered_workloads::cache2(scale.ws_pages),
            "1:4",
            configs::one_to_four,
        ),
    ];
    let config_labels: Vec<&'static str> = cells.iter().map(|(_, l, _)| *l).collect();
    let groups: Vec<Vec<CellSpec>> = cells
        .iter()
        .map(|(profile, _, machine)| {
            let (ws, machine) = (profile.working_set_pages(), *machine);
            comparison_specs(
                profile,
                move || machine(ws),
                &[PolicyChoice::TppCustom(aware)],
                scale,
            )
        })
        .collect();
    let out = run_comparisons(groups, scale);
    let mut rows = Vec::new();
    for (comparison, config_label) in out.iter().zip(config_labels) {
        let r = &comparison.cells[0];
        rows.push(vec![
            comparison.workload.clone(),
            config_label.to_string(),
            pct(r.local_traffic),
            pct(1.0 - r.local_traffic),
            pct(r.relative_throughput(&comparison.baseline)),
        ]);
    }
    print_table(
        "Table 1 — page-type-aware allocation (caches to CXL)",
        &[
            "application",
            "configuration",
            "local traffic",
            "CXL traffic",
            "perf w.r.t baseline",
        ],
        &rows,
    );
    out
}

/// Figure 19: TPP vs NUMA balancing vs AutoTiering (Web on 2:1; Cache1 on
/// 1:4 where AutoTiering cannot run, so it is evaluated on 2:1 as in the
/// paper).
pub fn fig19(scale: &Scale) -> Vec<Comparison> {
    let web = tiered_workloads::web(scale.ws_pages);
    let cache1 = tiered_workloads::cache1(scale.ws_pages);
    let (web_ws, cache_ws) = (web.working_set_pages(), cache1.working_set_pages());

    // One flat batch: the web group, the cache1 group, the paper's
    // AutoTiering-on-1:4 probe (expected to refuse), and AutoTiering's
    // 2:1 fallback row. Spec order fixes result order.
    let mut specs = comparison_specs(
        &web,
        move || configs::two_to_one(web_ws),
        &[
            PolicyChoice::Linux,
            PolicyChoice::NumaBalancing,
            PolicyChoice::AutoTiering,
            PolicyChoice::Tpp,
        ],
        scale,
    );
    let web_len = specs.len();
    specs.extend(comparison_specs(
        &cache1,
        move || configs::one_to_four(cache_ws),
        &[PolicyChoice::NumaBalancing, PolicyChoice::Tpp],
        scale,
    ));
    specs.push(CellSpec::new(
        cache1.clone(),
        move || configs::one_to_four(cache_ws),
        PolicyChoice::AutoTiering,
        scale.duration_ns,
        scale.seed,
    ));
    specs.push(CellSpec::new(
        cache1.clone(),
        move || configs::two_to_one(cache_ws),
        PolicyChoice::AutoTiering,
        scale.duration_ns,
        scale.seed,
    ));

    let mut results = run_cells(scale.jobs, &specs).into_iter();
    fn take(
        results: &mut impl Iterator<Item = Result<ExperimentResult, tpp::policy::UnsupportedConfig>>,
        msg: &str,
    ) -> ExperimentResult {
        results.next().expect("one result per spec").expect(msg)
    }
    let mut web_cells: Vec<ExperimentResult> = (0..web_len)
        .map(|_| take(&mut results, "every policy supports 2:1"))
        .collect();
    let web_cmp = Comparison {
        workload: web.name.clone(),
        baseline: web_cells.remove(0),
        cells: web_cells,
    };
    let mut cache_cells: Vec<ExperimentResult> = (0..3)
        .map(|_| take(&mut results, "policy supports 1:4"))
        .collect();
    let cache_baseline = cache_cells.remove(0);
    // AutoTiering refuses 1:4 — reproduce the paper's observation, then
    // fall back to 2:1 for its row.
    let unsupported = results
        .next()
        .expect("one result per spec")
        .expect_err("AutoTiering refuses 1:4");
    cache_cells.push(take(&mut results, "AutoTiering supports 2:1"));
    let cache_cmp = Comparison {
        workload: cache1.name.clone(),
        baseline: cache_baseline,
        cells: cache_cells,
    };

    let comparisons = vec![web_cmp, cache_cmp];
    let mut rows = Vec::new();
    for c in &comparisons {
        for r in &c.cells {
            let config = if r.policy == "autotiering" && c.workload == "cache1" {
                "2:1 (cannot run 1:4)"
            } else if c.workload == "cache1" {
                "1:4"
            } else {
                "2:1"
            };
            rows.push(vec![
                c.workload.clone(),
                r.policy.clone(),
                config.to_string(),
                pct(r.local_traffic),
                pct(r.relative_throughput(&c.baseline)),
                format!("{}", r.promoted()),
                format!("{}", r.vmstat.get(VmEvent::NumaHintFaultsLocal)),
            ]);
        }
    }
    print_table(
        "Figure 19 — TPP vs NUMA balancing vs AutoTiering",
        &[
            "workload",
            "policy",
            "config",
            "local traffic",
            "throughput vs all-local",
            "promoted",
            "wasted local hint faults",
        ],
        &rows,
    );
    println!("\nnote: {unsupported}");
    comparisons
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full-figure runs are exercised by the integration tests and the
    // `repro` binary at quick scale; here we only check plumbing.
    #[test]
    fn traffic_rows_shape() {
        let scale = Scale {
            duration_ns: 2 * SEC,
            ws_pages: 1500,
            ..Scale::quick()
        };
        let profile = tiered_workloads::uniform(scale.ws_pages);
        let ws = profile.working_set_pages();
        let groups = vec![comparison_specs(
            &profile,
            move || configs::two_to_one(ws),
            &[PolicyChoice::Tpp],
            &scale,
        )];
        let cmp = run_comparisons(groups, &scale);
        let rows = traffic_perf_rows(&cmp);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), TRAFFIC_HEADER.len());
    }

    #[test]
    fn comparison_groups_are_job_count_invariant() {
        let scale_seq = Scale {
            duration_ns: 2 * SEC,
            ws_pages: 1500,
            jobs: 1,
            ..Scale::quick()
        };
        let scale_par = Scale {
            jobs: 4,
            ..scale_seq
        };
        let groups = |scale: &Scale| {
            let profile = tiered_workloads::uniform(scale.ws_pages);
            let ws = profile.working_set_pages();
            vec![comparison_specs(
                &profile,
                move || configs::two_to_one(ws),
                &[PolicyChoice::Linux, PolicyChoice::Tpp],
                scale,
            )]
        };
        let seq = run_comparisons(groups(&scale_seq), &scale_seq);
        let par = run_comparisons(groups(&scale_par), &scale_par);
        let flatten = |cs: &[Comparison]| {
            cs.iter()
                .flat_map(|c| {
                    std::iter::once(&c.baseline)
                        .chain(c.cells.iter())
                        .map(|r| (r.policy.clone(), r.throughput, r.vmstat.clone()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(flatten(&seq), flatten(&par));
    }
}
