//! Evaluation figures (paper §6): Figures 15–19 and Table 1.
//!
//! Every function returns structured results (for integration tests and
//! Criterion benches) and prints the paper-shaped table.

use tiered_mem::{Memory, VmEvent};
use tiered_sim::SEC;
use tiered_workloads::WorkloadProfile;
use tpp::configs;
use tpp::experiment::{run_cell, ExperimentResult, PolicyChoice};
use tpp::policy::TppConfig;

use crate::scale::{pct, print_table, Scale};

/// One workload's comparison: the all-local baseline plus one result per
/// evaluated policy.
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// The all-from-local-memory baseline (default kernel, single node).
    pub baseline: ExperimentResult,
    /// Policy results on the tiered machine.
    pub cells: Vec<ExperimentResult>,
}

fn run_baseline(profile: &WorkloadProfile, scale: &Scale) -> ExperimentResult {
    run_cell(
        profile,
        configs::all_local(profile.working_set_pages()),
        &PolicyChoice::Linux,
        scale.duration_ns,
        scale.seed,
    )
    .expect("all-local baseline always runs")
}

fn compare(
    profile: &WorkloadProfile,
    machine: impl Fn() -> Memory,
    policies: &[PolicyChoice],
    scale: &Scale,
) -> Comparison {
    let baseline = run_baseline(profile, scale);
    let cells = policies
        .iter()
        .map(|choice| {
            run_cell(profile, machine(), choice, scale.duration_ns, scale.seed)
                .expect("policy was pre-validated for this machine")
        })
        .collect();
    Comparison {
        workload: profile.name.clone(),
        baseline,
        cells,
    }
}

fn traffic_perf_rows(comparisons: &[Comparison]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in comparisons {
        for r in &c.cells {
            let demote_rate = r.demoted() as f64 / (r.duration_ns as f64 / SEC as f64);
            let reclaim_rate =
                r.vmstat.get(VmEvent::PgSteal) as f64 / (r.duration_ns as f64 / SEC as f64);
            rows.push(vec![
                c.workload.clone(),
                r.policy.clone(),
                pct(r.local_traffic),
                pct(1.0 - r.local_traffic),
                pct(r.anon_resident_local),
                pct(r.relative_throughput(&c.baseline)),
                format!("{demote_rate:.0}"),
                format!("{reclaim_rate:.0}"),
                format!("{}", r.promoted()),
            ]);
        }
    }
    rows
}

const TRAFFIC_HEADER: [&str; 9] = [
    "workload",
    "policy",
    "local traffic",
    "CXL traffic",
    "anon on local",
    "throughput vs all-local",
    "demote/s",
    "pageout/s",
    "promoted",
];

/// Figure 15: default production environment (2:1), default Linux vs TPP
/// on all four workloads.
pub fn fig15(scale: &Scale) -> Vec<Comparison> {
    let comparisons: Vec<Comparison> = tiered_workloads::all_production(scale.ws_pages)
        .iter()
        .map(|p| {
            compare(
                p,
                || configs::two_to_one(p.working_set_pages()),
                &[PolicyChoice::Linux, PolicyChoice::Tpp],
                scale,
            )
        })
        .collect();
    print_table(
        "Figure 15 — 2:1 local:CXL, default Linux vs TPP",
        &TRAFFIC_HEADER,
        &traffic_perf_rows(&comparisons),
    );
    comparisons
}

/// Figure 16: large memory expansion (1:4) for the Cache workloads.
pub fn fig16(scale: &Scale) -> Vec<Comparison> {
    let profiles = [
        tiered_workloads::cache1(scale.ws_pages),
        tiered_workloads::cache2(scale.ws_pages),
    ];
    let comparisons: Vec<Comparison> = profiles
        .iter()
        .map(|p| {
            compare(
                p,
                || configs::one_to_four(p.working_set_pages()),
                &[PolicyChoice::Linux, PolicyChoice::Tpp],
                scale,
            )
        })
        .collect();
    print_table(
        "Figure 16 — 1:4 local:CXL (80% of working set on CXL)",
        &TRAFFIC_HEADER,
        &traffic_perf_rows(&comparisons),
    );
    comparisons
}

/// Figure 17: ablation of allocation/reclamation decoupling (Cache1,
/// 1:4).
pub fn fig17(scale: &Scale) -> Vec<Comparison> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let coupled = TppConfig {
        decouple: false,
        ..TppConfig::default()
    };
    let comparison = compare(
        &profile,
        || configs::one_to_four(profile.working_set_pages()),
        &[PolicyChoice::TppCustom(coupled), PolicyChoice::Tpp],
        scale,
    );
    let mut rows = Vec::new();
    for (label, r) in [
        ("coupled", &comparison.cells[0]),
        ("decoupled", &comparison.cells[1]),
    ] {
        let alloc_p95 = r.metrics.alloc_local_rate.percentile(0.95).unwrap_or(0.0);
        let promo_mean = r.metrics.promotion_rate.mean().unwrap_or(0.0);
        let promo_p99 = r.metrics.promotion_rate.percentile(0.99).unwrap_or(0.0);
        rows.push(vec![
            label.to_string(),
            format!("{alloc_p95:.0}"),
            format!("{promo_mean:.0}"),
            format!("{promo_p99:.0}"),
            pct(1.0 - r.local_traffic),
            pct(r.relative_throughput(&comparison.baseline)),
        ]);
    }
    print_table(
        "Figure 17 — decoupling allocation & reclamation (Cache1, 1:4)",
        &[
            "variant",
            "local alloc p95 (pages/s)",
            "promo mean (pages/s)",
            "promo p99 (pages/s)",
            "CXL traffic",
            "throughput vs all-local",
        ],
        &rows,
    );
    vec![comparison]
}

/// Figure 18: ablation of the active-LRU promotion filter (Cache1, 1:4).
pub fn fig18(scale: &Scale) -> Vec<Comparison> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let instant = TppConfig {
        active_lru_filter: false,
        ..TppConfig::default()
    };
    let comparison = compare(
        &profile,
        || configs::one_to_four(profile.working_set_pages()),
        &[PolicyChoice::TppCustom(instant), PolicyChoice::Tpp],
        scale,
    );
    let mut rows = Vec::new();
    for (label, r) in [
        ("instant promotion", &comparison.cells[0]),
        ("active-LRU filter", &comparison.cells[1]),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{}", r.promoted()),
            format!("{}", r.vmstat.get(VmEvent::PgPromoteCandidateDemoted)),
            pct(r.vmstat.promote_success_rate()),
            format!("{}", r.demoted()),
            pct(r.local_traffic),
            pct(r.relative_throughput(&comparison.baseline)),
        ]);
    }
    print_table(
        "Figure 18 — active-LRU-based hot-page detection (Cache1, 1:4)",
        &[
            "variant",
            "promoted",
            "demoted-then-promoted (ping-pong)",
            "promo success rate",
            "demoted",
            "local traffic",
            "throughput vs all-local",
        ],
        &rows,
    );
    vec![comparison]
}

/// Table 1: page-type-aware allocation (caches to CXL).
pub fn table1(scale: &Scale) -> Vec<Comparison> {
    let aware = TppConfig {
        cache_to_cxl: true,
        ..TppConfig::default()
    };
    type Cell = (WorkloadProfile, &'static str, fn(u64) -> Memory);
    let cells: Vec<Cell> = vec![
        (
            tiered_workloads::web(scale.ws_pages),
            "2:1",
            configs::two_to_one,
        ),
        (
            tiered_workloads::cache1(scale.ws_pages),
            "1:4",
            configs::one_to_four,
        ),
        (
            tiered_workloads::cache2(scale.ws_pages),
            "1:4",
            configs::one_to_four,
        ),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (profile, config_label, machine) in cells {
        let comparison = compare(
            &profile,
            || machine(profile.working_set_pages()),
            &[PolicyChoice::TppCustom(aware)],
            scale,
        );
        let r = &comparison.cells[0];
        rows.push(vec![
            profile.name.clone(),
            config_label.to_string(),
            pct(r.local_traffic),
            pct(1.0 - r.local_traffic),
            pct(r.relative_throughput(&comparison.baseline)),
        ]);
        out.push(comparison);
    }
    print_table(
        "Table 1 — page-type-aware allocation (caches to CXL)",
        &[
            "application",
            "configuration",
            "local traffic",
            "CXL traffic",
            "perf w.r.t baseline",
        ],
        &rows,
    );
    out
}

/// Figure 19: TPP vs NUMA balancing vs AutoTiering (Web on 2:1; Cache1 on
/// 1:4 where AutoTiering cannot run, so it is evaluated on 2:1 as in the
/// paper).
pub fn fig19(scale: &Scale) -> Vec<Comparison> {
    let web = tiered_workloads::web(scale.ws_pages);
    let web_cmp = compare(
        &web,
        || configs::two_to_one(web.working_set_pages()),
        &[
            PolicyChoice::Linux,
            PolicyChoice::NumaBalancing,
            PolicyChoice::AutoTiering,
            PolicyChoice::Tpp,
        ],
        scale,
    );
    let cache1 = tiered_workloads::cache1(scale.ws_pages);
    // AutoTiering refuses 1:4 — reproduce the paper's observation, then
    // fall back to 2:1 for its row.
    let at_on_1to4 = run_cell(
        &cache1,
        configs::one_to_four(cache1.working_set_pages()),
        &PolicyChoice::AutoTiering,
        scale.duration_ns,
        scale.seed,
    );
    let unsupported = at_on_1to4.err();
    let mut cache_cmp = compare(
        &cache1,
        || configs::one_to_four(cache1.working_set_pages()),
        &[PolicyChoice::NumaBalancing, PolicyChoice::Tpp],
        scale,
    );
    let at_on_2to1 = run_cell(
        &cache1,
        configs::two_to_one(cache1.working_set_pages()),
        &PolicyChoice::AutoTiering,
        scale.duration_ns,
        scale.seed,
    )
    .expect("AutoTiering supports 2:1");
    cache_cmp.cells.push(at_on_2to1);

    let comparisons = vec![web_cmp, cache_cmp];
    let mut rows = Vec::new();
    for c in &comparisons {
        for r in &c.cells {
            let config = if r.policy == "autotiering" && c.workload == "cache1" {
                "2:1 (cannot run 1:4)"
            } else if c.workload == "cache1" {
                "1:4"
            } else {
                "2:1"
            };
            rows.push(vec![
                c.workload.clone(),
                r.policy.clone(),
                config.to_string(),
                pct(r.local_traffic),
                pct(r.relative_throughput(&c.baseline)),
                format!("{}", r.promoted()),
                format!("{}", r.vmstat.get(VmEvent::NumaHintFaultsLocal)),
            ]);
        }
    }
    print_table(
        "Figure 19 — TPP vs NUMA balancing vs AutoTiering",
        &[
            "workload",
            "policy",
            "config",
            "local traffic",
            "throughput vs all-local",
            "promoted",
            "wasted local hint faults",
        ],
        &rows,
    );
    if let Some(e) = unsupported {
        println!("\nnote: {e}");
    }
    comparisons
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full-figure runs are exercised by the integration tests and the
    // `repro` binary at quick scale; here we only check plumbing.
    #[test]
    fn traffic_rows_shape() {
        let scale = Scale {
            duration_ns: 2 * SEC,
            ws_pages: 1500,
            ..Scale::quick()
        };
        let profile = tiered_workloads::uniform(scale.ws_pages);
        let cmp = compare(
            &profile,
            || configs::two_to_one(scale.ws_pages),
            &[PolicyChoice::Tpp],
            &scale,
        );
        let rows = traffic_perf_rows(&[cmp]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), TRAFFIC_HEADER.len());
    }
}
