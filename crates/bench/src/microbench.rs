//! A tiny self-contained micro-benchmark harness.
//!
//! The crates registry is unreachable from the build environment, so the
//! benches cannot use Criterion; this module provides the minimal subset
//! the repo needs: auto-calibrated iteration counts, a warm-up pass,
//! multiple samples, and a `name  median ns/iter (min .. max)` report
//! line. All benches run with `harness = false` and call [`bench()`] (or
//! [`bench_with_setup`] for `iter_batched`-style cases) from `main`.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark (split over samples).
const MEASURE_TARGET: Duration = Duration::from_millis(600);
/// Warm-up budget before any timing is recorded.
const WARMUP_TARGET: Duration = Duration::from_millis(150);
/// Number of timed samples; the median is reported.
const SAMPLES: usize = 5;

/// Runs `f` repeatedly and prints a one-line timing report.
///
/// The closure is invoked continuously (like Criterion's `Bencher::iter`);
/// state captured mutably persists across iterations.
pub fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Calibrate: double the batch size until one batch is long enough to
    // time reliably, warming caches as a side effect.
    let mut batch = 1u64;
    let warmup_start = Instant::now();
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= MEASURE_TARGET / (SAMPLES as u32 * 2) {
            break;
        }
        if warmup_start.elapsed() >= WARMUP_TARGET && elapsed >= Duration::from_micros(100) {
            break;
        }
        batch = batch.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    report(name, &per_iter, batch);
}

/// `iter_batched` equivalent: `setup` builds fresh input for every timed
/// call of `f`, and only `f` is on the clock.
pub fn bench_with_setup<T, S: FnMut() -> T, F: FnMut(T)>(name: &str, mut setup: S, mut f: F) {
    // Warm up once (untimed) so allocation and code paths are hot.
    f(setup());
    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut spent = Duration::ZERO;
    while per_iter.len() < SAMPLES || spent < MEASURE_TARGET {
        let input = setup();
        let t = Instant::now();
        f(input);
        let elapsed = t.elapsed();
        spent += elapsed;
        per_iter.push(elapsed.as_nanos() as f64);
        if per_iter.len() >= SAMPLES * 8 {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    report(name, &per_iter, 1);
}

fn report(name: &str, sorted_ns: &[f64], batch: u64) {
    let median = sorted_ns[sorted_ns.len() / 2];
    let min = sorted_ns[0];
    let max = sorted_ns[sorted_ns.len() - 1];
    println!(
        "{name:<44} {:>12} ns/iter  (min {}, max {}, batch {batch})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        bench("test/noop_counter", || {
            count += 1;
        });
        assert!(count > 0);
    }

    #[test]
    fn bench_with_setup_runs_each_input_once() {
        let mut built = 0u64;
        let mut consumed = 0u64;
        bench_with_setup(
            "test/setup_case",
            || {
                built += 1;
                vec![0u8; 1024]
            },
            |v| {
                consumed += v.len() as u64;
            },
        );
        assert!(built >= 2);
        assert_eq!(consumed, built * 1024);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(950.0), "950");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
