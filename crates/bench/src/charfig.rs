//! Characterization figures (paper §2–3): the memory-hierarchy latency
//! table (Figure 2/5) and the Chameleon workload characterization
//! (Figures 7, 8, 9, 10, 11).
//!
//! Each workload runs on an all-local machine under the default policy
//! with a Chameleon profiler attached — the same methodology as the
//! paper's production characterization, with one Chameleon interval
//! standing in for one minute.

use chameleon::{Chameleon, ChameleonConfig, CollectorConfig};
use tiered_mem::NodeKind;
use tiered_sim::LatencyModel;
use tpp::experiment::PolicyChoice;
use tpp::{configs, RunMetrics, System};

use crate::executor::parallel_map;
use crate::scale::{pct, print_table, Scale};

/// One workload's characterization artefacts.
pub struct Characterization {
    /// Workload name.
    pub name: String,
    /// The profiler state after the run.
    pub profiler: Chameleon,
    /// Runner metrics (throughput etc.).
    pub metrics: RunMetrics,
    /// Resident anon pages at run end (unbiased hot-fraction denominator).
    pub resident_anon: u64,
    /// Resident file pages at run end.
    pub resident_file: u64,
}

/// Runs all four production workloads on all-local machines with a
/// profiler attached.
///
/// The four runs are independent (each builds its own machine, profiler
/// and seed), so they are fanned out over `scale.jobs` executor workers;
/// results come back in workload order regardless of job count.
pub fn characterize_all(scale: &Scale) -> Vec<Characterization> {
    let profiles = tiered_workloads::all_production(scale.ws_pages);
    parallel_map(scale.jobs, profiles.len(), |i| {
        {
            let profile = &profiles[i];
            let memory = configs::all_local(profile.working_set_pages());
            let workload = profile.build();
            let mut system = System::new(
                memory,
                PolicyChoice::Linux.build(),
                Box::new(workload),
                scale.seed,
            )
            .expect("all-local machines are always supported");
            // Sampling density scales with the compressed timescale: one
            // 30 s interval stands in for the paper's 1 minute, but the
            // simulated access rate is far below production's, so the
            // production 1-in-200 rate would see only the very hottest
            // pages. 1-in-5 restores the paper's per-interval detection
            // probability for hot-window pages.
            let mut profiler = Chameleon::new(ChameleonConfig {
                collector: CollectorConfig {
                    sample_period: 5,
                    cores: 32,
                    core_groups: 4,
                    mini_interval_ns: (scale.profile_interval_ns / 12).max(1),
                },
                interval_ns: scale.profile_interval_ns,
                max_gap_intervals: 16,
            });
            system.run_observed(scale.profile_duration_ns, &mut profiler);
            profiler.flush_interval(system.now_ns());
            let (resident_anon, resident_file) = system.memory().node_usage(tiered_mem::NodeId(0));
            Characterization {
                name: profile.name.clone(),
                profiler,
                metrics: system.metrics().clone(),
                resident_anon,
                resident_file,
            }
        }
    })
}

/// Figure 2/5: the memory-tier latency hierarchy of the simulated
/// machine.
pub fn fig2() -> Vec<Vec<String>> {
    let lat = LatencyModel::datacenter();
    let rows = vec![
        vec![
            "local DRAM".to_string(),
            format!("{} ns", NodeKind::LocalDram.default_latency_ns()),
            "CPU-attached, fast tier".to_string(),
        ],
        vec![
            "CXL-Memory".to_string(),
            format!("{} ns", NodeKind::Cxl.default_latency_ns()),
            "CPU-less node, NUMA-like (+50-100 ns)".to_string(),
        ],
        vec![
            "NUMA hint fault".to_string(),
            format!("{} ns", lat.hint_fault_ns),
            "minor-fault handler".to_string(),
        ],
        vec![
            "page migration".to_string(),
            format!("{} ns/page", lat.migrate_page_ns),
            "node-to-node copy (TPP demotion/promotion)".to_string(),
        ],
        vec![
            "swap-out".to_string(),
            format!("{} ns/page", lat.swap_out_page_ns),
            "paging device write (default reclaim)".to_string(),
        ],
        vec![
            "swap-in / disk read".to_string(),
            format!("{} ns/page", lat.swap_in_total_ns()),
            "major fault".to_string(),
        ],
    ];
    print_table(
        "Figure 2/5 — memory-tier latency hierarchy",
        &["tier / operation", "latency", "notes"],
        &rows,
    );
    rows
}

/// Figure 7: total tracked memory vs. memory accessed within 1- and
/// 2-interval windows.
pub fn fig7(chars: &[Characterization]) -> Vec<Vec<String>> {
    let rows: Vec<Vec<String>> = chars
        .iter()
        .map(|c| {
            let w = c.profiler.worker();
            let resident = (c.resident_anon + c.resident_file).max(1);
            vec![
                c.name.clone(),
                format!("{resident}"),
                pct(w.hot_pages(1, None) as f64 / resident as f64),
                pct(w.hot_pages(2, None) as f64 / resident as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 7 — pages accessed within short windows (1 interval ~ 1 paper-minute)",
        &[
            "workload",
            "resident pages",
            "hot (1 interval)",
            "hot (2 intervals)",
        ],
        &rows,
    );
    rows
}

/// Figure 8: per-type hotness within a 2-interval window.
pub fn fig8(chars: &[Characterization]) -> Vec<Vec<String>> {
    let rows: Vec<Vec<String>> = chars
        .iter()
        .map(|c| {
            let w = c.profiler.worker();
            vec![
                c.name.clone(),
                pct(w.hot_pages(2, Some(true)) as f64 / c.resident_anon.max(1) as f64),
                pct(w.hot_pages(2, Some(false)) as f64 / c.resident_file.max(1) as f64),
            ]
        })
        .collect();
    print_table(
        "Figure 8 — anon vs file hotness (2-interval window)",
        &["workload", "anon hot", "file hot"],
        &rows,
    );
    rows
}

/// Figure 9: page-type usage over time (anon/file shares of *resident*
/// memory, from the system's per-second node-usage series, thinned to one
/// row per 30 s).
pub fn fig9(chars: &[Characterization]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in chars {
        let anon = c.metrics.local_anon_pages.points();
        let file = c.metrics.local_file_pages.points();
        for (i, (&(t, a), &(_, f))) in anon.iter().zip(file.iter()).enumerate() {
            if i % 30 != 0 {
                continue;
            }
            let total = (a + f).max(1.0);
            rows.push(vec![
                c.name.clone(),
                format!("{}", t / tiered_sim::SEC),
                pct(a / total),
                pct(f / total),
                format!("{total:.0}"),
            ]);
        }
    }
    print_table(
        "Figure 9 — page-type usage over time",
        &[
            "workload",
            "t (s)",
            "anon share",
            "file share",
            "resident pages",
        ],
        &rows,
    );
    rows
}

/// Figure 10: throughput vs. page-type utilisation (per-interval pairs,
/// throughput normalised to the workload's own maximum).
pub fn fig10(chars: &[Characterization]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in chars {
        let tp = c.metrics.throughput.points();
        let anon = c.metrics.local_anon_pages.points();
        let file = c.metrics.local_file_pages.points();
        let max_tp = c.metrics.throughput.max().unwrap_or(1.0).max(1e-9);
        for (i, &(t, ops)) in tp.iter().enumerate() {
            if i % 30 != 0 {
                continue; // thin the table to one row per ~30 s
            }
            let a = anon.get(i).map(|&(_, v)| v).unwrap_or(0.0);
            let f = file.get(i).map(|&(_, v)| v).unwrap_or(0.0);
            rows.push(vec![
                c.name.clone(),
                format!("{}", t / tiered_sim::SEC),
                format!("{a:.0}"),
                format!("{f:.0}"),
                pct(ops / max_tp),
            ]);
        }
    }
    print_table(
        "Figure 10 — throughput vs page-type utilisation",
        &[
            "workload",
            "t (s)",
            "anon pages",
            "file pages",
            "throughput (of max)",
        ],
        &rows,
    );
    rows
}

/// Figure 11: re-access-interval CDF per workload (gap measured in
/// profiler intervals ~ paper minutes).
pub fn fig11(chars: &[Characterization]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for c in chars {
        let cdf = c.profiler.reaccess_cdf();
        for (gap, frac) in cdf.iter().enumerate().take(10) {
            rows.push(vec![c.name.clone(), format!("{}", gap + 1), pct(*frac)]);
        }
    }
    print_table(
        "Figure 11 — re-access interval CDF (gap in intervals ~ minutes)",
        &["workload", "cold gap ≤", "fraction of re-accesses"],
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_lists_all_tiers() {
        let rows = fig2();
        assert_eq!(rows.len(), 6);
        assert!(rows[0][0].contains("DRAM"));
    }
}
