//! Simulation scale settings shared by every figure reproduction.
//!
//! The paper's machines hold hundreds of GiB and its runs last hours; the
//! simulator reproduces the *dynamics* at a reduced scale. One Chameleon
//! "interval" stands in for the paper's one-minute interval, and working
//! sets are tens of thousands of pages instead of tens of millions. All
//! scale knobs live here so the mapping is explicit and consistent.

use tiered_sim::{MINUTE, SEC};

/// Scale configuration for experiment runs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Working-set size per workload, in pages.
    pub ws_pages: u64,
    /// Simulated duration of each evaluation run.
    pub duration_ns: u64,
    /// Chameleon interval (stands in for the paper's 1 minute).
    pub profile_interval_ns: u64,
    /// Simulated duration of characterization runs.
    pub profile_duration_ns: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for cell execution (1 = fully sequential).
    pub jobs: usize,
}

impl Scale {
    /// The standard scale used for `repro` runs: large enough for stable
    /// steady-state measurements.
    pub fn standard() -> Scale {
        Scale {
            ws_pages: 24_000,
            duration_ns: 4 * MINUTE,
            profile_interval_ns: 30 * SEC,
            profile_duration_ns: 5 * MINUTE,
            seed: 42,
            jobs: 1,
        }
    }

    /// A reduced scale for smoke tests and Criterion benches.
    pub fn quick() -> Scale {
        Scale {
            ws_pages: 6_000,
            duration_ns: 60 * SEC,
            profile_interval_ns: 10 * SEC,
            profile_duration_ns: 80 * SEC,
            seed: 42,
            jobs: 1,
        }
    }
}

/// Formats a fraction as a percentage string, e.g. `"93.4%"`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

static CSV_DIR: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

/// Configures a directory that every subsequently printed table is also
/// exported to as CSV (used by `repro --csv <dir>`). Can only be set
/// once per process; later calls are ignored.
pub fn set_csv_dir(dir: impl Into<std::path::PathBuf>) {
    let dir = dir.into();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create csv dir {}: {e}", dir.display());
        return;
    }
    let _ = CSV_DIR.set(dir);
}

/// Writes a table as CSV into `dir/<slug>.csv` (the slug is derived from
/// the title). Errors are reported to stderr, not propagated — CSV export
/// is a convenience by-product of a figure run.
pub fn write_csv(dir: &std::path::Path, title: &str, header: &[&str], rows: &[Vec<String>]) {
    // Slug from the full title so distinct tables never collide.
    let mut slug: String = title
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    while slug.contains("__") {
        slug = slug.replace("__", "_");
    }
    let slug = slug.trim_matches('_').chars().take(64).collect::<String>();
    let path = dir.join(format!("{slug}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("csv export to {} failed: {e}", path.display());
    }
}

/// Prints a markdown-style table: a header row and aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    if let Some(dir) = CSV_DIR.get() {
        write_csv(dir, title, header, rows);
    }
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let s = Scale::standard();
        let q = Scale::quick();
        assert!(s.ws_pages > q.ws_pages);
        assert!(s.duration_ns > q.duration_ns);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.934), "93.4%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn csv_export_writes_escaped_rows() {
        let dir = std::env::temp_dir().join("tpp_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        write_csv(
            &dir,
            "Figure 99 — example table",
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()]],
        );
        let text = std::fs::read_to_string(dir.join("figure_99_example_table.csv")).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("1,\"x,y\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
