//! # tpp-bench
//!
//! The benchmark harness of the TPP reproduction: one function per table
//! and figure in the paper's evaluation, shared by the `repro` binary,
//! the integration tests, and the micro-benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod charfig;
pub mod evalfig;
pub mod executor;
pub mod microbench;
pub mod scale;
pub mod sweeps;
pub mod tolerance;

pub use scale::Scale;
