//! # tpp-bench
//!
//! The benchmark harness of the TPP reproduction: one function per table
//! and figure in the paper's evaluation, shared by the `repro` binary,
//! the integration tests, and the Criterion micro-benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod charfig;
pub mod evalfig;
pub mod scale;
pub mod sweeps;

pub use scale::Scale;
