//! The parallel experiment executor: fans independent work items over a
//! fixed pool of scoped worker threads with **zero third-party deps**.
//!
//! Experiment cells are embarrassingly parallel — each [`CellSpec`] owns
//! its own machine factory, workload profile, RNG seed and clock, and a
//! running cell touches no shared mutable state. The executor therefore
//! only has to solve scheduling and ordering:
//!
//! * **Scheduling** — workers claim item indices from a shared
//!   [`AtomicUsize`] "ticket" counter, so a slow cell never stalls the
//!   cells behind it the way a static partition would.
//! * **Ordering** — each worker records `(index, result)` pairs and the
//!   results are reassembled into *input order* after the scope joins,
//!   so the output never depends on thread timing. Combined with
//!   per-cell state ownership this makes `--jobs N` output bit-identical
//!   to `--jobs 1`.
//!
//! [`parallel_map`] is the generic primitive; [`run_cells`] is the
//! cell-batch convenience used by the figure drivers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use tpp::experiment::{CellSpec, ExperimentResult};
use tpp::policy::UnsupportedConfig;

/// Total simulated accesses executed by finished cells in this process
/// (all threads), for the aggregate ops/s line in timing reports.
static OPS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Credits `n` simulated accesses to the process-wide counter.
pub fn add_ops(n: u64) {
    OPS_TOTAL.fetch_add(n, Ordering::Relaxed);
}

/// Simulated accesses completed so far (process-wide).
pub fn ops_total() -> u64 {
    OPS_TOTAL.load(Ordering::Relaxed)
}

/// Maps `f` over `0..n` with up to `jobs` worker threads and returns the
/// results in index order.
///
/// `jobs <= 1` (or `n <= 1`) short-circuits to a plain sequential loop on
/// the calling thread — exactly the single-threaded behaviour, with no
/// threads spawned at all. Otherwise `min(jobs, n)` scoped threads claim
/// indices from the shared ticket counter; each worker keeps its own
/// `(index, result)` list and the lists are merged back into input order
/// once the scope has joined every worker.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("executor worker panicked") {
                debug_assert!(slots[i].is_none(), "ticket counter issued {i} twice");
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed by exactly one worker"))
        .collect()
}

/// Runs a batch of cells on `jobs` workers and returns their results in
/// spec order (see [`parallel_map`] for the scheduling/ordering model).
///
/// Each cell's simulated access count is credited to the process-wide
/// [`ops_total`] counter as it finishes.
pub fn run_cells(
    jobs: usize,
    specs: &[CellSpec],
) -> Vec<Result<ExperimentResult, UnsupportedConfig>> {
    parallel_map(jobs, specs.len(), |i| {
        let outcome = specs[i].run();
        if let Ok(result) = &outcome {
            add_ops(result.metrics.accesses);
        }
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_sim::SEC;
    use tpp::experiment::PolicyChoice;

    #[test]
    fn parallel_map_preserves_input_order() {
        for jobs in [1, 2, 4, 7] {
            let out = parallel_map(jobs, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(parallel_map(64, 3, |i| i), vec![0, 1, 2]);
    }

    fn demo_specs() -> Vec<CellSpec> {
        [PolicyChoice::Linux, PolicyChoice::Tpp]
            .into_iter()
            .map(|choice| {
                CellSpec::new(
                    tiered_workloads::uniform(1_500),
                    || tpp::configs::two_to_one(2_000),
                    choice,
                    2 * SEC,
                    7,
                )
            })
            .collect()
    }

    #[test]
    fn run_cells_matches_sequential_execution() {
        let sequential: Vec<_> = demo_specs().iter().map(|s| s.run()).collect();
        let parallel = run_cells(4, &demo_specs());
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.policy, p.policy);
            assert_eq!(s.throughput, p.throughput);
            assert_eq!(s.local_traffic, p.local_traffic);
            assert_eq!(s.vmstat, p.vmstat);
        }
    }

    #[test]
    fn ops_counter_accumulates() {
        let before = ops_total();
        add_ops(123);
        assert!(ops_total() >= before + 123);
    }
}
