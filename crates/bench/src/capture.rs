//! The `repro --trace` capture run: one instrumented TPP run whose full
//! event stream is recorded, checked for counter parity, diagnosed for
//! ping-pong churn, and exported in machine-readable form.
//!
//! The figure targets themselves always run with tracing disabled
//! (`NullSink`), so their numbers are bit-identical whether or not a
//! capture is requested; the capture is a separate, dedicated run.

use std::path::Path;

use chameleon::TraceSection;
use tiered_mem::telemetry::{
    replay_counters, RingSink, TeeSink, TraceRecord, WriterSink, TRACED_COUNTERS,
};
use tiered_mem::VmStat;
use tiered_sim::SEC;
use tpp::configs;
use tpp::experiment::{CellSpec, PolicyChoice};
use tpp::metrics::{decision_summary, ping_pong_report, vmstat_csv, PingPongReport};

use crate::scale::{print_table, Scale};

/// Everything the capture run produced.
pub struct CaptureOutcome {
    /// The full event stream (from the in-process ring).
    pub records: Vec<TraceRecord>,
    /// Final vmstat counters of the captured run.
    pub vmstat: VmStat,
    /// JSONL lines written to the `--trace` file (0 when not requested).
    pub jsonl_lines: u64,
    /// Counters where the replayed trace disagrees with vmstat (must be
    /// empty: `Memory::record` bumps both from one call).
    pub parity_mismatches: Vec<String>,
    /// The §5.5 ping-pong diagnosis for the captured run.
    pub ping_pong: PingPongReport,
}

/// Runs the dedicated capture workload (cache1 on the 1:4 machine under
/// TPP), streaming events to `trace_path` (JSONL, when given) and an
/// in-process ring, then prints the parity table, the decision summary,
/// the ping-pong report and the Chameleon trace section. Exports the
/// run's metrics into `metrics_dir` when given.
///
/// # Errors
///
/// Propagates filesystem errors from the trace file or metrics exports.
pub fn capture_run(
    scale: &Scale,
    trace_path: Option<&Path>,
    metrics_dir: Option<&Path>,
) -> std::io::Result<CaptureOutcome> {
    let profile = tiered_workloads::cache1(scale.ws_pages);
    let ws = profile.working_set_pages();
    // The capture cell is the same descriptor the figures would use; the
    // ring/tee sinks are `Rc`-based (not `Send`), so the system is built
    // from the spec here and instrumented inline instead of going through
    // the parallel executor.
    let spec = CellSpec::new(
        profile.clone(),
        move || configs::one_to_four(ws),
        PolicyChoice::Tpp,
        scale.duration_ns,
        scale.seed,
    );
    let mut system = spec.build_system().expect("tpp supports the 1:4 machine");

    let ring = RingSink::unbounded();
    let mut tee = TeeSink::new().with(Box::new(ring.clone()));
    if let Some(path) = trace_path {
        tee = tee.with(Box::new(WriterSink::to_file(path)?));
    }
    system.set_event_sink(Box::new(tee));
    // The capture run is a diagnosis run, not a figure run: a bounded
    // duration keeps the unbounded ring small while still exercising
    // every event class (faults, promotion, demotion, reclaim).
    system.run(scale.duration_ns.min(30 * SEC));
    system.flush_trace();

    let records = ring.snapshot();
    let vmstat = system.memory().vmstat().clone();
    let replayed = replay_counters(&records);
    let mut parity_mismatches = Vec::new();
    let rows: Vec<Vec<String>> = TRACED_COUNTERS
        .iter()
        .map(|&e| {
            let counted = vmstat.get(e);
            let traced = replayed.get(e);
            if counted != traced {
                parity_mismatches.push(format!("{}: vmstat {counted} vs trace {traced}", e.name()));
            }
            vec![
                e.name().to_string(),
                counted.to_string(),
                traced.to_string(),
                if counted == traced { "ok" } else { "MISMATCH" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Trace parity — vmstat counters vs replayed trace events",
        &["counter", "vmstat", "trace", "status"],
        &rows,
    );

    let summaries = decision_summary(&records);
    let decision_rows: Vec<Vec<String>> = summaries
        .iter()
        .flat_map(|s| {
            s.reasons
                .iter()
                .map(|(reason, count)| vec![s.policy.clone(), reason.clone(), count.to_string()])
                .collect::<Vec<_>>()
        })
        .collect();
    print_table(
        "Policy decisions (from trace)",
        &["policy", "reason", "count"],
        &decision_rows,
    );

    let ping_pong = ping_pong_report(&records);
    print_table(
        "Ping-pong report (paper §5.5)",
        &[
            "promotions",
            "demotions",
            "candidates",
            "candidate_demoted",
            "round_trips",
            "thrashing",
        ],
        &[vec![
            ping_pong.promotions.to_string(),
            ping_pong.demotions.to_string(),
            ping_pong.promote_candidates.to_string(),
            ping_pong.candidates_recently_demoted.to_string(),
            ping_pong.round_trips.to_string(),
            ping_pong.is_thrashing().to_string(),
        ]],
    );

    println!("\n{}", TraceSection::from_records(&profile.name, &records));

    if let Some(dir) = metrics_dir {
        std::fs::create_dir_all(dir)?;
        system.metrics().write_exports(dir, "capture_cache1_tpp")?;
        std::fs::write(
            dir.join("capture_cache1_tpp_vmstat.csv"),
            vmstat_csv(&vmstat),
        )?;
        let mut pp = ping_pong.to_json();
        pp.push('\n');
        std::fs::write(dir.join("capture_cache1_tpp_ping_pong.json"), pp)?;
        eprintln!("metrics exported to {}", dir.display());
    }

    // One JSONL line per record: the writer and the ring are fed from the
    // same tee, so the file holds exactly the ring's contents.
    let jsonl_lines = if trace_path.is_some() {
        records.len() as u64
    } else {
        0
    };

    Ok(CaptureOutcome {
        records,
        vmstat,
        jsonl_lines,
        parity_mismatches,
        ping_pong,
    })
}
