//! Characterization reports: the data series behind the paper's Figures
//! 7–11, computed from Worker histories — plus [`TraceSection`], the
//! report section built from a structured kernel-event trace.

use std::collections::BTreeMap;

use tiered_mem::telemetry::TraceRecord;
use tiered_mem::TraceEvent;
use tiered_sim::TimeSeries;

use crate::worker::Worker;

/// Page-temperature classes used by heatmap summaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Temperature {
    /// Active in the most recent interval.
    Hot,
    /// Inactive in the latest interval but active within the history
    /// window.
    Warm,
    /// No activity in the whole retained history.
    Cold,
}

/// Counts of pages per temperature class, split by accounting class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Heatmap {
    /// Hot anon pages.
    pub hot_anon: u64,
    /// Warm anon pages.
    pub warm_anon: u64,
    /// Cold anon pages.
    pub cold_anon: u64,
    /// Hot file-backed pages.
    pub hot_file: u64,
    /// Warm file-backed pages.
    pub warm_file: u64,
    /// Cold file-backed pages.
    pub cold_file: u64,
}

impl Heatmap {
    /// Builds the heatmap from the worker's current histories. `warm_k`
    /// is the look-back window (in intervals) separating warm from cold.
    pub fn from_worker(worker: &Worker, warm_k: u32) -> Heatmap {
        let mut map = Heatmap::default();
        for (_, h) in worker.iter() {
            let temp = if h.active_within(1) {
                Temperature::Hot
            } else if h.active_within(warm_k) {
                Temperature::Warm
            } else {
                Temperature::Cold
            };
            match (h.page_type.is_anon(), temp) {
                (true, Temperature::Hot) => map.hot_anon += 1,
                (true, Temperature::Warm) => map.warm_anon += 1,
                (true, Temperature::Cold) => map.cold_anon += 1,
                (false, Temperature::Hot) => map.hot_file += 1,
                (false, Temperature::Warm) => map.warm_file += 1,
                (false, Temperature::Cold) => map.cold_file += 1,
            }
        }
        map
    }

    /// Total tracked pages.
    pub fn total(&self) -> u64 {
        self.hot_anon
            + self.warm_anon
            + self.cold_anon
            + self.hot_file
            + self.warm_file
            + self.cold_file
    }

    /// Total hot pages.
    pub fn hot_total(&self) -> u64 {
        self.hot_anon + self.hot_file
    }
}

/// Rolling characterization series, sampled once per interval: the exact
/// quantities plotted in Figures 7 (total vs hot), 8 (per-type hotness)
/// and 9 (per-type usage over time).
#[derive(Clone, Debug)]
pub struct UsageSeries {
    /// Pages tracked in total.
    pub total_pages: TimeSeries,
    /// Fraction of pages active within 1 interval.
    pub hot_frac_1: TimeSeries,
    /// Fraction of pages active within 2 intervals.
    pub hot_frac_2: TimeSeries,
    /// Fraction of anon pages active within 2 intervals.
    pub anon_hot_frac: TimeSeries,
    /// Fraction of file pages active within 2 intervals.
    pub file_hot_frac: TimeSeries,
    /// Anon share of tracked pages.
    pub anon_share: TimeSeries,
}

impl UsageSeries {
    /// Creates empty series.
    pub fn new() -> UsageSeries {
        UsageSeries {
            total_pages: TimeSeries::new("total_pages"),
            hot_frac_1: TimeSeries::new("hot_frac_1"),
            hot_frac_2: TimeSeries::new("hot_frac_2"),
            anon_hot_frac: TimeSeries::new("anon_hot_frac_2"),
            file_hot_frac: TimeSeries::new("file_hot_frac_2"),
            anon_share: TimeSeries::new("anon_share"),
        }
    }

    /// Samples the worker state at `now_ns`.
    pub fn sample(&mut self, now_ns: u64, worker: &Worker) {
        let (anon, file) = worker.usage_by_class();
        let total = anon + file;
        self.total_pages.record(now_ns, total as f64);
        self.hot_frac_1.record(now_ns, worker.hot_fraction(1, None));
        self.hot_frac_2.record(now_ns, worker.hot_fraction(2, None));
        self.anon_hot_frac
            .record(now_ns, worker.hot_fraction(2, Some(true)));
        self.file_hot_frac
            .record(now_ns, worker.hot_fraction(2, Some(false)));
        self.anon_share.record(
            now_ns,
            if total == 0 {
                0.0
            } else {
                anon as f64 / total as f64
            },
        );
    }
}

impl Default for UsageSeries {
    fn default() -> UsageSeries {
        UsageSeries::new()
    }
}

/// A complete textual characterization report, in the spirit of the
/// reports the Chameleon tool emits after profiling a service.
///
/// # Examples
///
/// ```
/// use chameleon::{Chameleon, TextReport};
/// let profiler = Chameleon::with_defaults();
/// let report = TextReport::from_profiler("web", &profiler);
/// assert!(report.to_string().contains("web"));
/// ```
#[derive(Clone, Debug)]
pub struct TextReport {
    name: String,
    tracked: usize,
    sampled: u64,
    seen: u64,
    hot1: f64,
    hot2: f64,
    anon_hot: f64,
    file_hot: f64,
    heatmap: Heatmap,
    cdf: Vec<f64>,
}

impl TextReport {
    /// Builds the report from a profiler's current state.
    pub fn from_profiler(name: impl Into<String>, profiler: &crate::Chameleon) -> TextReport {
        let w = profiler.worker();
        TextReport {
            name: name.into(),
            tracked: w.tracked_pages(),
            sampled: profiler.collector().events_sampled(),
            seen: profiler.collector().events_seen(),
            hot1: w.hot_fraction(1, None),
            hot2: w.hot_fraction(2, None),
            anon_hot: w.hot_fraction(2, Some(true)),
            file_hot: w.hot_fraction(2, Some(false)),
            heatmap: profiler.heatmap(8),
            cdf: profiler.reaccess_cdf(),
        }
    }
}

impl std::fmt::Display for TextReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== Chameleon report: {} ==", self.name)?;
        writeln!(
            f,
            "sampling: {} of {} events ({:.3}%)",
            self.sampled,
            self.seen,
            100.0 * self.sampled as f64 / self.seen.max(1) as f64
        )?;
        writeln!(f, "tracked pages: {}", self.tracked)?;
        writeln!(
            f,
            "hot (of tracked): {:.1}% within 1 interval, {:.1}% within 2",
            self.hot1 * 100.0,
            self.hot2 * 100.0
        )?;
        writeln!(
            f,
            "by type (2 intervals): anon {:.1}%, file {:.1}%",
            self.anon_hot * 100.0,
            self.file_hot * 100.0
        )?;
        writeln!(
            f,
            "heatmap anon h/w/c: {}/{}/{}  file h/w/c: {}/{}/{}",
            self.heatmap.hot_anon,
            self.heatmap.warm_anon,
            self.heatmap.cold_anon,
            self.heatmap.hot_file,
            self.heatmap.warm_file,
            self.heatmap.cold_file
        )?;
        write!(f, "re-access cdf:")?;
        for (g, frac) in self.cdf.iter().enumerate().take(8) {
            write!(f, " <= {}: {:.0}%", g + 1, frac * 100.0)?;
        }
        writeln!(f)
    }
}

/// A report section summarizing a structured event trace: what the
/// kernel-side telemetry saw while Chameleon profiled the application.
///
/// Complements the access-side characterization with placement activity:
/// how many events of each kind fired, what the policies decided and why,
/// and how much promotion traffic was churn (pages promoted that had
/// already been demoted — the paper's §5.5 ping-pong diagnosis).
#[derive(Clone, Debug)]
pub struct TraceSection {
    name: String,
    events: u64,
    span_ns: u64,
    counts: BTreeMap<&'static str, u64>,
    decisions: BTreeMap<(&'static str, &'static str), u64>,
    promotions: u64,
    demotions: u64,
    repromoted_candidates: u64,
    promote_candidates: u64,
}

impl TraceSection {
    /// Builds the section from a run's trace records.
    pub fn from_records(name: impl Into<String>, records: &[TraceRecord]) -> TraceSection {
        let mut section = TraceSection {
            name: name.into(),
            events: records.len() as u64,
            span_ns: 0,
            counts: BTreeMap::new(),
            decisions: BTreeMap::new(),
            promotions: 0,
            demotions: 0,
            repromoted_candidates: 0,
            promote_candidates: 0,
        };
        let first = records.first().map_or(0, |r| r.ts_ns);
        let last = records.last().map_or(0, |r| r.ts_ns);
        section.span_ns = last.saturating_sub(first);
        for r in records {
            *section.counts.entry(r.event.name()).or_insert(0) += 1;
            match r.event {
                TraceEvent::PromoteSuccess { .. } => section.promotions += 1,
                TraceEvent::Demote { .. } => section.demotions += 1,
                TraceEvent::PromoteCandidate { demoted, .. } => {
                    section.promote_candidates += 1;
                    if demoted {
                        section.repromoted_candidates += 1;
                    }
                }
                TraceEvent::Decision { policy, reason, .. } => {
                    *section.decisions.entry((policy, reason)).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        section
    }

    /// Total events in the trace.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Occurrences of one event kind (by its stable snake_case name).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Fraction of promotion candidates that had previously been demoted.
    pub fn churn_fraction(&self) -> f64 {
        if self.promote_candidates == 0 {
            0.0
        } else {
            self.repromoted_candidates as f64 / self.promote_candidates as f64
        }
    }
}

impl std::fmt::Display for TraceSection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== Trace section: {} ==", self.name)?;
        writeln!(
            f,
            "events: {} over {:.1}s simulated",
            self.events,
            self.span_ns as f64 / 1e9
        )?;
        writeln!(
            f,
            "placement: {} promotions, {} demotions, churn {:.1}% of {} candidates",
            self.promotions,
            self.demotions,
            self.churn_fraction() * 100.0,
            self.promote_candidates
        )?;
        writeln!(f, "events by kind:")?;
        for (name, count) in &self.counts {
            writeln!(f, "  {name:<28} {count}")?;
        }
        if !self.decisions.is_empty() {
            writeln!(f, "policy decisions:")?;
            for ((policy, reason), count) in &self.decisions {
                writeln!(f, "  {policy}/{reason}: {count}")?;
            }
        }
        Ok(())
    }
}

/// Cumulative re-access distribution (Figure 11): `cdf[g-1]` = fraction of
/// observed re-accesses whose cold gap was ≤ `g` intervals.
pub fn reaccess_cdf(histogram: &[u64]) -> Vec<f64> {
    let total: u64 = histogram.iter().sum();
    let mut out = Vec::with_capacity(histogram.len());
    let mut acc = 0u64;
    for &c in histogram {
        acc += c;
        out.push(if total == 0 {
            0.0
        } else {
            acc as f64 / total as f64
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::PageSamples;
    use std::collections::HashMap;
    use tiered_mem::{PageKey, PageType, Pid, Vpn};

    fn samples(keys: &[(u64, PageType)]) -> HashMap<PageKey, PageSamples> {
        keys.iter()
            .map(|&(v, t)| {
                (
                    PageKey::new(Pid(1), Vpn(v)),
                    PageSamples {
                        loads: 1,
                        stores: 0,
                        page_type: Some(t),
                        last_ns: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn heatmap_classifies_hot_warm_cold() {
        let mut w = Worker::new();
        // Interval 0: pages 1 (anon) and 2 (file) active.
        w.process_interval(samples(&[(1, PageType::Anon), (2, PageType::File)]));
        // Interval 1: only page 1 active.
        w.process_interval(samples(&[(1, PageType::Anon)]));
        let map = Heatmap::from_worker(&w, 4);
        assert_eq!(map.hot_anon, 1);
        assert_eq!(map.warm_file, 1);
        assert_eq!(map.total(), 2);
        assert_eq!(map.hot_total(), 1);
        // With a 1-interval warm window, page 2 would look cold... but
        // warm_k=1 equals the hot test, so it degrades to cold.
        let tight = Heatmap::from_worker(&w, 1);
        assert_eq!(tight.cold_file, 1);
    }

    #[test]
    fn usage_series_tracks_shares() {
        let mut w = Worker::new();
        w.process_interval(samples(&[
            (1, PageType::Anon),
            (2, PageType::File),
            (3, PageType::File),
        ]));
        let mut series = UsageSeries::new();
        series.sample(1000, &w);
        assert_eq!(series.total_pages.values(), vec![3.0]);
        assert_eq!(series.hot_frac_1.values(), vec![1.0]);
        let share = series.anon_share.values()[0];
        assert!((share - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = reaccess_cdf(&[5, 0, 3, 2]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf[0] - 0.5).abs() < 1e-12);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn cdf_of_empty_histogram_is_zero() {
        assert_eq!(reaccess_cdf(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn trace_section_summarizes_records() {
        use tiered_mem::{NodeId, TraceEvent};
        let page = PageKey::new(Pid(1), Vpn(3));
        let records = vec![
            TraceRecord {
                ts_ns: 1_000_000_000,
                event: TraceEvent::Demote {
                    page,
                    from: NodeId(0),
                    to: NodeId(1),
                    page_type: PageType::Anon,
                },
            },
            TraceRecord {
                ts_ns: 2_000_000_000,
                event: TraceEvent::PromoteCandidate {
                    page,
                    demoted: true,
                },
            },
            TraceRecord {
                ts_ns: 3_000_000_000,
                event: TraceEvent::Decision {
                    policy: "tpp",
                    reason: "example",
                    page: None,
                },
            },
        ];
        let section = TraceSection::from_records("cache1", &records);
        assert_eq!(section.events(), 3);
        assert_eq!(section.count("demote"), 1);
        assert_eq!(section.count("missing"), 0);
        assert!((section.churn_fraction() - 1.0).abs() < 1e-12);
        let text = section.to_string();
        assert!(text.contains("Trace section: cache1"));
        assert!(text.contains("tpp/example: 1"));
        assert!(text.contains("events: 3 over 2.0s"));
    }

    #[test]
    fn text_report_renders_all_sections() {
        let profiler = crate::Chameleon::with_defaults();
        let report = TextReport::from_profiler("test-service", &profiler);
        let text = report.to_string();
        assert!(text.contains("test-service"));
        assert!(text.contains("tracked pages: 0"));
        assert!(text.contains("re-access cdf:"));
        assert!(text.contains("heatmap"));
    }
}
