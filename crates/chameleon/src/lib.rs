//! # chameleon
//!
//! A simulated reimplementation of **Chameleon**, the lightweight
//! user-space memory-characterization tool from *TPP: Transparent Page
//! Placement for CXL-Enabled Tiered Memory* (ASPLOS 2023, §3).
//!
//! Chameleon consists of a [`Collector`] that samples memory-access
//! "hardware events" (here: the simulator's resolved access stream) at a
//! configurable 1-in-N rate with core-group duty cycling, and a
//! [`Worker`] that folds each interval's samples into 64-bit per-page
//! activeness bitmaps. From those histories the crate computes the
//! paper's characterization artefacts: hotness per interval window
//! (Figure 7), per-type hotness (Figure 8), usage over time (Figure 9),
//! and re-access-interval CDFs (Figure 11).
//!
//! ## Example
//!
//! ```
//! use chameleon::{Chameleon, ChameleonConfig};
//! use tiered_mem::{NodeId, PageType, Pid, Vpn};
//! use tiered_sim::{Access, AccessKind, AccessObserver};
//!
//! let mut profiler = Chameleon::with_defaults();
//! let access = Access {
//!     pid: Pid(1),
//!     vpn: Vpn(42),
//!     kind: AccessKind::Load,
//!     page_type: PageType::Anon,
//! };
//! profiler.on_access(0, &access, NodeId(0));
//! assert!(profiler.collector().events_seen() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod collector;
mod profiler;
mod report;
mod worker;

pub use collector::{Collector, CollectorConfig, PageSamples};
pub use profiler::{Chameleon, ChameleonConfig};
pub use report::{reaccess_cdf, Heatmap, Temperature, TextReport, TraceSection, UsageSeries};
pub use worker::{PageHistory, Worker};
