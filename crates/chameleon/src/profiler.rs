//! The Chameleon façade: Collector + Worker wired to the simulated access
//! stream through [`AccessObserver`].
//!
//! Attach a [`Chameleon`] to a system run and it produces the paper's
//! characterization artefacts: per-interval hotness (Fig 7), per-type
//! hotness (Fig 8), usage over time (Fig 9), and the re-access-interval
//! CDF (Fig 11).

use tiered_mem::NodeId;
use tiered_sim::{Access, AccessObserver, Periodic, MINUTE};

use crate::collector::{Collector, CollectorConfig};
use crate::report::{reaccess_cdf, Heatmap, UsageSeries};
use crate::worker::Worker;

/// Chameleon configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChameleonConfig {
    /// Sampling front-end configuration.
    pub collector: CollectorConfig,
    /// Worker interval (paper default: 1 minute). Scale this down
    /// together with simulation time for small experiments.
    pub interval_ns: u64,
    /// Longest re-access gap (in intervals) tracked by the CDF.
    pub max_gap_intervals: u32,
}

impl Default for ChameleonConfig {
    fn default() -> ChameleonConfig {
        ChameleonConfig {
            collector: CollectorConfig::default(),
            interval_ns: MINUTE,
            max_gap_intervals: 16,
        }
    }
}

/// The user-space memory characterization tool, simulated.
#[derive(Clone, Debug)]
pub struct Chameleon {
    config: ChameleonConfig,
    collector: Collector,
    worker: Worker,
    interval: Periodic,
    series: UsageSeries,
    reaccess_hist: Vec<u64>,
}

impl Chameleon {
    /// Creates a profiler with the given configuration.
    pub fn new(config: ChameleonConfig) -> Chameleon {
        Chameleon {
            config,
            collector: Collector::new(config.collector),
            worker: Worker::new(),
            interval: Periodic::new(config.interval_ns),
            series: UsageSeries::new(),
            reaccess_hist: vec![0; config.max_gap_intervals as usize],
        }
    }

    /// A profiler with paper-default settings.
    pub fn with_defaults() -> Chameleon {
        Chameleon::new(ChameleonConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &ChameleonConfig {
        &self.config
    }

    /// The sampling front-end (for overhead statistics).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The history store (for custom queries).
    pub fn worker(&self) -> &Worker {
        &self.worker
    }

    /// Per-interval characterization series collected so far.
    pub fn series(&self) -> &UsageSeries {
        &self.series
    }

    /// Current heatmap with a `warm_k`-interval warm window.
    pub fn heatmap(&self, warm_k: u32) -> Heatmap {
        Heatmap::from_worker(&self.worker, warm_k)
    }

    /// Cumulative re-access CDF over all completed intervals (Figure 11);
    /// `cdf[g-1]` = fraction of re-accesses after a cold gap ≤ `g`
    /// intervals.
    pub fn reaccess_cdf(&self) -> Vec<f64> {
        reaccess_cdf(&self.reaccess_hist)
    }

    /// Intervals processed so far.
    pub fn intervals(&self) -> u32 {
        self.worker.intervals_processed()
    }

    /// Forces an interval boundary at `now_ns` (used at run teardown so a
    /// partial final interval still contributes).
    pub fn flush_interval(&mut self, now_ns: u64) {
        self.interval.reset(now_ns);
        let table = self.collector.take_interval();
        self.worker.process_interval(table);
        for (i, c) in self
            .worker
            .reaccess_histogram(self.config.max_gap_intervals)
            .into_iter()
            .enumerate()
        {
            self.reaccess_hist[i] += c;
        }
        self.series.sample(now_ns, &self.worker);
    }
}

impl AccessObserver for Chameleon {
    fn on_access(&mut self, now_ns: u64, access: &Access, _node: NodeId) {
        // Close out any elapsed interval first: an access at the boundary
        // belongs to the new interval.
        if self.interval.fire(now_ns) > 0 {
            self.flush_interval(now_ns);
        }
        self.collector.observe(now_ns, access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{PageType, Pid, Vpn};
    use tiered_sim::{AccessKind, SEC};

    fn fast_config() -> ChameleonConfig {
        ChameleonConfig {
            collector: CollectorConfig {
                sample_period: 1,
                cores: 4,
                core_groups: 1,
                mini_interval_ns: SEC,
            },
            interval_ns: SEC,
            max_gap_intervals: 8,
        }
    }

    fn touch(c: &mut Chameleon, now: u64, vpn: u64, t: PageType) {
        let a = Access {
            pid: Pid(1),
            vpn: Vpn(vpn),
            kind: AccessKind::Load,
            page_type: t,
        };
        c.on_access(now, &a, NodeId(0));
    }

    #[test]
    fn intervals_roll_over_with_time() {
        let mut c = Chameleon::new(fast_config());
        touch(&mut c, 100, 1, PageType::Anon);
        assert_eq!(c.intervals(), 0);
        touch(&mut c, SEC, 2, PageType::Anon); // crosses the boundary
        assert_eq!(c.intervals(), 1);
        assert_eq!(c.worker().tracked_pages(), 1); // page 1 only; 2 pending
        touch(&mut c, 2 * SEC, 3, PageType::Anon);
        assert_eq!(c.intervals(), 2);
        assert_eq!(c.worker().tracked_pages(), 2);
    }

    #[test]
    fn reaccess_cdf_accumulates_over_run() {
        let mut c = Chameleon::new(fast_config());
        // Page 5 hot in interval 0, cold for 2 intervals, hot again.
        touch(&mut c, 100, 5, PageType::File);
        c.flush_interval(SEC);
        c.flush_interval(2 * SEC);
        c.flush_interval(3 * SEC);
        touch(&mut c, 3 * SEC + 100, 5, PageType::File);
        c.flush_interval(4 * SEC);
        let cdf = c.reaccess_cdf();
        // Gap of 3 intervals: cdf below index 2 is 0, at and after is 1.
        assert_eq!(cdf[1], 0.0);
        assert_eq!(cdf[2], 1.0);
    }

    #[test]
    fn series_samples_once_per_interval() {
        let mut c = Chameleon::new(fast_config());
        for i in 0..5u64 {
            touch(&mut c, i * SEC / 2, 1, PageType::Anon);
        }
        assert_eq!(c.series().total_pages.len() as u32, c.intervals());
    }

    #[test]
    fn heatmap_reflects_recent_activity() {
        let mut c = Chameleon::new(fast_config());
        touch(&mut c, 0, 1, PageType::Anon);
        touch(&mut c, 1, 2, PageType::Tmpfs);
        c.flush_interval(SEC);
        let map = c.heatmap(4);
        assert_eq!(map.hot_anon, 1);
        assert_eq!(map.hot_file, 1);
    }
}
