//! The Chameleon Collector: PEBS-style sampling of the memory access
//! stream (paper §3.1).
//!
//! On real hardware the Collector programs the PMU to sample
//! `MEM_LOAD_RETIRED.L3_MISS` (loads) and `MEM_INST_RETIRED.ALL_STORES`
//! (stores), one record every `sample_period` events, duty-cycling across
//! core groups to bound overhead. Here the "PMU" is the simulator's
//! resolved access stream; the sampling maths are the same:
//!
//! * one sample per `sample_period` events (paper default: 200),
//! * cores are divided into groups; only one group is sampled per
//!   `mini_interval` (paper default: 5 s),
//! * samples land in one of two hash tables; the full one is handed to
//!   the Worker at each interval boundary (double buffering).

use std::collections::HashMap;

use tiered_mem::{PageKey, PageType};
use tiered_sim::{Access, AccessKind, SEC};

/// Collector configuration.
#[derive(Clone, Copy, Debug)]
pub struct CollectorConfig {
    /// Events per sample (1 in N). Paper default: 200.
    pub sample_period: u64,
    /// Number of simulated CPU cores.
    pub cores: u32,
    /// Number of duty-cycling core groups. Paper's Collector enables
    /// sampling on one group at a time.
    pub core_groups: u32,
    /// How long each group is sampled before rotating. Paper default: 5 s.
    pub mini_interval_ns: u64,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            sample_period: 200,
            cores: 32,
            core_groups: 4,
            mini_interval_ns: 5 * SEC,
        }
    }
}

/// Aggregated samples for one virtual page within one interval.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageSamples {
    /// Sampled demand loads.
    pub loads: u64,
    /// Sampled demand stores.
    pub stores: u64,
    /// Page type seen on the most recent sample.
    pub page_type: Option<PageType>,
    /// Time of the most recent sample.
    pub last_ns: u64,
}

impl PageSamples {
    /// Total sampled events.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }
}

/// The sampling front-end.
#[derive(Clone, Debug)]
pub struct Collector {
    config: CollectorConfig,
    event_counter: u64,
    sampled_events: u64,
    tables: [HashMap<PageKey, PageSamples>; 2],
    active: usize,
}

impl Collector {
    /// Creates a collector.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero or `core_groups > cores`.
    pub fn new(config: CollectorConfig) -> Collector {
        assert!(config.sample_period > 0, "sample_period must be positive");
        assert!(
            config.cores > 0 && config.core_groups > 0,
            "need cores and groups"
        );
        assert!(config.core_groups <= config.cores, "more groups than cores");
        assert!(
            config.mini_interval_ns > 0,
            "mini_interval must be positive"
        );
        Collector {
            config,
            event_counter: 0,
            sampled_events: 0,
            tables: [HashMap::new(), HashMap::new()],
            active: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// Total hardware events observed (sampled or not).
    pub fn events_seen(&self) -> u64 {
        self.event_counter
    }

    /// Total events actually sampled.
    pub fn events_sampled(&self) -> u64 {
        self.sampled_events
    }

    /// Observes one memory access event, possibly recording a sample.
    pub fn observe(&mut self, now_ns: u64, access: &Access) {
        self.event_counter += 1;
        // PMU overflow: every Nth event produces a PEBS record.
        if !self.event_counter.is_multiple_of(self.config.sample_period) {
            return;
        }
        // Duty cycling: the event fires on some core; only the currently
        // enabled core group is sampled. Core assignment is a
        // deterministic spread of events over cores.
        let core = (self.event_counter / self.config.sample_period) % self.config.cores as u64;
        let cores_per_group = (self.config.cores / self.config.core_groups).max(1);
        let group_of_core = (core / cores_per_group as u64) % self.config.core_groups as u64;
        let enabled_group =
            (now_ns / self.config.mini_interval_ns) % self.config.core_groups as u64;
        if group_of_core != enabled_group {
            return;
        }
        self.sampled_events += 1;
        let entry = self.tables[self.active]
            .entry(PageKey::new(access.pid, access.vpn))
            .or_default();
        match access.kind {
            AccessKind::Load => entry.loads += 1,
            AccessKind::Store => entry.stores += 1,
        }
        entry.page_type = Some(access.page_type);
        entry.last_ns = now_ns;
    }

    /// Swaps the double buffer and returns the finished interval's table
    /// (called by the Worker at each interval boundary).
    pub fn take_interval(&mut self) -> HashMap<PageKey, PageSamples> {
        let finished = self.active;
        self.active ^= 1;
        std::mem::take(&mut self.tables[finished])
    }

    /// Pages with samples in the currently filling table.
    pub fn pending_pages(&self) -> usize {
        self.tables[self.active].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{Pid, Vpn};

    fn access(vpn: u64, kind: AccessKind) -> Access {
        Access {
            pid: Pid(1),
            vpn: Vpn(vpn),
            kind,
            page_type: PageType::Anon,
        }
    }

    fn always_on() -> CollectorConfig {
        CollectorConfig {
            sample_period: 1,
            cores: 4,
            core_groups: 1,
            mini_interval_ns: SEC,
        }
    }

    #[test]
    fn sampling_rate_is_one_in_n() {
        let mut c = Collector::new(CollectorConfig {
            sample_period: 200,
            cores: 4,
            core_groups: 1, // no duty cycling
            mini_interval_ns: SEC,
        });
        for i in 0..200_000u64 {
            c.observe(0, &access(i % 64, AccessKind::Load));
        }
        assert_eq!(c.events_seen(), 200_000);
        assert_eq!(c.events_sampled(), 1000);
    }

    #[test]
    fn duty_cycling_reduces_samples_proportionally() {
        let make = |groups| {
            let mut c = Collector::new(CollectorConfig {
                sample_period: 10,
                cores: 8,
                core_groups: groups,
                mini_interval_ns: SEC,
            });
            for i in 0..100_000u64 {
                c.observe(0, &access(i % 64, AccessKind::Load));
            }
            c.events_sampled()
        };
        let full = make(1);
        let quarter = make(4);
        let ratio = quarter as f64 / full as f64;
        assert!((0.2..0.3).contains(&ratio), "duty-cycle ratio {ratio}");
    }

    #[test]
    fn group_rotation_follows_mini_interval() {
        let mut c = Collector::new(CollectorConfig {
            sample_period: 1,
            cores: 4,
            core_groups: 4,
            mini_interval_ns: 100,
        });
        // With 4 groups and period 1, the sampled core rotates with the
        // counter while the enabled group rotates with time; over many
        // mini-intervals every page gets sampled.
        for t in 0..400u64 {
            c.observe(t, &access(0, AccessKind::Load));
        }
        assert!(c.events_sampled() > 0);
        assert!(c.events_sampled() < 400);
    }

    #[test]
    fn loads_and_stores_counted_separately() {
        let mut c = Collector::new(always_on());
        c.observe(5, &access(7, AccessKind::Load));
        c.observe(6, &access(7, AccessKind::Load));
        c.observe(7, &access(7, AccessKind::Store));
        let table = c.take_interval();
        let s = table[&PageKey::new(Pid(1), Vpn(7))];
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.last_ns, 7);
        assert_eq!(s.page_type, Some(PageType::Anon));
    }

    #[test]
    fn double_buffering_isolates_intervals() {
        let mut c = Collector::new(always_on());
        c.observe(0, &access(1, AccessKind::Load));
        let first = c.take_interval();
        assert_eq!(first.len(), 1);
        assert_eq!(c.pending_pages(), 0);
        c.observe(1, &access(2, AccessKind::Load));
        let second = c.take_interval();
        assert!(second.contains_key(&PageKey::new(Pid(1), Vpn(2))));
        assert!(!second.contains_key(&PageKey::new(Pid(1), Vpn(1))));
    }

    #[test]
    #[should_panic(expected = "more groups than cores")]
    fn invalid_grouping_rejected() {
        Collector::new(CollectorConfig {
            sample_period: 1,
            cores: 2,
            core_groups: 4,
            mini_interval_ns: 1,
        });
    }
}
