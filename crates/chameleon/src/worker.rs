//! The Chameleon Worker: turns interval sample tables into per-page
//! activeness history (paper §3.1).
//!
//! For each page the Worker keeps a 64-bit bitmap; bit 0 is the most
//! recent interval. At every interval boundary all bitmaps shift left one
//! bit and sampled pages get bit 0 set — giving 64 intervals of history
//! per page, exactly as the paper describes.

use std::collections::HashMap;

use tiered_mem::{PageKey, PageType};

use crate::collector::PageSamples;

/// Per-page activeness history.
#[derive(Clone, Copy, Debug)]
pub struct PageHistory {
    /// Interval activeness bits; bit 0 = most recent interval.
    pub bitmap: u64,
    /// The page's type as of the latest sample.
    pub page_type: PageType,
    /// Interval index when the page was first observed.
    pub first_interval: u32,
    /// Lifetime sampled loads.
    pub loads: u64,
    /// Lifetime sampled stores.
    pub stores: u64,
}

impl PageHistory {
    /// Whether the page was active in any of the most recent `k`
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 64.
    pub fn active_within(&self, k: u32) -> bool {
        assert!((1..=64).contains(&k), "window {k} out of 1..=64");
        let mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        self.bitmap & mask != 0
    }

    /// Number of active intervals in the retained history.
    pub fn active_intervals(&self) -> u32 {
        self.bitmap.count_ones()
    }

    /// If the page just became active (bit 0 set, bit 1 clear), how many
    /// intervals it had been cold — `None` if it is not a fresh
    /// re-activation or was never active before.
    pub fn reaccess_gap(&self) -> Option<u32> {
        if self.bitmap & 1 == 0 || self.bitmap & 2 != 0 {
            return None;
        }
        let earlier = self.bitmap >> 1;
        if earlier == 0 {
            return None; // first activity ever observed
        }
        Some(earlier.trailing_zeros() + 1)
    }
}

/// The Worker: interval processing and history store.
#[derive(Clone, Debug)]
pub struct Worker {
    pages: HashMap<PageKey, PageHistory>,
    intervals: u32,
    /// Bits of history consumed per interval. 1 (the default) records
    /// activeness only; more bits record a saturating per-interval access
    /// frequency at the cost of shorter history (64 / bits intervals) —
    /// the paper's configurable trade-off (§3.1).
    bits_per_interval: u32,
}

impl Default for Worker {
    fn default() -> Worker {
        Worker::new()
    }
}

impl Worker {
    /// Creates an empty worker with 1 bit per interval (activeness only).
    pub fn new() -> Worker {
        Worker::with_bits(1)
    }

    /// Creates a worker recording `bits` per interval (1–8): each
    /// interval stores `min(samples, 2^bits - 1)` instead of a single
    /// activeness bit.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8`.
    pub fn with_bits(bits: u32) -> Worker {
        assert!(
            (1..=8).contains(&bits),
            "bits_per_interval {bits} out of 1..=8"
        );
        Worker {
            pages: HashMap::new(),
            intervals: 0,
            bits_per_interval: bits,
        }
    }

    /// Bits of history consumed per interval.
    pub fn bits_per_interval(&self) -> u32 {
        self.bits_per_interval
    }

    /// Number of intervals the 64-bit history can hold at this
    /// configuration.
    pub fn history_depth(&self) -> u32 {
        64 / self.bits_per_interval
    }

    /// Recorded access frequency of `key` in the most recent interval
    /// (saturated at `2^bits - 1`).
    pub fn last_interval_frequency(&self, key: PageKey) -> u64 {
        let mask = (1u64 << self.bits_per_interval) - 1;
        self.pages.get(&key).map_or(0, |h| h.bitmap & mask)
    }

    /// Number of intervals processed so far.
    pub fn intervals_processed(&self) -> u32 {
        self.intervals
    }

    /// Number of distinct pages ever observed.
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// Read-only access to a page's history.
    pub fn history(&self, key: PageKey) -> Option<&PageHistory> {
        self.pages.get(&key)
    }

    /// Iterates all `(page, history)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&PageKey, &PageHistory)> {
        self.pages.iter()
    }

    /// Forgets a page (e.g. freed by the workload) so stale entries don't
    /// distort hot-fraction denominators.
    pub fn forget(&mut self, key: PageKey) {
        self.pages.remove(&key);
    }

    /// Processes one interval's samples: shift every history left by
    /// `bits_per_interval` and record this interval's activity (a single
    /// bit, or a saturating sample count in frequency mode).
    pub fn process_interval(&mut self, samples: HashMap<PageKey, PageSamples>) {
        let bits = self.bits_per_interval;
        let cap = (1u64 << bits) - 1;
        for h in self.pages.values_mut() {
            h.bitmap <<= bits;
        }
        for (key, s) in samples {
            let entry = self.pages.entry(key).or_insert(PageHistory {
                bitmap: 0,
                page_type: s.page_type.unwrap_or(PageType::Anon),
                first_interval: self.intervals,
                loads: 0,
                stores: 0,
            });
            entry.bitmap |= s.total().clamp(1, cap);
            if let Some(t) = s.page_type {
                entry.page_type = t;
            }
            entry.loads += s.loads;
            entry.stores += s.stores;
        }
        self.intervals += 1;
    }

    /// Number of tracked pages (optionally restricted to one accounting
    /// class: `Some(true)` = anon, `Some(false)` = file) active within
    /// the last `k` intervals.
    ///
    /// Divide by a *resident-page* count from the system under test to
    /// get an unbiased hot fraction — the tracked-page denominator of
    /// [`Worker::hot_fraction`] only contains pages the sampler ever
    /// saw, which over-estimates hotness at sparse sampling rates.
    pub fn hot_pages(&self, k: u32, class: Option<bool>) -> u64 {
        let window_bits = (k * self.bits_per_interval).min(64);
        let mut hot = 0u64;
        for h in self.pages.values() {
            if let Some(want_anon) = class {
                if h.page_type.is_anon() != want_anon {
                    continue;
                }
            }
            if h.active_within(window_bits) {
                hot += 1;
            }
        }
        hot
    }

    /// Fraction of tracked pages (optionally restricted to one accounting
    /// class) active within the last `k` intervals — the Figure 7/8
    /// quantity, relative to pages the sampler has observed.
    pub fn hot_fraction(&self, k: u32, class: Option<bool>) -> f64 {
        let mut total = 0u64;
        let mut hot = 0u64;
        let window_bits = (k * self.bits_per_interval).min(64);
        for h in self.pages.values() {
            if let Some(want_anon) = class {
                if h.page_type.is_anon() != want_anon {
                    continue;
                }
            }
            total += 1;
            if h.active_within(window_bits) {
                hot += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hot as f64 / total as f64
        }
    }

    /// Count of tracked pages per accounting class `(anon, file)` — the
    /// Figure 9 usage split.
    pub fn usage_by_class(&self) -> (u64, u64) {
        let mut anon = 0;
        let mut file = 0;
        for h in self.pages.values() {
            if h.page_type.is_anon() {
                anon += 1;
            } else {
                file += 1;
            }
        }
        (anon, file)
    }

    /// Histogram of re-access gaps among pages that became active this
    /// interval: `out[g-1]` counts pages that had been cold for `g`
    /// intervals (Figure 11's raw data). `max_gap` bounds the histogram.
    pub fn reaccess_histogram(&self, max_gap: u32) -> Vec<u64> {
        let mut out = vec![0u64; max_gap as usize];
        for h in self.pages.values() {
            if let Some(gap) = h.reaccess_gap() {
                if gap <= max_gap {
                    out[(gap - 1) as usize] += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{Pid, Vpn};

    fn key(v: u64) -> PageKey {
        PageKey::new(Pid(1), Vpn(v))
    }

    fn samples(keys: &[(u64, PageType)]) -> HashMap<PageKey, PageSamples> {
        keys.iter()
            .map(|&(v, t)| {
                (
                    key(v),
                    PageSamples {
                        loads: 1,
                        stores: 0,
                        page_type: Some(t),
                        last_ns: 0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn bitmap_shifts_each_interval() {
        let mut w = Worker::new();
        w.process_interval(samples(&[(1, PageType::Anon)]));
        w.process_interval(HashMap::new());
        w.process_interval(HashMap::new());
        let h = w.history(key(1)).unwrap();
        assert_eq!(h.bitmap, 0b100);
        assert!(!h.active_within(2));
        assert!(h.active_within(3));
        assert_eq!(h.active_intervals(), 1);
    }

    #[test]
    fn hot_fraction_by_class() {
        let mut w = Worker::new();
        w.process_interval(samples(&[
            (1, PageType::Anon),
            (2, PageType::Anon),
            (3, PageType::File),
        ]));
        // Next interval only page 1 is hot.
        w.process_interval(samples(&[(1, PageType::Anon)]));
        assert_eq!(w.hot_fraction(1, Some(true)), 0.5); // 1 of 2 anon
        assert_eq!(w.hot_fraction(1, Some(false)), 0.0);
        assert_eq!(w.hot_fraction(2, None), 1.0); // all active within 2
    }

    #[test]
    fn reaccess_gap_detects_cold_period() {
        let mut w = Worker::new();
        w.process_interval(samples(&[(7, PageType::File)])); // active
        w.process_interval(HashMap::new()); // cold
        w.process_interval(HashMap::new()); // cold
        w.process_interval(samples(&[(7, PageType::File)])); // re-accessed
        let h = w.history(key(7)).unwrap();
        assert_eq!(h.bitmap, 0b1001);
        assert_eq!(h.reaccess_gap(), Some(3));
        let hist = w.reaccess_histogram(8);
        assert_eq!(hist[2], 1);
        assert_eq!(hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn continuously_hot_page_is_not_a_reaccess() {
        let mut w = Worker::new();
        w.process_interval(samples(&[(7, PageType::Anon)]));
        w.process_interval(samples(&[(7, PageType::Anon)]));
        assert_eq!(w.history(key(7)).unwrap().reaccess_gap(), None);
    }

    #[test]
    fn first_ever_activity_is_not_a_reaccess() {
        let mut w = Worker::new();
        w.process_interval(HashMap::new());
        w.process_interval(samples(&[(9, PageType::Anon)]));
        assert_eq!(w.history(key(9)).unwrap().reaccess_gap(), None);
    }

    #[test]
    fn usage_split_counts_types() {
        let mut w = Worker::new();
        w.process_interval(samples(&[
            (1, PageType::Anon),
            (2, PageType::Tmpfs),
            (3, PageType::File),
        ]));
        assert_eq!(w.usage_by_class(), (1, 2));
    }

    #[test]
    fn forget_removes_page() {
        let mut w = Worker::new();
        w.process_interval(samples(&[(1, PageType::Anon)]));
        assert_eq!(w.tracked_pages(), 1);
        w.forget(key(1));
        assert_eq!(w.tracked_pages(), 0);
        assert_eq!(w.hot_fraction(1, None), 0.0);
    }

    #[test]
    fn frequency_mode_records_sample_counts() {
        let mut w = Worker::with_bits(4);
        assert_eq!(w.history_depth(), 16);
        let mut s = HashMap::new();
        s.insert(
            key(1),
            PageSamples {
                loads: 9,
                stores: 2,
                page_type: Some(PageType::Anon),
                last_ns: 0,
            },
        );
        w.process_interval(s);
        assert_eq!(w.last_interval_frequency(key(1)), 11);
        // Saturation at 2^4 - 1.
        let mut s = HashMap::new();
        s.insert(
            key(1),
            PageSamples {
                loads: 99,
                stores: 0,
                page_type: Some(PageType::Anon),
                last_ns: 0,
            },
        );
        w.process_interval(s);
        assert_eq!(w.last_interval_frequency(key(1)), 15);
        // Hot within 2 intervals still works with wide slots.
        assert_eq!(w.hot_fraction(2, None), 1.0);
        // After two empty intervals the page is cold within 2.
        w.process_interval(HashMap::new());
        w.process_interval(HashMap::new());
        assert_eq!(w.hot_fraction(2, None), 0.0);
        assert_eq!(w.hot_fraction(4, None), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of 1..=8")]
    fn invalid_bit_width_rejected() {
        Worker::with_bits(9);
    }

    #[test]
    fn history_survives_64_interval_window() {
        let mut w = Worker::new();
        w.process_interval(samples(&[(1, PageType::Anon)]));
        for _ in 0..63 {
            w.process_interval(HashMap::new());
        }
        let h = w.history(key(1)).unwrap();
        assert!(h.active_within(64));
        // One more shift and the bit falls off the end.
        w.process_interval(HashMap::new());
        assert!(!w.history(key(1)).unwrap().active_within(64));
    }
}
