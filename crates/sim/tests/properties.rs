//! Property-style tests for the simulation engine's arithmetic, driven
//! by seeded [`SimRng`] loops (no external proptest dependency).

use tiered_sim::{LogHistogram, Periodic, SimRng, TimeSeries};

/// A Periodic timer fired at arbitrary increasing instants reports
/// exactly `floor(t / period)` total fires — no deadline is ever
/// skipped or double-counted.
#[test]
fn periodic_conserves_fires() {
    let mut rng = SimRng::seed(0x9E21);
    for case in 0..64u64 {
        let period = rng.range(1..1_000);
        let mut timer = Periodic::new(period);
        let mut now = 0u64;
        let mut fired = 0u64;
        let steps = rng.range(1..50);
        for _ in 0..steps {
            now += rng.range(0..10_000);
            fired += timer.fire(now) as u64;
        }
        assert_eq!(fired, now / period, "case {case} period {period}");
    }
}

/// LogHistogram percentiles are monotone in q, bounded by the max,
/// and the p100 equals the exact maximum.
#[test]
fn log_histogram_percentiles_are_sane() {
    let mut rng = SimRng::seed(0x6157);
    for case in 0..64u64 {
        let len = rng.range(1..300);
        let values: Vec<u64> = (0..len).map(|_| rng.range(1..1_000_000_000)).collect();
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let max = *values.iter().max().unwrap();
        assert_eq!(h.max(), max, "case {case}");
        assert_eq!(h.percentile(1.0), max);
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p >= prev, "percentile not monotone at q={q}");
            assert!(p <= max);
            prev = p;
        }
        // The mean is within the value range.
        let mean = h.mean();
        assert!(mean >= 1.0 && mean <= max as f64);
    }
}

/// TimeSeries aggregate functions agree with naive recomputation.
#[test]
fn time_series_aggregates_match_naive() {
    let mut rng = SimRng::seed(0x7135);
    for case in 0..64u64 {
        let len = rng.range(1..100);
        let values: Vec<f64> = (0..len).map(|_| (rng.f64() - 0.5) * 2e6).collect();
        let mut ts = TimeSeries::new("t");
        for (i, &v) in values.iter().enumerate() {
            ts.record(i as u64, v);
        }
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(
            (ts.mean().unwrap() - naive_mean).abs() < 1e-6,
            "case {case}"
        );
        let naive_max = values.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(ts.max().unwrap(), naive_max);
        let naive_min = values.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(ts.min().unwrap(), naive_min);
        // Percentile 1.0 is the max, 0.0 is the min.
        assert_eq!(ts.percentile(1.0).unwrap(), naive_max);
        assert_eq!(ts.percentile(0.0).unwrap(), naive_min);
    }
}

/// Trace text serialisation round-trips for arbitrary records.
#[test]
fn trace_text_round_trips() {
    use tiered_mem::{PageType, Pid, Vpn};
    use tiered_sim::{Access, AccessKind, AccessObserver, Trace, TraceRecorder};
    let mut rng = SimRng::seed(0x7247);
    for case in 0..32u64 {
        let len = rng.range(0..50);
        let mut records: Vec<(u64, u32, u64, bool, u8)> = (0..len)
            .map(|_| {
                (
                    rng.range(0..u64::MAX / 2),
                    rng.range(0..1_000) as u32,
                    rng.range(0..u64::MAX / 2),
                    rng.chance(0.5),
                    rng.range(0..3) as u8,
                )
            })
            .collect();
        records.sort_by_key(|r| r.0);
        let mut rec = TraceRecorder::new();
        for (t, pid, vpn, store, ty) in records {
            let access = Access {
                pid: Pid(pid),
                vpn: Vpn(vpn),
                kind: if store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                page_type: match ty {
                    0 => PageType::Anon,
                    1 => PageType::File,
                    _ => PageType::Tmpfs,
                },
            };
            rec.on_access(t, &access, tiered_mem::NodeId(0));
        }
        let trace = rec.into_trace();
        let parsed: Trace = trace.to_text().parse().unwrap();
        assert_eq!(parsed, trace, "case {case}");
    }
}
