//! Property-based tests for the simulation engine's arithmetic.

use proptest::prelude::*;

use tiered_sim::{LogHistogram, Periodic, TimeSeries};

proptest! {
    /// A Periodic timer fired at arbitrary increasing instants reports
    /// exactly `floor(t / period)` total fires — no deadline is ever
    /// skipped or double-counted.
    #[test]
    fn periodic_conserves_fires(
        period in 1u64..1_000,
        steps in prop::collection::vec(0u64..10_000, 1..50),
    ) {
        let mut timer = Periodic::new(period);
        let mut now = 0u64;
        let mut fired = 0u64;
        for s in steps {
            now += s;
            fired += timer.fire(now) as u64;
        }
        prop_assert_eq!(fired, now / period);
    }

    /// LogHistogram percentiles are monotone in q, bounded by the max,
    /// and the p100 equals the exact maximum.
    #[test]
    fn log_histogram_percentiles_are_sane(
        values in prop::collection::vec(1u64..1_000_000_000, 1..300),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(h.max(), max);
        prop_assert_eq!(h.percentile(1.0), max);
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            prop_assert!(p >= prev, "percentile not monotone at q={q}");
            prop_assert!(p <= max);
            prev = p;
        }
        // The mean is within the value range.
        let mean = h.mean();
        prop_assert!(mean >= 1.0 && mean <= max as f64);
    }

    /// TimeSeries aggregate functions agree with naive recomputation.
    #[test]
    fn time_series_aggregates_match_naive(
        values in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut ts = TimeSeries::new("t");
        for (i, &v) in values.iter().enumerate() {
            ts.record(i as u64, v);
        }
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((ts.mean().unwrap() - naive_mean).abs() < 1e-6);
        let naive_max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(ts.max().unwrap(), naive_max);
        let naive_min = values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert_eq!(ts.min().unwrap(), naive_min);
        // Percentile 1.0 is the max, 0.0 is the min.
        prop_assert_eq!(ts.percentile(1.0).unwrap(), naive_max);
        prop_assert_eq!(ts.percentile(0.0).unwrap(), naive_min);
    }

    /// Trace text serialisation round-trips for arbitrary records.
    #[test]
    fn trace_text_round_trips(
        records in prop::collection::vec(
            (0u64..u64::MAX / 2, 0u32..1_000, 0u64..u64::MAX / 2, any::<bool>(), 0u8..3),
            0..50,
        ),
    ) {
        use tiered_mem::{PageType, Pid, Vpn};
        use tiered_sim::{Access, AccessKind, AccessObserver, Trace, TraceRecorder};
        let mut sorted = records;
        sorted.sort_by_key(|r| r.0);
        let mut rec = TraceRecorder::new();
        for (t, pid, vpn, store, ty) in sorted {
            let access = Access {
                pid: Pid(pid),
                vpn: Vpn(vpn),
                kind: if store { AccessKind::Store } else { AccessKind::Load },
                page_type: match ty {
                    0 => PageType::Anon,
                    1 => PageType::File,
                    _ => PageType::Tmpfs,
                },
            };
            rec.on_access(t, &access, tiered_mem::NodeId(0));
        }
        let trace = rec.into_trace();
        let parsed: Trace = trace.to_text().parse().unwrap();
        prop_assert_eq!(parsed, trace);
    }
}
