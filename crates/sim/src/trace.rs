//! Access traces: the interface between workload generators, the system
//! runner, and observers such as the Chameleon profiler.

use tiered_mem::{NodeId, PageType, Pid, Vpn};

use crate::rng::SimRng;

/// Load vs. store, mirroring the PEBS events Chameleon samples
/// (`MEM_LOAD_RETIRED.L3_MISS` for loads, TLB store misses for stores).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store.
    Store,
}

/// One memory access issued by a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// The accessing process.
    pub pid: Pid,
    /// The virtual page touched.
    pub vpn: Vpn,
    /// Load or store.
    pub kind: AccessKind,
    /// The page type to materialise on a first-touch fault.
    pub page_type: PageType,
}

/// One event produced by a workload generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadEvent {
    /// Touch a page (faulting it in if needed).
    Access(Access),
    /// Free a page (process-driven deallocation, e.g. short-lived request
    /// state or discarded intermediate data).
    Free {
        /// Owning process.
        pid: Pid,
        /// Virtual page to release.
        vpn: Vpn,
    },
}

/// One application-level operation: a CPU burst plus the memory accesses
/// performed during it.
///
/// Throughput is defined as completed ops per simulated second; every
/// access latency adds to the op's duration, which is how page placement
/// feeds back into application performance.
#[derive(Clone, Debug)]
pub struct Op {
    /// Pure CPU time of the op, excluding memory stalls.
    pub cpu_ns: u64,
    /// Events performed during the op, in order.
    pub events: Vec<WorkloadEvent>,
}

impl Op {
    /// An op with no memory events (pure compute).
    pub fn compute(cpu_ns: u64) -> Op {
        Op {
            cpu_ns,
            events: Vec::new(),
        }
    }

    /// Number of page accesses in this op.
    pub fn access_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, WorkloadEvent::Access(_)))
            .count()
    }
}

/// A workload generator: the synthetic stand-in for the paper's production
/// services.
///
/// Implementations are deterministic functions of `(now_ns, rng)`; the
/// runner drives them op by op.
pub trait Workload {
    /// Human-readable workload name (e.g. `"web"`, `"cache1"`).
    fn name(&self) -> &str;

    /// The process this workload runs as.
    fn pid(&self) -> Pid;

    /// Produces the next operation.
    fn next_op(&mut self, now_ns: u64, rng: &mut SimRng) -> Op;

    /// Approximate total working-set size in pages (used to size
    /// machines for ratio configurations such as 2:1 and 1:4).
    fn working_set_pages(&self) -> u64;
}

/// Observer of the resolved access stream (after placement): each access
/// is reported with the node that actually served it.
///
/// The Chameleon profiler implements this; so do the traffic recorders
/// behind the paper's figures.
pub trait AccessObserver {
    /// Called once per access with the serving node.
    fn on_access(&mut self, now_ns: u64, access: &Access, node: NodeId);
}

/// A no-op observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl AccessObserver for NullObserver {
    fn on_access(&mut self, _now_ns: u64, _access: &Access, _node: NodeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_access_count_ignores_frees() {
        let a = Access {
            pid: Pid(1),
            vpn: Vpn(0),
            kind: AccessKind::Load,
            page_type: PageType::Anon,
        };
        let op = Op {
            cpu_ns: 100,
            events: vec![
                WorkloadEvent::Access(a),
                WorkloadEvent::Free {
                    pid: Pid(1),
                    vpn: Vpn(3),
                },
                WorkloadEvent::Access(a),
            ],
        };
        assert_eq!(op.access_count(), 2);
    }

    #[test]
    fn compute_op_is_empty() {
        let op = Op::compute(500);
        assert_eq!(op.cpu_ns, 500);
        assert_eq!(op.access_count(), 0);
        assert!(op.events.is_empty());
    }

    #[test]
    fn null_observer_is_callable() {
        let mut obs = NullObserver;
        let a = Access {
            pid: Pid(1),
            vpn: Vpn(9),
            kind: AccessKind::Store,
            page_type: PageType::File,
        };
        obs.on_access(0, &a, NodeId(0));
    }
}
