//! Access-trace recording and replay.
//!
//! A [`TraceRecorder`] captures the resolved access stream of a run (it
//! is an [`AccessObserver`], like the Chameleon profiler); the resulting
//! [`Trace`] can be saved, inspected, and replayed as a [`Workload`] —
//! which makes cross-policy comparisons possible on *identical* access
//! sequences, and lets experiments be re-run from captured traffic
//! instead of generators.

use std::fmt::Write as _;
use std::str::FromStr;

use tiered_mem::{NodeId, PageType, Pid, Vpn};

use crate::rng::SimRng;
use crate::trace::{Access, AccessKind, AccessObserver, Op, Workload, WorkloadEvent};

/// One recorded access with its timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// When the access happened.
    pub now_ns: u64,
    /// The access itself.
    pub access: Access,
}

/// A captured access trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in capture order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Duration covered by the trace.
    pub fn duration_ns(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.now_ns - a.now_ns,
            _ => 0,
        }
    }

    /// Serialises to a compact line format:
    /// `now_ns pid vpn L|S a|f|t` per record.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 24);
        for r in &self.records {
            let kind = match r.access.kind {
                AccessKind::Load => 'L',
                AccessKind::Store => 'S',
            };
            let ty = match r.access.page_type {
                PageType::Anon => 'a',
                PageType::File => 'f',
                PageType::Tmpfs => 't',
            };
            let _ = writeln!(
                out,
                "{} {} {} {kind} {ty}",
                r.now_ns, r.access.pid.0, r.access.vpn.0
            );
        }
        out
    }
}

/// Parse error for the trace text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the malformed record.
    pub line: usize,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace record on line {}", self.line)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Trace, ParseTraceError> {
        let mut records = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = || ParseTraceError { line: i + 1 };
            let mut parts = line.split_whitespace();
            let now_ns: u64 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let pid: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let vpn: u64 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let kind = match parts.next().ok_or_else(err)? {
                "L" => AccessKind::Load,
                "S" => AccessKind::Store,
                _ => return Err(err()),
            };
            let page_type = match parts.next().ok_or_else(err)? {
                "a" => PageType::Anon,
                "f" => PageType::File,
                "t" => PageType::Tmpfs,
                _ => return Err(err()),
            };
            if parts.next().is_some() {
                return Err(err());
            }
            records.push(TraceRecord {
                now_ns,
                access: Access {
                    pid: Pid(pid),
                    vpn: Vpn(vpn),
                    kind,
                    page_type,
                },
            });
        }
        Ok(Trace { records })
    }
}

/// Records every observed access into a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    trace: Trace,
    limit: Option<usize>,
}

impl TraceRecorder {
    /// An unbounded recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// A recorder that stops capturing after `limit` accesses (the run
    /// continues; excess accesses are simply not recorded).
    pub fn with_limit(limit: usize) -> TraceRecorder {
        TraceRecorder {
            trace: Trace::new(),
            limit: Some(limit),
        }
    }

    /// Consumes the recorder, returning the captured trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The trace captured so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl AccessObserver for TraceRecorder {
    fn on_access(&mut self, now_ns: u64, access: &Access, _node: NodeId) {
        if let Some(limit) = self.limit {
            if self.trace.records.len() >= limit {
                return;
            }
        }
        self.trace.records.push(TraceRecord {
            now_ns,
            access: *access,
        });
    }
}

/// Replays a [`Trace`] as a [`Workload`].
///
/// Records are grouped into ops of `accesses_per_op`; each op's CPU time
/// is the recorded timestamp span of its accesses, so the replay's
/// *demand* pacing approximates the original run (actual timing still
/// depends on the placement it gets).
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    trace: Trace,
    pid: Pid,
    accesses_per_op: usize,
    cursor: usize,
    name: String,
}

impl TraceWorkload {
    /// Creates a replay workload from a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `accesses_per_op` is zero.
    pub fn new(trace: Trace, accesses_per_op: usize) -> TraceWorkload {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        assert!(accesses_per_op > 0, "accesses_per_op must be positive");
        let pid = trace.records[0].access.pid;
        TraceWorkload {
            trace,
            pid,
            accesses_per_op,
            cursor: 0,
            name: "trace-replay".to_string(),
        }
    }

    /// Whether the replay has wrapped at least once.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn pid(&self) -> Pid {
        self.pid
    }

    fn next_op(&mut self, _now_ns: u64, _rng: &mut SimRng) -> Op {
        let n = self.trace.records.len();
        let mut events = Vec::with_capacity(self.accesses_per_op);
        let start_ts = self.trace.records[self.cursor % n].now_ns;
        let mut end_ts = start_ts;
        for _ in 0..self.accesses_per_op {
            let r = self.trace.records[self.cursor % n];
            self.cursor += 1;
            // Wrapped around: timestamps restart, close the op here.
            if r.now_ns < end_ts {
                self.cursor -= 1;
                break;
            }
            end_ts = r.now_ns;
            events.push(WorkloadEvent::Access(r.access));
        }
        if events.is_empty() {
            // At a wrap boundary: emit the first record fresh.
            self.cursor %= n;
            let r = self.trace.records[self.cursor];
            self.cursor += 1;
            events.push(WorkloadEvent::Access(r.access));
            end_ts = start_ts;
        }
        Op {
            cpu_ns: (end_ts - start_ts).max(1_000),
            events,
        }
    }

    fn working_set_pages(&self) -> u64 {
        let mut vpns: Vec<u64> = self.trace.records.iter().map(|r| r.access.vpn.0).collect();
        vpns.sort_unstable();
        vpns.dedup();
        vpns.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u64, vpn: u64, kind: AccessKind) -> TraceRecord {
        TraceRecord {
            now_ns: t,
            access: Access {
                pid: Pid(1),
                vpn: Vpn(vpn),
                kind,
                page_type: PageType::Anon,
            },
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.records = vec![
            record(100, 1, AccessKind::Load),
            record(200, 2, AccessKind::Store),
            record(350, 1, AccessKind::Load),
            record(500, 3, AccessKind::Load),
        ];
        t
    }

    #[test]
    fn recorder_captures_in_order() {
        let mut rec = TraceRecorder::new();
        for r in sample_trace().records() {
            rec.on_access(r.now_ns, &r.access, NodeId(0));
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.duration_ns(), 400);
        assert_eq!(trace.records()[1].access.vpn, Vpn(2));
    }

    #[test]
    fn recorder_limit_truncates() {
        let mut rec = TraceRecorder::with_limit(2);
        for r in sample_trace().records() {
            rec.on_access(r.now_ns, &r.access, NodeId(0));
        }
        assert_eq!(rec.trace().len(), 2);
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let trace = sample_trace();
        let text = trace.to_text();
        let parsed: Trace = text.parse().unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = "100 1 2 L a\nnot a record\n".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 2);
        let err = "100 1 2 X a".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 1);
        let err = "100 1 2 L a extra".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn parse_skips_blank_lines() {
        let parsed: Trace = "\n100 1 2 L a\n\n".parse().unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn replay_preserves_access_order_and_pacing() {
        let mut w = TraceWorkload::new(sample_trace(), 2);
        let mut rng = SimRng::seed(1);
        let op1 = w.next_op(0, &mut rng);
        assert_eq!(op1.access_count(), 2);
        // Recorded span is 100 ns (200 - 100); the 1 µs op floor applies.
        assert_eq!(op1.cpu_ns, 1_000);
        let op2 = w.next_op(0, &mut rng);
        assert_eq!(op2.access_count(), 2);
        assert_eq!(op2.cpu_ns, 1_000); // span 150 ns, floored
                                       // Wraps around and keeps going.
        let op3 = w.next_op(0, &mut rng);
        assert!(op3.access_count() >= 1);
    }

    #[test]
    fn replay_working_set_counts_unique_pages() {
        let w = TraceWorkload::new(sample_trace(), 2);
        assert_eq!(w.working_set_pages(), 3);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        TraceWorkload::new(Trace::new(), 4);
    }
}
