//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour (workload sampling, duty-cycling, jitter)
//! flows through [`SimRng`], seeded explicitly, so every experiment is
//! exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable deterministic RNG with simulation-friendly helpers.
///
/// # Examples
///
/// ```
/// use tiered_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.range(0..100), b.range(0..100));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng(StdRng);

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> SimRng {
        SimRng(StdRng::seed_from_u64(seed))
    }

    /// Derives an independent child RNG (for per-component streams that
    /// must not perturb each other's sequences).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed(self.0.gen())
    }

    /// Uniform sample from `range`.
    pub fn range(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.0.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.range(0..items.len() as u64) as usize;
        &items[i]
    }

    /// Samples an index in `[0, weights.len())` proportionally to
    /// `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.range(0..1_000_000), b.range(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.range(0..u64::MAX) == b.range(0..u64::MAX)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed(9);
        let mut b = SimRng::seed(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.range(0..1000), fb.range(0..1000));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(3);
        for _ in 0..50 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.1));
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = SimRng::seed(11);
        for _ in 0..200 {
            let i = rng.weighted_index(&[0.0, 5.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_index_roughly_proportional() {
        let mut rng = SimRng::seed(13);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "frac={frac}");
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::seed(5);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
