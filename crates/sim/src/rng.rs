//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour (workload sampling, duty-cycling, jitter)
//! flows through [`SimRng`], seeded explicitly, so every experiment is
//! exactly reproducible.
//!
//! The generator is a hand-rolled xoshiro256** seeded via SplitMix64
//! (the reference seeding procedure), so the crate has no external
//! dependencies and the stream is stable across toolchains.

/// A seedable deterministic RNG with simulation-friendly helpers.
///
/// # Examples
///
/// ```
/// use tiered_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.range(0..100), b.range(0..100));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step — used only to expand the 64-bit seed into the
/// 256-bit xoshiro state (never produces the output stream itself).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> SimRng {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent child RNG (for per-component streams that
    /// must not perturb each other's sequences).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed(self.next_u64())
    }

    /// Draws one raw 64-bit value from the stream.
    ///
    /// Consumes exactly one generator step — the same amount as one
    /// [`SimRng::f64`] call — so samplers built on either primitive keep
    /// downstream draws at identical stream positions.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// The core xoshiro256** step: full-period 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `range`.
    ///
    /// Uses rejection sampling (Lemire-style threshold) so the result is
    /// exactly uniform over the span, not merely modulo-reduced.
    pub fn range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = range.end - range.start;
        if span == 1 {
            return range.start;
        }
        // Reject draws from the tail that would bias `% span`.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return range.start + x % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → the maximum precision an f64 mantissa can hold.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.range(0..items.len() as u64) as usize;
        &items[i]
    }

    /// Samples an index in `[0, weights.len())` proportionally to
    /// `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.range(0..1_000_000), b.range(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32)
            .filter(|_| a.range(0..u64::MAX) == b.range(0..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed(9);
        let mut b = SimRng::seed(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.range(0..1000), fb.range(0..1000));
    }

    #[test]
    fn raw_u64_and_f64_consume_one_step_each() {
        // `u64()` and `f64()` must stay interchangeable in stream cost:
        // one generator step per call.
        let mut a = SimRng::seed(31);
        let mut b = SimRng::seed(31);
        let _ = a.u64();
        let _ = b.f64();
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(3);
        for _ in 0..50 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.1));
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SimRng::seed(17);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn range_covers_small_spans_uniformly() {
        let mut rng = SimRng::seed(23);
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            counts[rng.range(0..4) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_700..2_300).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = SimRng::seed(11);
        for _ in 0..200 {
            let i = rng.weighted_index(&[0.0, 5.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_index_roughly_proportional() {
        let mut rng = SimRng::seed(13);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "frac={frac}");
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::seed(5);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
