//! The latency/cost model of the simulated machine (paper Figure 2).
//!
//! Per-tier *access* latency lives on each [`tiered_mem::MemoryNode`];
//! this module carries the costs of memory-management *operations* —
//! faults, migrations, swap I/O — whose relative magnitudes drive every
//! result in the paper:
//!
//! * migrating a page to a CXL node is **orders of magnitude cheaper**
//!   than paging it out to a swap device (§5.1: TPP's reclaim is ~44×
//!   faster than default Linux's),
//! * a NUMA hint fault is a minor fault (~1 µs), tolerable at CXL-node
//!   sampling rates but pure overhead when local nodes are sampled too.

use tiered_mem::{Memory, NodeId};

/// Costs (in nanoseconds) of memory-management operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Handling a first-touch minor page fault.
    pub minor_fault_ns: u64,
    /// Handling a NUMA hint (PROT_NONE) minor fault.
    pub hint_fault_ns: u64,
    /// Handling a major fault *excluding* the swap-device read.
    pub major_fault_ns: u64,
    /// Reading one page back from the swap device.
    pub swap_in_page_ns: u64,
    /// Writing one page out to the swap device (reclaim page-out path).
    pub swap_out_page_ns: u64,
    /// Migrating one page between memory nodes (copy + PTE fix-up).
    pub migrate_page_ns: u64,
    /// Scanning one page during LRU reclaim scan.
    pub scan_page_ns: u64,
    /// Installing one NUMA hint PTE during sampling.
    pub pte_update_ns: u64,
    /// How many cache-line misses one workload-level page access stands
    /// for. Datacenter services are memory-bound: a single logical
    /// "touch" of a hot page corresponds to a burst of LLC misses, so the
    /// per-access stall charged to the op is `node_latency ×
    /// access_bundle`. This is the knob that makes tier placement matter
    /// to throughput at the paper's magnitude (all-CXL ≈ 20–25% slower).
    pub access_bundle: u64,
}

impl LatencyModel {
    /// The default model used across the evaluation.
    ///
    /// Swap-out at ~130 µs/page vs. migration at ~3 µs/page yields the
    /// ~44× reclaim-rate gap the paper measures between default Linux and
    /// TPP — as an emergent consequence of device speeds, not a constant.
    pub fn datacenter() -> LatencyModel {
        LatencyModel {
            minor_fault_ns: 1_500,
            hint_fault_ns: 1_200,
            major_fault_ns: 4_000,
            swap_in_page_ns: 90_000,
            swap_out_page_ns: 130_000,
            migrate_page_ns: 3_000,
            scan_page_ns: 120,
            pte_update_ns: 150,
            access_bundle: 16,
        }
    }

    /// Effective major-fault cost (handler + device read).
    #[inline]
    pub fn swap_in_total_ns(&self) -> u64 {
        self.major_fault_ns + self.swap_in_page_ns
    }

    /// How many pages a reclaimer can page out within `budget_ns`.
    #[inline]
    pub fn swap_out_budget_pages(&self, budget_ns: u64) -> u64 {
        budget_ns / (self.swap_out_page_ns + self.scan_page_ns)
    }

    /// How many pages a demotion daemon can migrate within `budget_ns`.
    #[inline]
    pub fn migrate_budget_pages(&self, budget_ns: u64) -> u64 {
        budget_ns / (self.migrate_page_ns + self.scan_page_ns)
    }

    /// Cost of migrating one page over a path of `hops` link hops
    /// (`tiered_mem::Memory::migrate_hops`): the copy is re-driven once
    /// per hop, so a switch-attached pool pays proportionally more.
    /// `hops <= 1` is exactly [`LatencyModel::migrate_page_ns`].
    #[inline]
    pub fn migrate_cost_ns(&self, hops: u32) -> u64 {
        self.migrate_page_ns * hops.max(1) as u64
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::datacenter()
    }
}

/// Reads the access latency for `node` out of the machine description.
///
/// Thin helper so call sites don't repeat the node lookup.
#[inline]
pub fn access_latency_ns(memory: &Memory, node: NodeId) -> u64 {
    memory.node(node).latency_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::NodeKind;

    #[test]
    fn migration_is_much_cheaper_than_swap() {
        let m = LatencyModel::datacenter();
        let ratio = m.swap_out_page_ns as f64 / m.migrate_page_ns as f64;
        // The paper reports TPP reclaiming ~44x faster than default Linux.
        assert!((30.0..60.0).contains(&ratio), "swap/migrate ratio {ratio}");
    }

    #[test]
    fn budget_helpers_scale_linearly() {
        let m = LatencyModel::datacenter();
        let one_ms = 1_000_000;
        assert!(m.migrate_budget_pages(one_ms) > m.swap_out_budget_pages(one_ms) * 20);
        assert_eq!(m.migrate_budget_pages(0), 0);
    }

    #[test]
    fn access_latency_reads_node_config() {
        let mem = Memory::builder()
            .node(NodeKind::LocalDram, 16)
            .node_with_latency(NodeKind::Cxl, 16, 250)
            .build();
        assert_eq!(access_latency_ns(&mem, NodeId(0)), 100);
        assert_eq!(access_latency_ns(&mem, NodeId(1)), 250);
    }

    #[test]
    fn default_is_datacenter() {
        assert_eq!(LatencyModel::default(), LatencyModel::datacenter());
    }

    #[test]
    fn migrate_cost_scales_with_hops() {
        let m = LatencyModel::datacenter();
        assert_eq!(m.migrate_cost_ns(0), m.migrate_page_ns);
        assert_eq!(m.migrate_cost_ns(1), m.migrate_page_ns);
        assert_eq!(m.migrate_cost_ns(2), 2 * m.migrate_page_ns);
    }
}
