//! Simulated time: a nanosecond clock and periodic-deadline helpers.
//!
//! The whole simulation is single-threaded and deterministic; "time" only
//! advances when simulated work (CPU bursts, memory stalls, daemon
//! budgets) consumes it.

/// Nanoseconds per microsecond.
pub const US: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const MS: u64 = 1_000_000;
/// Nanoseconds per second.
pub const SEC: u64 = 1_000_000_000;
/// Nanoseconds per minute.
pub const MINUTE: u64 = 60 * SEC;

/// The simulation clock.
///
/// # Examples
///
/// ```
/// use tiered_sim::{SimClock, MS};
///
/// let mut clock = SimClock::new();
/// clock.advance(5 * MS);
/// assert_eq!(clock.now_ns(), 5_000_000);
/// assert!((clock.now_secs() - 0.005).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock { now_ns: 0 }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / SEC as f64
    }

    /// Advances the clock by `delta_ns`.
    #[inline]
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }
}

/// Tracks a periodic deadline (daemon wakeups, stat sampling).
///
/// # Examples
///
/// ```
/// use tiered_sim::{Periodic, MS};
///
/// let mut timer = Periodic::new(10 * MS);
/// assert_eq!(timer.fire(5 * MS), 0);
/// assert_eq!(timer.fire(10 * MS), 1);
/// assert_eq!(timer.fire(45 * MS), 3); // catches up across 20, 30, 40 ms
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Periodic {
    period_ns: u64,
    next_ns: u64,
}

impl Periodic {
    /// A timer that first fires at `period_ns` and every `period_ns`
    /// thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is zero.
    pub fn new(period_ns: u64) -> Periodic {
        assert!(period_ns > 0, "period must be positive");
        Periodic {
            period_ns,
            next_ns: period_ns,
        }
    }

    /// The configured period.
    #[inline]
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// The next deadline.
    #[inline]
    pub fn next_deadline_ns(&self) -> u64 {
        self.next_ns
    }

    /// Returns how many periods elapsed up to `now_ns` and advances the
    /// deadline past `now_ns`. Returns 0 if the deadline has not arrived.
    pub fn fire(&mut self, now_ns: u64) -> u32 {
        if now_ns < self.next_ns {
            return 0;
        }
        let elapsed = now_ns - self.next_ns;
        let fires = 1 + (elapsed / self.period_ns) as u32;
        self.next_ns += fires as u64 * self.period_ns;
        fires
    }

    /// Resets the timer so the next fire is one period after `now_ns`.
    pub fn reset(&mut self, now_ns: u64) {
        self.next_ns = now_ns + self.period_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(100);
        c.advance(SEC);
        assert_eq!(c.now_ns(), SEC + 100);
    }

    #[test]
    fn periodic_fires_exactly_on_deadline() {
        let mut p = Periodic::new(100);
        assert_eq!(p.fire(99), 0);
        assert_eq!(p.fire(100), 1);
        assert_eq!(p.fire(150), 0);
        assert_eq!(p.fire(200), 1);
    }

    #[test]
    fn periodic_catches_up_after_long_gap() {
        let mut p = Periodic::new(100);
        assert_eq!(p.fire(1000), 10);
        assert_eq!(p.next_deadline_ns(), 1100);
        assert_eq!(p.fire(1000), 0);
    }

    #[test]
    fn periodic_reset_pushes_deadline_out() {
        let mut p = Periodic::new(100);
        p.reset(450);
        assert_eq!(p.fire(500), 0);
        assert_eq!(p.fire(550), 1);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        Periodic::new(0);
    }

    #[test]
    fn unit_constants_consistent() {
        assert_eq!(MS, 1000 * US);
        assert_eq!(SEC, 1000 * MS);
        assert_eq!(MINUTE, 60 * SEC);
    }
}
