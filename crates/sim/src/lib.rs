//! # tiered-sim
//!
//! Deterministic simulation engine for tiered-memory experiments: the
//! nanosecond clock, the operation-cost latency model, access-trace
//! types, seeded randomness, and statistics collection.
//!
//! This crate sits between the mechanical substrate
//! ([`tiered_mem`]) and the policy/runner layer (`tpp`): it defines *how
//! time and cost are accounted* and *what a workload looks like*
//! ([`Workload`], [`Op`], [`Access`]) without prescribing any placement
//! behaviour.
//!
//! ## Example
//!
//! ```
//! use tiered_sim::{LatencyModel, Periodic, SimClock, SimRng, MS};
//!
//! let mut clock = SimClock::new();
//! let mut kswapd = Periodic::new(50 * MS);
//! let model = LatencyModel::datacenter();
//! let mut rng = SimRng::seed(1);
//!
//! clock.advance(120 * MS);
//! assert_eq!(kswapd.fire(clock.now_ns()), 2); // two missed wakeups
//! assert!(model.migrate_budget_pages(MS) > 100);
//! assert!(rng.chance(1.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod latency;
mod replay;
mod rng;
mod stats;
mod trace;

pub use clock::{Periodic, SimClock, MINUTE, MS, SEC, US};
pub use latency::{access_latency_ns, LatencyModel};
pub use replay::{ParseTraceError, Trace, TraceRecord, TraceRecorder, TraceWorkload};
pub use rng::SimRng;
pub use stats::{fraction, percentile, rate_per_sec, LogHistogram, TimeSeries};
pub use trace::{Access, AccessKind, AccessObserver, NullObserver, Op, Workload, WorkloadEvent};

/// Structured event telemetry for simulation runs, re-exported from
/// [`tiered_mem::telemetry`]: kernel-style trace events ↔ vmstat counter
/// parity, plus the null/ring/JSONL-writer sinks. Namespaced because the
/// telemetry `TraceRecord` is distinct from the access-replay
/// [`TraceRecord`] exported above.
pub use tiered_mem::telemetry;
