//! Statistics collection: time series, percentile summaries, and rate
//! tracking for the evaluation plots.

/// A recorded time series of `(time_ns, value)` points.
///
/// # Examples
///
/// ```
/// use tiered_sim::TimeSeries;
///
/// let mut ts = TimeSeries::new("promotion_rate");
/// ts.record(0, 10.0);
/// ts.record(1_000, 30.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.mean(), Some(20.0));
/// assert_eq!(ts.max(), Some(30.0));
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series called `name`.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `time_ns` is earlier than the previous point.
    pub fn record(&mut self, time_ns: u64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time_ns >= last, "time went backwards: {time_ns} < {last}");
        }
        self.points.push((time_ns, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points in time order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Just the values, in time order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Arithmetic mean of the values.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Minimum value.
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on sorted values.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        percentile(&self.values(), q)
    }

    /// Mean of the values within `[start_ns, end_ns)`.
    pub fn mean_between(&self, start_ns: u64, end_ns: u64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= start_ns && t < end_ns)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// A log₂-bucketed histogram for latency-like values: constant memory,
/// O(1) insert, ~2× value resolution on percentiles.
///
/// # Examples
///
/// ```
/// use tiered_sim::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [100, 200, 400, 800, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 200 && h.percentile(0.5) <= 511);
/// assert!(h.percentile(1.0) >= 100_000);
/// ```
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-percentile: the upper bound of the bucket holding
    /// the nearest-rank sample (exact for the maximum). Returns 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

/// Nearest-rank percentile of a sample set (0 ≤ q ≤ 1).
///
/// Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Converts a counter delta over an interval into a per-second rate.
///
/// # Examples
///
/// ```
/// use tiered_sim::{rate_per_sec, SEC};
/// assert_eq!(rate_per_sec(500, 2 * SEC), 250.0);
/// ```
pub fn rate_per_sec(delta: u64, interval_ns: u64) -> f64 {
    if interval_ns == 0 {
        return 0.0;
    }
    delta as f64 * crate::clock::SEC as f64 / interval_ns as f64
}

/// Fraction helper that is well-defined at zero denominators.
///
/// # Examples
///
/// ```
/// assert_eq!(tiered_sim::fraction(3, 4), 0.75);
/// assert_eq!(tiered_sim::fraction(0, 0), 0.0);
/// ```
pub fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SEC;

    #[test]
    fn series_statistics() {
        let mut ts = TimeSeries::new("t");
        for (i, v) in [5.0, 1.0, 9.0, 3.0].iter().enumerate() {
            ts.record(i as u64 * 10, *v);
        }
        assert_eq!(ts.mean(), Some(4.5));
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(9.0));
        assert_eq!(ts.percentile(0.5), Some(3.0));
        assert_eq!(ts.percentile(1.0), Some(9.0));
        assert_eq!(ts.percentile(0.0), Some(1.0));
    }

    #[test]
    fn empty_series_yields_none() {
        let ts = TimeSeries::new("e");
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.max(), None);
        assert_eq!(ts.percentile(0.9), None);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_must_be_monotone() {
        let mut ts = TimeSeries::new("t");
        ts.record(10, 1.0);
        ts.record(5, 2.0);
    }

    #[test]
    fn mean_between_windows() {
        let mut ts = TimeSeries::new("t");
        ts.record(0, 10.0);
        ts.record(100, 20.0);
        ts.record(200, 40.0);
        assert_eq!(ts.mean_between(0, 150), Some(15.0));
        assert_eq!(ts.mean_between(150, 400), Some(40.0));
        assert_eq!(ts.mean_between(500, 600), None);
    }

    #[test]
    fn percentile_of_singleton() {
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn log_histogram_percentiles() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.max(), 1000);
        // p50 of 1..1000 is 500; bucket upper bound 511.
        let p50 = h.percentile(0.5);
        assert!((500..=511).contains(&p50), "p50={p50}");
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(LogHistogram::new().percentile(0.99), 0);
    }

    #[test]
    fn log_histogram_handles_extremes() {
        let mut h = LogHistogram::new();
        h.record(0); // clamped into the first bucket
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn rates_and_fractions() {
        assert_eq!(rate_per_sec(100, SEC), 100.0);
        assert_eq!(rate_per_sec(100, 0), 0.0);
        assert_eq!(fraction(1, 2), 0.5);
        assert_eq!(fraction(5, 0), 0.0);
    }
}
