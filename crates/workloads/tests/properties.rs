//! Property-style tests for the workload generators, driven by seeded
//! [`SimRng`] loops (no external proptest dependency).

use tiered_mem::PageType;
use tiered_sim::{SimRng, Workload, WorkloadEvent, SEC};
use tiered_workloads::{RegionSpec, TransientPool, WindowedRegion, ZipfSampler};

/// Region samples never escape the region bounds, at any time, for
/// arbitrary window geometry (including frontier and tail modes).
#[test]
fn region_samples_stay_in_bounds() {
    let mut meta = SimRng::seed(0x4E61);
    for case in 0..64u64 {
        let pages = meta.range(8..5_000);
        let window_frac = 0.01 + meta.f64() * 0.99;
        let step = meta.range(1..500);
        let zipf = meta.f64() * 1.5;
        let frontier = meta.f64() * 0.9;
        let tail = meta.f64() * 0.05;
        let t = meta.range(0..100_000_000_000);
        let seed = meta.range(0..1_000);
        let spec = RegionSpec {
            base_vpn: 1_000_000,
            pages,
            page_type: PageType::Anon,
            window_frac,
            dwell_ns: 10 * SEC,
            step_pages: step,
            zipf_skew: zipf,
            store_frac: 0.3,
            growth: None,
            frontier_weight: frontier,
            frontier_frac: 0.1,
            tail_weight: tail,
        };
        let region = WindowedRegion::new(spec);
        let mut rng = SimRng::seed(seed);
        for _ in 0..200 {
            let (vpn, _) = region.sample(t, &mut rng);
            assert!(
                region.contains(vpn),
                "case {case}: {vpn} escaped the region"
            );
        }
    }
}

/// The transient pool never holds more live pages than its range and
/// never double-allocates a live VPN.
#[test]
fn transient_pool_is_always_consistent() {
    let mut meta = SimRng::seed(0x7261);
    for case in 0..64u64 {
        let range = meta.range(1..64);
        let lifetime = meta.range(1..1_000);
        let steps = meta.range(1..200);
        let mut pool = TransientPool::new(0, range, lifetime);
        let mut now = 0u64;
        let mut live = std::collections::HashSet::new();
        for _ in 0..steps {
            now += meta.range(0..100);
            let try_alloc = meta.chance(0.5);
            for vpn in pool.take_expired(now) {
                assert!(live.remove(&vpn), "case {case}: expired {vpn} was not live");
            }
            if try_alloc {
                if let Some(vpn) = pool.allocate(now) {
                    assert!(live.insert(vpn), "case {case}: double allocation of {vpn}");
                }
            }
            assert!(pool.live_count() <= range);
            assert_eq!(pool.live_count() as usize, live.len());
        }
    }
}

/// The Zipf sampler's empirical mass is non-increasing in rank bands:
/// lower ranks get at least as much traffic as higher bands.
#[test]
fn zipf_band_mass_decreases() {
    let mut meta = SimRng::seed(0x5A1F);
    for case in 0..16u64 {
        let seed = meta.range(0..500);
        let skew = 0.4 + meta.f64();
        let zipf = ZipfSampler::new(256, skew);
        let mut rng = SimRng::seed(seed);
        let mut counts = [0u32; 4]; // bands of 64 ranks
        for _ in 0..20_000 {
            counts[(zipf.sample(&mut rng) / 64) as usize] += 1;
        }
        assert!(counts[0] >= counts[1], "case {case} skew {skew}");
        assert!(counts[1] >= counts[2].saturating_sub(150)); // noise slack
        assert!(counts[0] > counts[3]);
    }
}

/// Every built-in profile generates ops forever without panicking and
/// respects its declared access budget per op (materialisation bursts
/// and churn included).
#[test]
fn profiles_generate_bounded_ops() {
    for which in 0u8..7 {
        for seed in [0u64, 17, 61] {
            let ws = 800;
            let profile = match which {
                0 => tiered_workloads::web(ws),
                1 => tiered_workloads::cache1(ws),
                2 => tiered_workloads::cache2(ws),
                3 => tiered_workloads::data_warehouse(ws),
                4 => tiered_workloads::kv_store(ws),
                5 => tiered_workloads::batch_analytics(ws),
                _ => tiered_workloads::uniform(ws),
            };
            let per_op_cap = profile.accesses_per_op as usize
                + 16 * profile.regions.len() // materialisation bursts
                + 8 // churn touches + retouch
                + profile.transient.map_or(0, |t| {
                    t.touches_per_page as usize * (t.allocs_per_op.ceil() as usize + 1)
                });
            let mut w = profile.build();
            let mut rng = SimRng::seed(seed);
            for i in 0..500u64 {
                let was_warmup = w.in_warmup();
                let op = w.next_op(i * 20_000_000, &mut rng);
                if !was_warmup {
                    assert!(
                        op.access_count() <= per_op_cap,
                        "profile {which} seed {seed}: op with {} accesses exceeds cap {per_op_cap}",
                        op.access_count()
                    );
                }
                for e in &op.events {
                    if let WorkloadEvent::Access(a) = e {
                        assert_eq!(a.pid, w.pid());
                    }
                }
            }
        }
    }
}
