//! # tiered-workloads
//!
//! Synthetic datacenter workload generators calibrated to the production
//! characterization in *TPP: Transparent Page Placement for CXL-Enabled
//! Tiered Memory* (ASPLOS 2023), §3.
//!
//! Four profiles mirror the paper's services — [`web`], [`cache1`],
//! [`cache2`], and [`data_warehouse`] — each assembled from:
//!
//! * [`WindowedRegion`]s: contiguous anon/file/tmpfs ranges whose hot
//!   window slides slowly, reproducing the paper's page-temperature,
//!   usage-over-time, and re-access-interval findings (Figures 7–11);
//! * a [`TransientPool`] of short-lived request pages (§5.2's "new
//!   allocations are short-lived and hot");
//! * an optional warm-up phase that sequentially materialises file
//!   caches (the behaviour that pressures the local node in §6.2.1).
//!
//! ## Example
//!
//! ```
//! use tiered_sim::{SimRng, Workload};
//!
//! let mut workload = tiered_workloads::web(10_000).build();
//! let mut rng = SimRng::seed(1);
//! let op = workload.next_op(0, &mut rng);
//! assert!(!op.events.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod profiles;
mod region;
mod synthetic;
mod transient;
mod zipf;

pub use profiles::{
    all_production, batch_analytics, cache1, cache2, data_warehouse, fragmenter, kv_store,
    thp_friendly, uniform, web, ANON_BASE_VPN, FILE_BASE_VPN,
};
pub use region::{Growth, RegionSpec, WindowedRegion};
pub use synthetic::{
    SyntheticWorkload, TransientSpec, WarmupSpec, WorkloadProfile, TRANSIENT_BASE_VPN,
};
pub use transient::TransientPool;
pub use zipf::ZipfSampler;
