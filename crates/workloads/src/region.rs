//! Windowed memory regions: the access-locality model behind the
//! synthetic workloads.
//!
//! Each region is a contiguous range of virtual pages of one type. At any
//! instant a *window* (a fraction of the region) is "hot": accesses are
//! Zipf-distributed within it. The window slides slowly over the region,
//! which produces exactly the phenomena the paper characterises:
//!
//! * a bounded fraction of memory is touched within a 1–2 minute interval
//!   (paper Figure 7/8 — the window size),
//! * pages cool down and are re-accessed minutes later (Figure 11 — the
//!   window's cycle period),
//! * usage patterns stay steady over time (Figure 9).

use std::cell::Cell;

use tiered_mem::{PageType, Vpn};
use tiered_sim::{AccessKind, SimRng, SEC};

use crate::zipf::ZipfSampler;

/// Optional growth of a region's allocated footprint over time (e.g. Web's
/// anon usage growing while file caches are discarded, Figure 9a).
#[derive(Clone, Copy, Debug)]
pub struct Growth {
    /// Fraction of the region allocated at time zero.
    pub initial_frac: f64,
    /// Pages added per simulated second until the region is full.
    pub pages_per_sec: f64,
}

/// Static description of a windowed region.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// First virtual page of the region.
    pub base_vpn: u64,
    /// Region size in pages.
    pub pages: u64,
    /// Page type materialised on first touch.
    pub page_type: PageType,
    /// Fraction of the (allocated) region inside the hot window.
    pub window_frac: f64,
    /// How long the window rests before sliding.
    pub dwell_ns: u64,
    /// Pages the window slides per dwell.
    pub step_pages: u64,
    /// Zipf skew of accesses within the window (0 = uniform).
    pub zipf_skew: f64,
    /// Fraction of accesses that are stores.
    pub store_frac: f64,
    /// Footprint growth over time, if any.
    pub growth: Option<Growth>,
    /// Fraction of accesses aimed at the *newest* allocated pages (the
    /// allocation frontier) instead of the sliding window. Newly
    /// allocated memory is hot in datacenter services (paper §5.2) — and
    /// it is exactly what default Linux strands on the CXL node during
    /// an allocation surge.
    pub frontier_weight: f64,
    /// Size of the frontier as a fraction of the allocated footprint.
    pub frontier_frac: f64,
    /// Probability of a one-off touch to a uniformly random page of the
    /// whole region (the long tail of sporadic accesses — what instant
    /// promotion wastes migrations on and TPP's active-LRU filter
    /// ignores, §5.3).
    pub tail_weight: f64,
}

impl RegionSpec {
    /// A steady region with sensible defaults: 30 s dwell, window sliding
    /// 5% of itself per dwell, mild skew, read-mostly.
    pub fn steady(base_vpn: u64, pages: u64, page_type: PageType, window_frac: f64) -> RegionSpec {
        let window = ((pages as f64 * window_frac) as u64).max(1);
        RegionSpec {
            base_vpn,
            pages,
            page_type,
            window_frac,
            dwell_ns: 30 * SEC,
            step_pages: (window / 20).max(1),
            zipf_skew: 0.8,
            store_frac: 0.2,
            growth: None,
            frontier_weight: 0.0,
            frontier_frac: 0.05,
            tail_weight: 0.0,
        }
    }
}

/// Snapshot of the window geometry for one epoch.
///
/// The geometry only changes when the dwell step advances or the growth
/// formula adds a page — at most a handful of times per simulated second,
/// versus millions of accesses. Caching the derived values keyed on
/// `(step, grown)` keeps the float math off the per-access path while
/// producing bit-identical results: the cached values come from exactly
/// the arithmetic the accessors used to run per call.
#[derive(Clone, Copy, Debug)]
struct Geometry {
    /// Dwell step (`now_ns / dwell_ns`) this snapshot was computed for.
    step: u64,
    /// Growth tick (pages added so far) this snapshot was computed for.
    grown: u64,
    allocated: u64,
    window: u64,
    start: u64,
}

/// Runtime sampler for one region.
#[derive(Clone, Debug)]
pub struct WindowedRegion {
    spec: RegionSpec,
    zipf: ZipfSampler,
    /// `(pages * initial_frac) as u64`, hoisted out of the growth formula.
    initial_pages: u64,
    geo: Cell<Option<Geometry>>,
}

impl WindowedRegion {
    /// Builds the sampler for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or `window_frac` is outside `(0, 1]`.
    pub fn new(spec: RegionSpec) -> WindowedRegion {
        assert!(spec.pages > 0, "empty region");
        assert!(
            spec.window_frac > 0.0 && spec.window_frac <= 1.0,
            "window_frac {} out of (0,1]",
            spec.window_frac
        );
        let max_window = ((spec.pages as f64 * spec.window_frac) as u64).max(1);
        let zipf = ZipfSampler::new(max_window, spec.zipf_skew);
        let initial_pages = match spec.growth {
            None => spec.pages,
            Some(g) => (spec.pages as f64 * g.initial_frac) as u64,
        };
        WindowedRegion {
            spec,
            zipf,
            initial_pages,
            geo: Cell::new(None),
        }
    }

    /// The window geometry at `now_ns`, recomputed only when the dwell
    /// step or growth tick changes since the last call.
    fn geometry(&self, now_ns: u64) -> Geometry {
        let step = now_ns / self.spec.dwell_ns;
        let grown = match self.spec.growth {
            None => 0,
            Some(g) => (now_ns as f64 / SEC as f64 * g.pages_per_sec) as u64,
        };
        if let Some(geo) = self.geo.get() {
            if geo.step == step && geo.grown == grown {
                return geo;
            }
        }
        let allocated = match self.spec.growth {
            None => self.spec.pages,
            Some(_) => (self.initial_pages + grown).min(self.spec.pages).max(1),
        };
        let window = ((allocated as f64 * self.spec.window_frac) as u64).max(1);
        let start = (self.spec.pages / 2 + step.wrapping_mul(self.spec.step_pages)) % allocated;
        let geo = Geometry {
            step,
            grown,
            allocated,
            window,
            start,
        };
        self.geo.set(Some(geo));
        geo
    }

    /// The region's static description.
    pub fn spec(&self) -> &RegionSpec {
        &self.spec
    }

    /// Pages allocated (touchable) at `now_ns`, honouring growth.
    pub fn allocated_pages(&self, now_ns: u64) -> u64 {
        self.geometry(now_ns).allocated
    }

    /// Current hot-window size in pages.
    pub fn window_pages(&self, now_ns: u64) -> u64 {
        self.geometry(now_ns).window
    }

    /// First page offset of the hot window at `now_ns`.
    ///
    /// The window starts mid-region (not at offset 0) so the hot set is
    /// decoupled from allocation order from the first instant — hot pages
    /// are *not* conveniently the pages that happened to land on the
    /// local node during warm-up.
    pub fn window_start(&self, now_ns: u64) -> u64 {
        self.geometry(now_ns).start
    }

    /// Time for the window to cycle the entire (full-size) region once —
    /// the region's re-access period (Figure 11).
    pub fn cycle_ns(&self) -> u64 {
        (self.spec.pages / self.spec.step_pages.max(1)).max(1) * self.spec.dwell_ns
    }

    /// Whether `vpn` belongs to this region.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn.0 >= self.spec.base_vpn && vpn.0 < self.spec.base_vpn + self.spec.pages
    }

    /// Draws one access at `now_ns`.
    pub fn sample(&self, now_ns: u64, rng: &mut SimRng) -> (Vpn, AccessKind) {
        let geo = self.geometry(now_ns);
        let allocated = geo.allocated;
        let offset = if self.spec.tail_weight > 0.0 && rng.chance(self.spec.tail_weight) {
            // Sporadic one-off touch anywhere in the region.
            rng.range(0..allocated)
        } else if self.spec.frontier_weight > 0.0 && rng.chance(self.spec.frontier_weight) {
            // Hot allocation frontier: the newest pages.
            let frontier = ((allocated as f64 * self.spec.frontier_frac) as u64).max(1);
            allocated - 1 - rng.range(0..frontier)
        } else {
            let rank = self.zipf.sample(rng) % geo.window;
            (geo.start + rank) % allocated
        };
        let vpn = Vpn(self.spec.base_vpn + offset);
        let kind = if rng.chance(self.spec.store_frac) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        (vpn, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tiered_sim::MINUTE;

    fn region(window_frac: f64) -> WindowedRegion {
        WindowedRegion::new(RegionSpec::steady(
            1000,
            10_000,
            PageType::Anon,
            window_frac,
        ))
    }

    #[test]
    fn samples_stay_inside_region() {
        let r = region(0.3);
        let mut rng = SimRng::seed(1);
        for t in [0u64, SEC, MINUTE, 10 * MINUTE] {
            for _ in 0..1000 {
                let (vpn, _) = r.sample(t, &mut rng);
                assert!(r.contains(vpn), "{vpn} outside region at t={t}");
            }
        }
    }

    #[test]
    fn coverage_within_interval_tracks_window_frac() {
        // Unique pages touched in a 2-minute interval should approximate
        // window_frac plus a little drift — the Figure 7 quantity.
        let r = region(0.30);
        let mut rng = SimRng::seed(2);
        let mut touched = HashSet::new();
        // ~200k accesses spread over 2 minutes.
        for i in 0..200_000u64 {
            let t = i * (2 * MINUTE / 200_000);
            let (vpn, _) = r.sample(t, &mut rng);
            touched.insert(vpn);
        }
        let frac = touched.len() as f64 / 10_000.0;
        assert!(
            (0.25..0.45).contains(&frac),
            "2-min coverage {frac} far from window 0.30"
        );
    }

    #[test]
    fn window_slides_over_time() {
        let r = region(0.2);
        let s0 = r.window_start(0);
        let s1 = r.window_start(r.spec().dwell_ns);
        assert_ne!(s0, s1);
        // One dwell moves the start by exactly step_pages, modulo the
        // allocated span (plain `s1 - s0` underflows when the window
        // wraps).
        let allocated = r.allocated_pages(0);
        let dist = (s1 + allocated - s0) % allocated;
        assert_eq!(dist, r.spec().step_pages % allocated);
    }

    #[test]
    fn cached_geometry_matches_fresh_computation() {
        // A long-lived region (warm cache, hits and misses interleaved)
        // must report exactly what a cold region reports at every instant.
        let mut spec = RegionSpec::steady(0, 10_000, PageType::Anon, 0.3);
        spec.growth = Some(Growth {
            initial_frac: 0.2,
            pages_per_sec: 37.5,
        });
        let cached = WindowedRegion::new(spec.clone());
        for i in 0..2_000u64 {
            // Sub-dwell strides so most queries hit the cache, with
            // occasional jumps (including backwards) forcing misses.
            let t = (i % 7) * SEC / 2 + (i / 7) * 11 * SEC;
            let fresh = WindowedRegion::new(spec.clone());
            assert_eq!(cached.allocated_pages(t), fresh.allocated_pages(t), "t={t}");
            assert_eq!(cached.window_pages(t), fresh.window_pages(t), "t={t}");
            assert_eq!(cached.window_start(t), fresh.window_start(t), "t={t}");
        }
    }

    #[test]
    fn cycle_period_is_pages_over_step() {
        let r = region(0.2);
        let expected = (10_000 / r.spec().step_pages) * r.spec().dwell_ns;
        assert_eq!(r.cycle_ns(), expected);
    }

    #[test]
    fn growth_expands_allocated_footprint() {
        let mut spec = RegionSpec::steady(0, 1000, PageType::Anon, 0.5);
        spec.growth = Some(Growth {
            initial_frac: 0.1,
            pages_per_sec: 10.0,
        });
        let r = WindowedRegion::new(spec);
        assert_eq!(r.allocated_pages(0), 100);
        assert_eq!(r.allocated_pages(10 * SEC), 200);
        assert_eq!(r.allocated_pages(1000 * SEC), 1000); // capped
    }

    #[test]
    fn store_fraction_respected() {
        let mut spec = RegionSpec::steady(0, 100, PageType::File, 0.5);
        spec.store_frac = 1.0;
        let r = WindowedRegion::new(spec);
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            let (_, kind) = r.sample(0, &mut rng);
            assert_eq!(kind, AccessKind::Store);
        }
    }

    #[test]
    fn zipf_concentrates_within_window() {
        let mut spec = RegionSpec::steady(0, 10_000, PageType::Anon, 0.5);
        spec.zipf_skew = 1.1;
        spec.dwell_ns = u64::MAX; // freeze the window
        let r = WindowedRegion::new(spec);
        let mut rng = SimRng::seed(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            let (vpn, _) = r.sample(0, &mut rng);
            *counts.entry(vpn).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let head: u32 = freqs.iter().take(50).sum();
        assert!(head as f64 / 100_000.0 > 0.3, "no skew: head={head}");
    }

    #[test]
    #[should_panic(expected = "window_frac")]
    fn invalid_window_rejected() {
        WindowedRegion::new(RegionSpec::steady(0, 10, PageType::Anon, 0.0));
    }
}
