//! A Zipf(s) sampler over `[0, n)` built on a Walker alias table.
//!
//! Datacenter access skew is classically Zipf-like; the workload
//! generators use this within their active windows to concentrate traffic
//! on the hottest pages.
//!
//! Sampling is O(1): one raw `u64` draw is split into a bucket index (the
//! high part of a 128-bit fixed-point product) and an acceptance coin (the
//! low 64 bits), then resolved against the precomputed threshold/alias
//! pair of that bucket. The previous implementation binary-searched a
//! cumulative-weight table — O(log n) per draw and a cache miss per probe
//! step — which dominated the simulator's access-generation cost at large
//! window sizes. Both implementations consume exactly one RNG step per
//! draw, so every *other* consumer of the stream sees identical values;
//! only the rank a given draw maps to differs (the distribution itself is
//! unchanged — see the chi-square goodness-of-fit tests below).

use tiered_sim::SimRng;

/// Samples ranks from a Zipf distribution: `P(k) ∝ 1 / (k+1)^s`.
///
/// Built once per region; sampling is O(1) via the Walker alias method.
///
/// # Examples
///
/// ```
/// use tiered_sim::SimRng;
/// use tiered_workloads::ZipfSampler;
///
/// let zipf = ZipfSampler::new(1000, 0.9);
/// let mut rng = SimRng::seed(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Per-bucket acceptance threshold in 2^64 fixed point: a coin below
    /// it keeps the bucket's own rank, otherwise the alias rank is taken.
    thresh: Vec<u64>,
    /// The donor rank paired with each bucket.
    alias: Vec<u32>,
    s: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with skew `s` (`s = 0` is uniform;
    /// typical web skew is `0.7–1.1`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `u32::MAX`, or `s` is
    /// negative/NaN.
    pub fn new(n: u64, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf over an empty domain");
        assert!(n <= u32::MAX as u64, "zipf domain too large for u32 ranks");
        assert!(s >= 0.0 && s.is_finite(), "invalid skew {s}");
        let n = n as usize;
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            let w = 1.0 / ((k + 1) as f64).powf(s);
            total += w;
            weights.push(w);
        }
        // Walker's method: scale weights to mean 1, then pair each
        // under-full bucket with one over-full donor.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut thresh = vec![u64::MAX; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s_i), Some(l_i)) = (small.pop(), large.last().copied()) {
            // `as u64` saturates, so a threshold of exactly 1.0 maps to
            // u64::MAX (always accept) rather than wrapping.
            thresh[s_i as usize] = (scaled[s_i as usize] * TWO_POW_64) as u64;
            alias[s_i as usize] = l_i;
            let leftover = (scaled[l_i as usize] + scaled[s_i as usize]) - 1.0;
            scaled[l_i as usize] = leftover;
            if leftover < 1.0 {
                large.pop();
                small.push(l_i);
            }
        }
        // Buckets left on either worklist hold exactly weight 1 (modulo
        // float error) and keep their always-accept defaults.
        ZipfSampler { thresh, alias, s }
    }

    /// Number of items in the domain.
    #[inline]
    pub fn len(&self) -> u64 {
        self.thresh.len() as u64
    }

    /// Whether the domain is empty (never true; `new` rejects `n = 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.thresh.is_empty()
    }

    /// The skew parameter.
    #[inline]
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `[0, n)`; rank 0 is the hottest.
    ///
    /// O(1): one RNG step, one table probe.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let x = rng.u64();
        // Fixed-point split of one draw: high 64 bits of x*n select the
        // bucket, the low 64 bits are the acceptance coin.
        let prod = x as u128 * self.thresh.len() as u128;
        let bucket = (prod >> 64) as usize;
        let coin = prod as u64;
        if coin < self.thresh[bucket] {
            bucket as u64
        } else {
            self.alias[bucket] as u64
        }
    }
}

/// `2^64` as f64, for fixed-point threshold conversion.
const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(zipf: &ZipfSampler, draws: usize, seed: u64) -> Vec<u32> {
        let mut rng = SimRng::seed(seed);
        let mut h = vec![0u32; zipf.len() as usize];
        for _ in 0..draws {
            h[zipf.sample(&mut rng) as usize] += 1;
        }
        h
    }

    /// The exact Zipf pmf the sampler must reproduce.
    fn exact_pmf(n: u64, s: f64) -> Vec<f64> {
        let mut p: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = p.iter().sum();
        for v in &mut p {
            *v /= total;
        }
        p
    }

    /// Chi-square goodness-of-fit of `draws` samples against `pmf`,
    /// merging consecutive ranks into bins until each expected count is
    /// at least `min_expected` (the textbook validity condition). Returns
    /// the normal-approximation z-score `(chi2 - dof) / sqrt(2 dof)`.
    fn chi_square_z(zipf: &ZipfSampler, pmf: &[f64], draws: usize, seed: u64) -> f64 {
        let h = histogram(zipf, draws, seed);
        let min_expected = 10.0;
        let mut chi2 = 0.0;
        let mut bins = 0usize;
        let mut observed = 0.0;
        let mut expected = 0.0;
        for (count, p) in h.iter().zip(pmf) {
            observed += *count as f64;
            expected += p * draws as f64;
            if expected >= min_expected {
                chi2 += (observed - expected) * (observed - expected) / expected;
                bins += 1;
                observed = 0.0;
                expected = 0.0;
            }
        }
        // Fold any under-full tail remainder into the last bin.
        if expected > 0.0 {
            chi2 += (observed - expected) * (observed - expected) / expected;
            bins += 1;
        }
        assert!(bins >= 2, "degenerate binning");
        let dof = (bins - 1) as f64;
        (chi2 - dof) / (2.0 * dof).sqrt()
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = ZipfSampler::new(10, 1.0);
        let mut rng = SimRng::seed(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_zero_is_roughly_uniform() {
        let zipf = ZipfSampler::new(8, 0.0);
        let h = histogram(&zipf, 80_000, 2);
        for &c in &h {
            let frac = c as f64 / 80_000.0;
            assert!((0.10..0.15).contains(&frac), "frac={frac}");
        }
    }

    #[test]
    fn high_skew_concentrates_on_low_ranks() {
        let zipf = ZipfSampler::new(1000, 1.2);
        let h = histogram(&zipf, 100_000, 3);
        let head: u32 = h[..10].iter().sum();
        assert!(
            head as f64 / 100_000.0 > 0.5,
            "top-10 got only {head} of 100k"
        );
        // Rank 0 strictly hotter than rank 100.
        assert!(h[0] > h[100]);
    }

    #[test]
    fn zipf_ratio_matches_theory() {
        // P(0)/P(1) = 2^s for Zipf(s).
        let zipf = ZipfSampler::new(100, 1.0);
        let h = histogram(&zipf, 400_000, 4);
        let ratio = h[0] as f64 / h[1] as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn alias_table_matches_exact_pmf_chi_square() {
        // Goodness-of-fit across the skews and domain sizes the workload
        // profiles actually use, plus a 1M-rank stress domain. A z-score
        // of 4 on the chi-square normal approximation would reject a
        // correct sampler ~0.003% of the time; the seeds are fixed, so
        // the test is deterministic either way.
        for &s in &[0.0, 0.8, 1.1] {
            for &n in &[10u64, 1_000, 1_000_000] {
                let zipf = ZipfSampler::new(n, s);
                let pmf = exact_pmf(n, s);
                let z = chi_square_z(&zipf, &pmf, 200_000, 0xC0FFEE ^ n ^ s.to_bits());
                assert!(z < 4.0, "chi-square z={z:.2} for n={n} s={s}");
            }
        }
    }

    #[test]
    fn seeded_samplers_produce_identical_streams() {
        let zipf = ZipfSampler::new(50_000, 0.9);
        let mut a = SimRng::seed(99);
        let mut b = SimRng::seed(99);
        for _ in 0..10_000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn sample_consumes_exactly_one_rng_step() {
        // Downstream stream positions must be unaffected by how many
        // ranks were drawn before — one step per draw, like the old CDF
        // sampler's single `f64()` call.
        let zipf = ZipfSampler::new(1_000, 0.8);
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        let _ = zipf.sample(&mut a);
        let _ = b.u64();
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_rejected() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid skew")]
    fn negative_skew_rejected() {
        ZipfSampler::new(10, -1.0);
    }
}
