//! A Zipf(s) sampler over `[0, n)` with an exact precomputed CDF.
//!
//! Datacenter access skew is classically Zipf-like; the workload
//! generators use this within their active windows to concentrate traffic
//! on the hottest pages.

use tiered_sim::SimRng;

/// Samples ranks from a Zipf distribution: `P(k) ∝ 1 / (k+1)^s`.
///
/// Built once per region; sampling is O(log n) by binary search over the
/// cumulative weights.
///
/// # Examples
///
/// ```
/// use tiered_sim::SimRng;
/// use tiered_workloads::ZipfSampler;
///
/// let zipf = ZipfSampler::new(1000, 0.9);
/// let mut rng = SimRng::seed(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    s: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with skew `s` (`s = 0` is uniform;
    /// typical web skew is `0.7–1.1`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/NaN.
    pub fn new(n: u64, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf over an empty domain");
        assert!(s >= 0.0 && s.is_finite(), "invalid skew {s}");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf, s }
    }

    /// Number of items in the domain.
    #[inline]
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Whether the domain is empty (never true; `new` rejects `n = 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew parameter.
    #[inline]
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1) as u64,
            Err(i) => i as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(zipf: &ZipfSampler, draws: usize, seed: u64) -> Vec<u32> {
        let mut rng = SimRng::seed(seed);
        let mut h = vec![0u32; zipf.len() as usize];
        for _ in 0..draws {
            h[zipf.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = ZipfSampler::new(10, 1.0);
        let mut rng = SimRng::seed(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_zero_is_roughly_uniform() {
        let zipf = ZipfSampler::new(8, 0.0);
        let h = histogram(&zipf, 80_000, 2);
        for &c in &h {
            let frac = c as f64 / 80_000.0;
            assert!((0.10..0.15).contains(&frac), "frac={frac}");
        }
    }

    #[test]
    fn high_skew_concentrates_on_low_ranks() {
        let zipf = ZipfSampler::new(1000, 1.2);
        let h = histogram(&zipf, 100_000, 3);
        let head: u32 = h[..10].iter().sum();
        assert!(
            head as f64 / 100_000.0 > 0.5,
            "top-10 got only {head} of 100k"
        );
        // Rank 0 strictly hotter than rank 100.
        assert!(h[0] > h[100]);
    }

    #[test]
    fn zipf_ratio_matches_theory() {
        // P(0)/P(1) = 2^s for Zipf(s).
        let zipf = ZipfSampler::new(100, 1.0);
        let h = histogram(&zipf, 400_000, 4);
        let ratio = h[0] as f64 / h[1] as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_rejected() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid skew")]
    fn negative_skew_rejected() {
        ZipfSampler::new(10, -1.0);
    }
}
