//! The four production-workload profiles from the paper (§3.2), calibrated
//! to the characterization it reports, plus a simple uniform workload for
//! quick starts.
//!
//! Calibration targets (fraction of each type's allocation touched within
//! a two-minute interval, paper Figures 7–8):
//!
//! | workload | anon hot | file hot | anon share | notes |
//! |---|---|---|---|---|
//! | Web            | ~35% | ~14% | grows to ~60% | file-I/O warm-up; anon grows (Fig 9a) |
//! | Cache1         | ~40% | ~25% | ~22% | tmpfs look-ups; fixed anon pool |
//! | Cache2         | ~43% | ~45% | ~23% | more file touched per look-up |
//! | Data Warehouse | ~20% | ~5%  | ~85% | churny anon; write-once files |
//!
//! A region's two-minute coverage ≈ `window_frac + step_frac × (120 s /
//! dwell)`; its re-access period (Figure 11) is `dwell / step_frac`. The
//! constants below encode both.

use tiered_mem::{PageType, Pid};
use tiered_sim::SEC;

use crate::region::{Growth, RegionSpec};
use crate::synthetic::{TransientSpec, WarmupSpec, WorkloadProfile};

/// Base VPN of each workload's anon region.
pub const ANON_BASE_VPN: u64 = 0;
/// Base VPN of each workload's file/tmpfs region.
pub const FILE_BASE_VPN: u64 = 1 << 32;

fn region(
    base: u64,
    pages: u64,
    page_type: PageType,
    window_frac: f64,
    step_frac_per_dwell: f64,
    zipf: f64,
    store: f64,
) -> RegionSpec {
    let pages = pages.max(8);
    RegionSpec {
        base_vpn: base,
        pages,
        page_type,
        window_frac,
        dwell_ns: 30 * SEC,
        step_pages: ((pages as f64 * step_frac_per_dwell) as u64).max(1),
        zipf_skew: zipf,
        store_frac: store,
        growth: None,
        frontier_weight: 0.0,
        frontier_frac: 0.05,
        tail_weight: 0.0,
    }
}

/// **Web**: JIT VM serving user requests. Heavy file I/O during warm-up
/// fills memory with file caches; anon usage then grows while caches are
/// discarded (Fig 9a). Anon pages are much hotter than file pages.
pub fn web(ws_pages: u64) -> WorkloadProfile {
    let anon_pages = ws_pages * 62 / 100;
    let file_pages = ws_pages * 38 / 100;
    let mut anon = region(
        ANON_BASE_VPN,
        anon_pages,
        PageType::Anon,
        0.15,
        0.05,
        0.9,
        0.30,
    );
    // Anon footprint starts at ~35% and surges to full size in ~12
    // seconds of simulated time — the paper's post-restart transient
    // (Figure 9a) compressed to the simulation's timescale. The surge
    // outpaces default Linux's throttled reclaim (one scan batch per
    // kswapd wakeup) and strands anon pages on the CXL node (§6.2.1).
    anon.growth = Some(Growth {
        initial_frac: 0.35,
        pages_per_sec: anon_pages as f64 * 0.65 / 12.0,
    });
    // Nearly half of Web's anon traffic hits recently allocated pages
    // (request state, JIT caches): hot *new* memory is what gets trapped
    // on the CXL node under default Linux (§6.2.1).
    anon.frontier_weight = 0.45;
    anon.frontier_frac = 0.08;
    let file = region(
        FILE_BASE_VPN,
        file_pages,
        PageType::File,
        0.06,
        0.02,
        0.6,
        0.30,
    );
    WorkloadProfile {
        name: "web".into(),
        pid: Pid(1),
        regions: vec![anon, file],
        region_weights: vec![0.72, 0.28],
        accesses_per_op: 6,
        cpu_ns_per_op: 25_000,
        warmup: Some(WarmupSpec {
            region_indices: vec![1],
            pages_per_op: 64,
            cpu_ns_per_op: 8_000,
            interleave: false,
        }),
        transient: Some(TransientSpec {
            allocs_per_op: 0.25,
            touches_per_page: 2,
            lifetime_ns: 45 * SEC,
            range_pages: (ws_pages / 8).max(16),
        }),
    }
}

/// **Cache1**: first-tier distributed cache. Look-ups hit a large tmpfs
/// store; a fixed anon pool processes queries. Anons are the hottest pages
/// per capita (40% vs 25% per two minutes).
pub fn cache1(ws_pages: u64) -> WorkloadProfile {
    let anon_pages = ws_pages * 22 / 100;
    let tmpfs_pages = ws_pages * 78 / 100;
    let anon = region(
        ANON_BASE_VPN,
        anon_pages,
        PageType::Anon,
        0.20,
        0.05,
        0.9,
        0.15,
    );
    let mut tmpfs = region(
        FILE_BASE_VPN,
        tmpfs_pages,
        PageType::Tmpfs,
        0.13,
        0.03,
        0.7,
        0.05,
    );
    tmpfs.tail_weight = 0.0008; // sporadic one-off look-ups across the store
    WorkloadProfile {
        name: "cache1".into(),
        pid: Pid(2),
        regions: vec![anon, tmpfs],
        region_weights: vec![0.55, 0.45],
        accesses_per_op: 6,
        cpu_ns_per_op: 25_000,
        warmup: Some(WarmupSpec {
            region_indices: vec![1, 0],
            pages_per_op: 64,
            cpu_ns_per_op: 8_000,
            interleave: true,
        }),
        transient: Some(TransientSpec {
            allocs_per_op: 0.10,
            touches_per_page: 2,
            lifetime_ns: 30 * SEC,
            range_pages: (ws_pages / 16).max(16),
        }),
    }
}

/// **Cache2**: second-tier cache. More file pages are touched per look-up,
/// so anon and file hotness are nearly equal over two minutes (43% vs
/// 45%), though anon still leads within one minute.
pub fn cache2(ws_pages: u64) -> WorkloadProfile {
    let anon_pages = ws_pages * 23 / 100;
    let tmpfs_pages = ws_pages * 77 / 100;
    let anon = region(
        ANON_BASE_VPN,
        anon_pages,
        PageType::Anon,
        0.37,
        0.015,
        0.8,
        0.20,
    );
    let mut tmpfs = region(
        FILE_BASE_VPN,
        tmpfs_pages,
        PageType::Tmpfs,
        0.15,
        0.075,
        0.7,
        0.05,
    );
    tmpfs.tail_weight = 0.0008;
    WorkloadProfile {
        name: "cache2".into(),
        pid: Pid(3),
        regions: vec![anon, tmpfs],
        region_weights: vec![0.45, 0.55],
        accesses_per_op: 6,
        cpu_ns_per_op: 25_000,
        warmup: Some(WarmupSpec {
            region_indices: vec![1, 0],
            pages_per_op: 64,
            cpu_ns_per_op: 8_000,
            interleave: true,
        }),
        transient: Some(TransientSpec {
            allocs_per_op: 0.10,
            touches_per_page: 2,
            lifetime_ns: 30 * SEC,
            range_pages: (ws_pages / 16).max(16),
        }),
    }
}

/// **Data Warehouse**: batch compute engine. Anon-dominated (85%), with
/// mostly *newly allocated* anon pages (heavy churn, §3.7) and write-once
/// file pages holding intermediate results.
pub fn data_warehouse(ws_pages: u64) -> WorkloadProfile {
    let anon_pages = ws_pages * 85 / 100;
    let file_pages = ws_pages * 15 / 100;
    let anon = region(
        ANON_BASE_VPN,
        anon_pages,
        PageType::Anon,
        0.10,
        0.025,
        0.7,
        0.50,
    );
    let file = region(
        FILE_BASE_VPN,
        file_pages,
        PageType::File,
        0.03,
        0.005,
        0.0,
        0.90,
    );
    WorkloadProfile {
        name: "data_warehouse".into(),
        pid: Pid(4),
        regions: vec![anon, file],
        region_weights: vec![0.88, 0.12],
        accesses_per_op: 8,
        cpu_ns_per_op: 30_000,
        warmup: None,
        transient: Some(TransientSpec {
            allocs_per_op: 0.80,
            touches_per_page: 3,
            lifetime_ns: 45 * SEC,
            range_pages: (ws_pages / 4).max(32),
        }),
    }
}

/// **KV store** (beyond the paper's four): a point-lookup service with a
/// very skewed key popularity (Zipf 1.1) over a large in-memory table.
/// The hottest few percent of pages dominate traffic, which makes this
/// the best case for promotion quality: getting a small set of pages
/// onto the local node captures most of the benefit.
pub fn kv_store(ws_pages: u64) -> WorkloadProfile {
    let table_pages = ws_pages * 88 / 100;
    let log_pages = ws_pages * 12 / 100;
    let mut table = region(
        ANON_BASE_VPN,
        table_pages,
        PageType::Anon,
        0.55,
        0.005,
        1.1,
        0.10,
    );
    table.tail_weight = 0.0005; // occasional miss-path scans
                                // Append-only log: written once, rarely re-read.
    let log = region(
        FILE_BASE_VPN,
        log_pages,
        PageType::File,
        0.04,
        0.02,
        0.0,
        0.95,
    );
    WorkloadProfile {
        name: "kv_store".into(),
        pid: Pid(5),
        regions: vec![table, log],
        region_weights: vec![0.9, 0.1],
        accesses_per_op: 4,
        cpu_ns_per_op: 15_000,
        warmup: Some(WarmupSpec {
            region_indices: vec![0],
            pages_per_op: 64,
            cpu_ns_per_op: 8_000,
            interleave: false,
        }),
        transient: Some(TransientSpec {
            allocs_per_op: 0.05,
            touches_per_page: 2,
            lifetime_ns: 20 * SEC,
            range_pages: (ws_pages / 32).max(16),
        }),
    }
}

/// **Batch analytics** (beyond the paper's four): sequential scan passes
/// over a large dataset — a fast-moving window with little short-term
/// re-use. The worst case for promotion (pages cool before any second
/// touch) and the best case for *not* paying promotion traffic.
pub fn batch_analytics(ws_pages: u64) -> WorkloadProfile {
    let data_pages = ws_pages * 80 / 100;
    let out_pages = ws_pages * 20 / 100;
    // Tiny window sweeping fast: a scan front.
    let data = region(
        ANON_BASE_VPN,
        data_pages,
        PageType::Anon,
        0.04,
        0.20,
        0.0,
        0.15,
    );
    let out = region(
        FILE_BASE_VPN,
        out_pages,
        PageType::File,
        0.05,
        0.05,
        0.0,
        0.90,
    );
    WorkloadProfile {
        name: "batch_analytics".into(),
        pid: Pid(6),
        regions: vec![data, out],
        region_weights: vec![0.85, 0.15],
        accesses_per_op: 10,
        cpu_ns_per_op: 40_000,
        warmup: None,
        transient: None,
    }
}

/// **THP-friendly** (beyond the paper's four): a service whose hot set is
/// large, dense, and anon — the best case for transparent huge pages. The
/// single region is a multiple of the 512-page huge window, the hot window
/// covers contiguous aligned spans, and there is almost no short-lived
/// churn, so fault-time THP allocation and khugepaged collapse both find
/// fully resident, warm windows to work with.
pub fn thp_friendly(ws_pages: u64) -> WorkloadProfile {
    // Round the footprint to whole 512-page huge windows so every aligned
    // window can be fully resident.
    let anon_pages = (ws_pages.max(1024) / 512) * 512;
    let mut anon = region(
        ANON_BASE_VPN,
        anon_pages,
        PageType::Anon,
        0.45,
        0.01,
        0.6,
        0.30,
    );
    // Dense sequential touching inside the window: low skew plus a strong
    // allocation frontier means freshly faulted windows fill quickly.
    anon.frontier_weight = 0.25;
    anon.frontier_frac = 0.10;
    WorkloadProfile {
        name: "thp_friendly".into(),
        pid: Pid(7),
        regions: vec![anon],
        region_weights: vec![1.0],
        accesses_per_op: 8,
        cpu_ns_per_op: 20_000,
        warmup: Some(WarmupSpec {
            region_indices: vec![0],
            pages_per_op: 64,
            cpu_ns_per_op: 8_000,
            interleave: false,
        }),
        transient: None,
    }
}

/// **Fragmenter** (beyond the paper's four): heavy short-lifetime anon
/// churn sprayed across a wide range — the worst case for huge pages.
/// Free memory decays into scattered base-page holes, which starves
/// fault-time THP allocation and gives kcompactd work to do.
pub fn fragmenter(ws_pages: u64) -> WorkloadProfile {
    let anon_pages = ws_pages * 40 / 100;
    let anon = region(
        ANON_BASE_VPN,
        anon_pages,
        PageType::Anon,
        0.25,
        0.05,
        0.8,
        0.40,
    );
    WorkloadProfile {
        name: "fragmenter".into(),
        pid: Pid(8),
        regions: vec![anon],
        region_weights: vec![1.0],
        accesses_per_op: 4,
        cpu_ns_per_op: 15_000,
        warmup: None,
        transient: Some(TransientSpec {
            // Most ops allocate; pages die young and are scattered over a
            // range ~1.5x the steady footprint, maximising hole scatter.
            allocs_per_op: 1.50,
            touches_per_page: 2,
            lifetime_ns: 10 * SEC,
            range_pages: (ws_pages * 3 / 2).max(64),
        }),
    }
}

/// A simple single-region anon workload with a 50% hot window — handy for
/// quick starts and unit tests.
pub fn uniform(ws_pages: u64) -> WorkloadProfile {
    let anon = region(
        ANON_BASE_VPN,
        ws_pages,
        PageType::Anon,
        0.5,
        0.02,
        0.5,
        0.25,
    );
    WorkloadProfile {
        name: "uniform".into(),
        pid: Pid(9),
        regions: vec![anon],
        region_weights: vec![1.0],
        accesses_per_op: 4,
        cpu_ns_per_op: 20_000,
        warmup: None,
        transient: None,
    }
}

/// All four production profiles at the given scale, in paper order.
pub fn all_production(ws_pages: u64) -> Vec<WorkloadProfile> {
    vec![
        web(ws_pages),
        cache1(ws_pages),
        cache2(ws_pages),
        data_warehouse(ws_pages),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tiered_mem::Vpn;
    use tiered_sim::{SimRng, Workload, WorkloadEvent, MINUTE};

    /// Drives a profile for `duration` of simulated time and returns the
    /// unique pages touched per type in the final 2-minute window.
    ///
    /// Simulated time advances 1 ms per op — a deliberate time-dilation so
    /// debug-mode tests stay fast. Coverage is insensitive to this: the
    /// ~720k accesses landing in the final window still saturate every hot
    /// set many times over, so unique-page coverage measures the window
    /// geometry, not the access rate.
    fn coverage(profile: &WorkloadProfile, duration: u64) -> (f64, f64) {
        let mut w = profile.build();
        let mut rng = SimRng::seed(99);
        let mut now = 0u64;
        let window_start = duration.saturating_sub(2 * MINUTE);
        let mut anon: HashSet<Vpn> = HashSet::new();
        let mut file: HashSet<Vpn> = HashSet::new();
        while now < duration {
            let op = w.next_op(now, &mut rng);
            now += 1_000_000; // 1 ms per op (time dilation, see above)
            if now < window_start {
                continue;
            }
            for e in &op.events {
                if let WorkloadEvent::Access(a) = e {
                    // Ignore transient churn for region-coverage checks.
                    if a.vpn.0 >= crate::synthetic::TRANSIENT_BASE_VPN {
                        continue;
                    }
                    if a.page_type.is_anon() {
                        anon.insert(a.vpn);
                    } else {
                        file.insert(a.vpn);
                    }
                }
            }
        }
        let anon_pages = profile.regions[0].pages as f64;
        let file_pages = profile.regions.get(1).map_or(1.0, |r| r.pages as f64);
        (
            anon.len() as f64 / anon_pages,
            file.len() as f64 / file_pages,
        )
    }

    #[test]
    fn web_hotness_matches_paper() {
        let (anon, file) = coverage(&web(20_000), 10 * MINUTE);
        assert!(
            (0.25..0.50).contains(&anon),
            "web anon 2-min hot {anon}, paper ~0.35"
        );
        assert!(
            (0.08..0.22).contains(&file),
            "web file 2-min hot {file}, paper ~0.14"
        );
        assert!(anon > file, "anon must be hotter than file");
    }

    #[test]
    fn cache1_hotness_matches_paper() {
        let (anon, file) = coverage(&cache1(20_000), 8 * MINUTE);
        assert!(
            (0.30..0.55).contains(&anon),
            "cache1 anon {anon}, paper ~0.40"
        );
        assert!(
            (0.15..0.35).contains(&file),
            "cache1 file {file}, paper ~0.25"
        );
        assert!(anon > file);
    }

    #[test]
    fn cache2_hotness_is_roughly_balanced() {
        let (anon, file) = coverage(&cache2(20_000), 8 * MINUTE);
        assert!(
            (0.33..0.55).contains(&anon),
            "cache2 anon {anon}, paper ~0.43"
        );
        assert!(
            (0.33..0.58).contains(&file),
            "cache2 file {file}, paper ~0.45"
        );
    }

    #[test]
    fn warehouse_is_mostly_cold() {
        let (anon, file) = coverage(&data_warehouse(20_000), 8 * MINUTE);
        assert!((0.12..0.30).contains(&anon), "dw anon {anon}, paper ~0.20");
        assert!(file < 0.12, "dw file {file}, paper ~all cold");
    }

    #[test]
    fn type_shares_match_paper() {
        for (p, anon_share) in [
            (web(10_000), 0.62),
            (cache1(10_000), 0.22),
            (cache2(10_000), 0.23),
            (data_warehouse(10_000), 0.85),
        ] {
            let anon = p.regions[0].pages as f64;
            let total: u64 = p.regions.iter().map(|r| r.pages).sum();
            let share = anon / total as f64;
            assert!(
                (share - anon_share).abs() < 0.02,
                "{}: anon share {share} vs {anon_share}",
                p.name
            );
        }
    }

    #[test]
    fn web_reaccess_is_fast_warehouse_slow() {
        // Figure 11: Web re-accesses ~80% of cold pages within 10 minutes;
        // Data Warehouse mostly allocates fresh pages instead.
        let web_anon = crate::region::WindowedRegion::new(web(10_000).regions[0].clone());
        let dw_anon = crate::region::WindowedRegion::new(data_warehouse(10_000).regions[0].clone());
        assert!(
            web_anon.cycle_ns() <= 11 * MINUTE,
            "web cycle {}",
            web_anon.cycle_ns()
        );
        assert!(dw_anon.cycle_ns() > web_anon.cycle_ns());
    }

    #[test]
    fn all_profiles_build_and_run() {
        let mut rng = SimRng::seed(1);
        for p in all_production(4_000).into_iter().chain([uniform(1_000)]) {
            let mut w = p.build();
            let mut accesses = 0usize;
            for i in 0..200u64 {
                let op = w.next_op(i * 1_000_000, &mut rng);
                accesses += op.access_count();
            }
            assert!(accesses > 200, "{} produced too few accesses", w.name());
            assert!(w.working_set_pages() > 900, "{}", w.name());
        }
    }

    #[test]
    fn distinct_pids_per_workload() {
        let mut profiles = all_production(1_000);
        profiles.push(kv_store(1_000));
        profiles.push(batch_analytics(1_000));
        profiles.push(thp_friendly(1_000));
        profiles.push(fragmenter(1_000));
        profiles.push(uniform(1_000));
        let pids: HashSet<_> = profiles.iter().map(|p| p.pid).collect();
        assert_eq!(pids.len(), profiles.len());
    }

    #[test]
    fn thp_friendly_footprint_is_huge_window_aligned() {
        for ws in [1_000, 6_000, 24_000, 100_000] {
            let p = thp_friendly(ws);
            assert_eq!(p.regions[0].pages % 512, 0, "ws {ws}");
            assert!(p.transient.is_none(), "no churn in the THP best case");
        }
    }

    #[test]
    fn fragmenter_churns_more_than_it_keeps() {
        let p = fragmenter(10_000);
        let t = p.transient.as_ref().expect("fragmenter must churn");
        assert!(t.allocs_per_op >= 1.0, "churn rate {}", t.allocs_per_op);
        assert!(
            t.range_pages > p.regions[0].pages,
            "churn range must be wider than the steady footprint"
        );
    }

    #[test]
    fn kv_store_is_extremely_skewed() {
        // Most traffic lands on a small fraction of the table.
        let mut w = kv_store(10_000).build();
        let mut rng = SimRng::seed(4);
        while w.in_warmup() {
            w.next_op(0, &mut rng);
        }
        let mut counts: std::collections::HashMap<Vpn, u32> = std::collections::HashMap::new();
        for i in 0..30_000u64 {
            let op = w.next_op(i * 500_000, &mut rng);
            for e in &op.events {
                if let WorkloadEvent::Access(a) = e {
                    if a.page_type.is_anon() && a.vpn.0 < 1 << 32 {
                        *counts.entry(a.vpn).or_default() += 1;
                    }
                }
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().map(|&c| c as u64).sum();
        let head: u64 = freqs
            .iter()
            .take(freqs.len() / 20 + 1)
            .map(|&c| c as u64)
            .sum();
        assert!(
            head as f64 / total as f64 > 0.3,
            "top-5% of pages got only {:.2} of traffic",
            head as f64 / total as f64
        );
    }

    #[test]
    fn batch_analytics_scans_with_little_reuse() {
        // The scan front moves quickly: the window cycles the dataset in
        // a handful of dwells.
        let w = batch_analytics(10_000);
        let data = crate::region::WindowedRegion::new(w.regions[0].clone());
        assert!(
            data.cycle_ns()
                <= 6 * crate::region::WindowedRegion::new(w.regions[0].clone())
                    .spec()
                    .dwell_ns,
            "scan cycle too slow: {}",
            data.cycle_ns()
        );
    }
}
