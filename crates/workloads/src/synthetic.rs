//! The generic synthetic workload: warm-up phase + windowed regions +
//! short-lived allocation churn, assembled from a [`WorkloadProfile`].

use tiered_mem::{PageType, Pid, Vpn};
use tiered_sim::{Access, AccessKind, Op, SimRng, Workload, WorkloadEvent};

use crate::region::{RegionSpec, WindowedRegion};
use crate::transient::TransientPool;

/// Sequential materialisation of regions at start-up (e.g. Web loading VM
/// binaries and bytecode into the page cache, paper §3.5/§6.2.1).
#[derive(Clone, Debug)]
pub struct WarmupSpec {
    /// Indices into the profile's region list, warmed in order.
    pub region_indices: Vec<usize>,
    /// Pages touched per warm-up op.
    pub pages_per_op: u32,
    /// CPU time per warm-up op.
    pub cpu_ns_per_op: u64,
    /// When `true`, regions warm proportionally in lock-step (each op
    /// advances whichever region is least-complete) instead of strictly
    /// in list order — services that populate their cache and working
    /// heap together.
    pub interleave: bool,
}

/// Short-lived allocation behaviour (request churn).
#[derive(Clone, Copy, Debug)]
pub struct TransientSpec {
    /// Expected fresh allocations per steady-state op (may be fractional).
    pub allocs_per_op: f64,
    /// Accesses to each fresh page right after allocation.
    pub touches_per_page: u32,
    /// Page lifetime before the workload frees it.
    pub lifetime_ns: u64,
    /// Size of the recycled VPN range.
    pub range_pages: u64,
}

/// Complete parameterisation of a synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Workload name (shows up in reports).
    pub name: String,
    /// Process id the workload runs as.
    pub pid: Pid,
    /// The long-lived regions.
    pub regions: Vec<RegionSpec>,
    /// Per-region access weights (same length as `regions`).
    pub region_weights: Vec<f64>,
    /// Page accesses per steady-state op.
    pub accesses_per_op: u32,
    /// CPU time per steady-state op (excluding memory stalls).
    pub cpu_ns_per_op: u64,
    /// Optional warm-up phase.
    pub warmup: Option<WarmupSpec>,
    /// Optional short-lived churn.
    pub transient: Option<TransientSpec>,
}

impl WorkloadProfile {
    /// Total working-set footprint in pages: long-lived regions plus the
    /// transient churn range. Machines must be sized against *this*, not
    /// just the region sum.
    pub fn working_set_pages(&self) -> u64 {
        let regions: u64 = self.regions.iter().map(|r| r.pages).sum();
        regions + self.transient.map_or(0, |t| t.range_pages)
    }

    /// Instantiates the runnable workload.
    ///
    /// # Panics
    ///
    /// Panics if weights and regions disagree in length, or any warm-up
    /// index is out of range.
    pub fn build(&self) -> SyntheticWorkload {
        assert_eq!(
            self.regions.len(),
            self.region_weights.len(),
            "one weight per region required"
        );
        if let Some(w) = &self.warmup {
            for &i in &w.region_indices {
                assert!(i < self.regions.len(), "warm-up region {i} out of range");
            }
        }
        let regions: Vec<WindowedRegion> = self
            .regions
            .iter()
            .cloned()
            .map(WindowedRegion::new)
            .collect();
        let pool = self
            .transient
            .map(|t| TransientPool::new(TRANSIENT_BASE_VPN, t.range_pages, t.lifetime_ns));
        let materialize_cursors = vec![0u64; regions.len()];
        SyntheticWorkload {
            profile: self.clone(),
            regions,
            pool,
            warmup_pos: self.warmup.as_ref().map(|_| (0, 0)),
            materialize_cursors,
            alloc_carry: 0.0,
            op_seq: 0,
        }
    }
}

/// Base VPN of the transient churn range (disjoint from all regions).
pub const TRANSIENT_BASE_VPN: u64 = 3 << 32;

/// A runnable synthetic workload (see [`WorkloadProfile`]).
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    profile: WorkloadProfile,
    regions: Vec<WindowedRegion>,
    pool: Option<TransientPool>,
    /// `(warm-up list position, page offset within that region)`;
    /// `None` once warm-up finished (or was never configured).
    warmup_pos: Option<(usize, u64)>,
    /// Per-region materialisation cursor: regions represent *allocated*
    /// memory, so every allocated page is touched at least once shortly
    /// after it comes into existence (the paper's workloads consume
    /// 95–98% of system capacity). Growth regions materialise
    /// progressively as they grow.
    materialize_cursors: Vec<u64>,
    /// Fractional-allocation accumulator for `allocs_per_op`.
    alloc_carry: f64,
    op_seq: u64,
}

impl SyntheticWorkload {
    /// Whether the workload is still in its warm-up phase.
    pub fn in_warmup(&self) -> bool {
        self.warmup_pos.is_some()
    }

    /// The regions, for inspection by tests and reports.
    pub fn regions(&self) -> &[WindowedRegion] {
        &self.regions
    }

    /// Live short-lived pages right now.
    pub fn transient_live(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.live_count())
    }

    fn warmup_op(&mut self) -> Op {
        let warmup = self
            .profile
            .warmup
            .clone()
            .expect("in warm-up without a spec");
        if warmup.interleave {
            return self.warmup_op_interleaved(&warmup);
        }
        let (mut list_pos, mut offset) = self.warmup_pos.expect("warm-up cursor missing");
        let mut events = Vec::with_capacity(warmup.pages_per_op as usize);
        for _ in 0..warmup.pages_per_op {
            let region_idx = warmup.region_indices[list_pos];
            let spec = self.regions[region_idx].spec();
            events.push(WorkloadEvent::Access(Access {
                pid: self.profile.pid,
                vpn: Vpn(spec.base_vpn + offset),
                kind: AccessKind::Load,
                page_type: spec.page_type,
            }));
            offset += 1;
            if offset >= spec.pages {
                offset = 0;
                list_pos += 1;
                if list_pos >= warmup.region_indices.len() {
                    self.warmup_pos = None;
                    for &r in &warmup.region_indices {
                        self.materialize_cursors[r] = self.regions[r].spec().pages;
                    }
                    return Op {
                        cpu_ns: warmup.cpu_ns_per_op,
                        events,
                    };
                }
            }
        }
        self.warmup_pos = Some((list_pos, offset));
        Op {
            cpu_ns: warmup.cpu_ns_per_op,
            events,
        }
    }

    /// Proportional warm-up: each page goes to the least-complete region,
    /// so all warmed regions finish together. Uses the materialisation
    /// cursors directly as progress markers.
    fn warmup_op_interleaved(&mut self, warmup: &WarmupSpec) -> Op {
        let mut events = Vec::with_capacity(warmup.pages_per_op as usize);
        for _ in 0..warmup.pages_per_op {
            // Pick the least-complete region by progress fraction.
            let mut best: Option<(usize, f64)> = None;
            for &r in &warmup.region_indices {
                let pages = self.regions[r].spec().pages;
                let cursor = self.materialize_cursors[r];
                if cursor >= pages {
                    continue;
                }
                let frac = cursor as f64 / pages as f64;
                if best.is_none_or(|(_, bf)| frac < bf) {
                    best = Some((r, frac));
                }
            }
            let Some((r, _)) = best else {
                self.warmup_pos = None;
                return Op {
                    cpu_ns: warmup.cpu_ns_per_op,
                    events,
                };
            };
            let spec = self.regions[r].spec();
            events.push(WorkloadEvent::Access(Access {
                pid: self.profile.pid,
                vpn: Vpn(spec.base_vpn + self.materialize_cursors[r]),
                kind: AccessKind::Load,
                page_type: spec.page_type,
            }));
            self.materialize_cursors[r] += 1;
        }
        Op {
            cpu_ns: warmup.cpu_ns_per_op,
            events,
        }
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn pid(&self) -> Pid {
        self.profile.pid
    }

    fn next_op(&mut self, now_ns: u64, rng: &mut SimRng) -> Op {
        if self.warmup_pos.is_some() {
            return self.warmup_op();
        }
        self.op_seq += 1;
        let mut events = Vec::with_capacity(self.profile.accesses_per_op as usize + 4);
        // Materialise newly allocated region pages (first-touch faults):
        // allocated memory is touched at least once, so working sets
        // occupy real capacity even where the hot window rarely visits.
        for (i, region) in self.regions.iter().enumerate() {
            let allocated = region.allocated_pages(now_ns);
            let cursor = &mut self.materialize_cursors[i];
            let mut burst = 0;
            while *cursor < allocated && burst < 16 {
                events.push(WorkloadEvent::Access(Access {
                    pid: self.profile.pid,
                    vpn: Vpn(region.spec().base_vpn + *cursor),
                    kind: AccessKind::Store,
                    page_type: region.spec().page_type,
                }));
                *cursor += 1;
                burst += 1;
            }
        }
        // Steady-state region traffic.
        for _ in 0..self.profile.accesses_per_op {
            let i = rng.weighted_index(&self.profile.region_weights);
            let (vpn, kind) = self.regions[i].sample(now_ns, rng);
            events.push(WorkloadEvent::Access(Access {
                pid: self.profile.pid,
                vpn,
                kind,
                page_type: self.regions[i].spec().page_type,
            }));
        }
        // Short-lived churn: expire old pages, allocate fresh ones.
        if let (Some(pool), Some(spec)) = (self.pool.as_mut(), self.profile.transient) {
            for vpn in pool.take_expired(now_ns) {
                events.push(WorkloadEvent::Free {
                    pid: self.profile.pid,
                    vpn,
                });
            }
            self.alloc_carry += spec.allocs_per_op;
            while self.alloc_carry >= 1.0 {
                self.alloc_carry -= 1.0;
                let Some(vpn) = pool.allocate(now_ns) else {
                    break;
                };
                for _ in 0..spec.touches_per_page {
                    events.push(WorkloadEvent::Access(Access {
                        pid: self.profile.pid,
                        vpn,
                        kind: AccessKind::Store,
                        page_type: PageType::Anon,
                    }));
                }
            }
            // Occasionally re-touch a live transient page (they are hot).
            if let Some(vpn) = pool.peek_live(self.op_seq) {
                events.push(WorkloadEvent::Access(Access {
                    pid: self.profile.pid,
                    vpn,
                    kind: AccessKind::Load,
                    page_type: PageType::Anon,
                }));
            }
        }
        Op {
            cpu_ns: self.profile.cpu_ns_per_op,
            events,
        }
    }

    fn working_set_pages(&self) -> u64 {
        let regions: u64 = self.profile.regions.iter().map(|r| r.pages).sum();
        let transient = self.profile.transient.map_or(0, |t| t.range_pages);
        regions + transient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_sim::{MS, SEC};

    fn tiny_profile(warmup: bool, transient: bool) -> WorkloadProfile {
        WorkloadProfile {
            name: "tiny".into(),
            pid: Pid(7),
            regions: vec![
                RegionSpec::steady(0, 100, PageType::Anon, 0.3),
                RegionSpec::steady(1 << 32, 200, PageType::File, 0.2),
            ],
            region_weights: vec![0.7, 0.3],
            accesses_per_op: 4,
            cpu_ns_per_op: 10_000,
            warmup: warmup.then(|| WarmupSpec {
                region_indices: vec![1],
                pages_per_op: 64,
                cpu_ns_per_op: 5_000,
                interleave: false,
            }),
            transient: transient.then_some(TransientSpec {
                allocs_per_op: 0.5,
                touches_per_page: 2,
                lifetime_ns: 10 * MS,
                range_pages: 50,
            }),
        }
    }

    #[test]
    fn warmup_touches_every_page_once_then_ends() {
        let mut w = tiny_profile(true, false).build();
        let mut rng = SimRng::seed(1);
        assert!(w.in_warmup());
        let mut touched = Vec::new();
        while w.in_warmup() {
            let op = w.next_op(0, &mut rng);
            for e in &op.events {
                if let WorkloadEvent::Access(a) = e {
                    assert_eq!(a.page_type, PageType::File);
                    touched.push(a.vpn);
                }
            }
        }
        assert_eq!(touched.len(), 200);
        // Sequential, each page exactly once.
        for (i, vpn) in touched.iter().enumerate() {
            assert_eq!(vpn.0, (1 << 32) + i as u64);
        }
        // Steady state afterwards: 4 window accesses plus a
        // materialisation burst for the anon region (it was not warmed).
        let op = w.next_op(SEC, &mut rng);
        assert_eq!(op.cpu_ns, 10_000);
        assert_eq!(op.access_count(), 4 + 16);
        // Materialisation finishes after a few ops and steady ops settle
        // at the configured access count.
        for _ in 0..16 {
            w.next_op(SEC, &mut rng);
        }
        let op = w.next_op(SEC, &mut rng);
        assert_eq!(op.access_count(), 4);
    }

    #[test]
    fn steady_ops_respect_region_weights_roughly() {
        let mut w = tiny_profile(false, false).build();
        let mut rng = SimRng::seed(2);
        let mut anon = 0u32;
        let mut file = 0u32;
        for i in 0..2000 {
            let op = w.next_op(i * MS, &mut rng);
            for e in &op.events {
                if let WorkloadEvent::Access(a) = e {
                    match a.page_type {
                        PageType::Anon => anon += 1,
                        _ => file += 1,
                    }
                }
            }
        }
        let frac = anon as f64 / (anon + file) as f64;
        assert!((0.65..0.75).contains(&frac), "anon frac {frac}");
    }

    #[test]
    fn transient_pages_churn_and_free() {
        let mut w = tiny_profile(false, true).build();
        let mut rng = SimRng::seed(3);
        let mut frees = 0u32;
        let mut transient_accesses = 0u32;
        for i in 0..400 {
            let op = w.next_op(i * MS, &mut rng);
            for e in &op.events {
                match e {
                    WorkloadEvent::Free { vpn, .. } => {
                        assert!(vpn.0 >= TRANSIENT_BASE_VPN);
                        frees += 1;
                    }
                    WorkloadEvent::Access(a) if a.vpn.0 >= TRANSIENT_BASE_VPN => {
                        transient_accesses += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(frees > 50, "only {frees} frees");
        assert!(transient_accesses > 100);
        // Pool stays bounded by its range.
        assert!(w.transient_live() <= 50);
    }

    #[test]
    fn working_set_hint_counts_regions_and_churn_range() {
        let w = tiny_profile(false, true).build();
        assert_eq!(w.working_set_pages(), 100 + 200 + 50);
        let w2 = tiny_profile(false, false).build();
        assert_eq!(w2.working_set_pages(), 300);
    }

    #[test]
    #[should_panic(expected = "one weight per region")]
    fn mismatched_weights_rejected() {
        let mut p = tiny_profile(false, false);
        p.region_weights.pop();
        p.build();
    }
}
