//! Short-lived allocation churn: request-processing pages that are
//! allocated, touched a few times, and freed within a minute.
//!
//! The paper leans on this behaviour twice: newly allocated pages are
//! "often related to request processing and, therefore, both short-lived
//! and hot" (§5.2 — why local allocation headroom matters), and Data
//! Warehouse's anon pages are mostly newly allocated rather than re-used
//! (§3.7).

use std::collections::VecDeque;

use tiered_mem::Vpn;

/// A pool of short-lived pages cycling through a dedicated VPN range.
///
/// # Examples
///
/// ```
/// use tiered_workloads::TransientPool;
///
/// let mut pool = TransientPool::new(1 << 32, 1024, 1_000_000);
/// let vpn = pool.allocate(0).expect("pool has room");
/// assert_eq!(pool.live_count(), 1);
/// let expired = pool.take_expired(2_000_000);
/// assert_eq!(expired, vec![vpn]);
/// assert_eq!(pool.live_count(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct TransientPool {
    base_vpn: u64,
    range: u64,
    lifetime_ns: u64,
    next: u64,
    live: VecDeque<(Vpn, u64)>,
}

impl TransientPool {
    /// Creates a pool cycling through `range` VPNs starting at `base_vpn`,
    /// freeing each page `lifetime_ns` after allocation.
    ///
    /// # Panics
    ///
    /// Panics if `range` or `lifetime_ns` is zero.
    pub fn new(base_vpn: u64, range: u64, lifetime_ns: u64) -> TransientPool {
        assert!(range > 0, "transient range must be positive");
        assert!(lifetime_ns > 0, "lifetime must be positive");
        TransientPool {
            base_vpn,
            range,
            lifetime_ns,
            next: 0,
            live: VecDeque::new(),
        }
    }

    /// Number of pages currently live.
    #[inline]
    pub fn live_count(&self) -> u64 {
        self.live.len() as u64
    }

    /// The page lifetime.
    #[inline]
    pub fn lifetime_ns(&self) -> u64 {
        self.lifetime_ns
    }

    /// Allocates a fresh page at `now_ns`, scheduling its free.
    ///
    /// Returns `None` when every VPN in the range is still live — the pool
    /// is *self-limiting*: once saturated, new allocations proceed only as
    /// old pages expire, so the steady-state churn rate is
    /// `range / lifetime` pages per unit time regardless of how fast the
    /// workload runs.
    pub fn allocate(&mut self, now_ns: u64) -> Option<Vpn> {
        if self.live_count() >= self.range {
            return None;
        }
        let vpn = Vpn(self.base_vpn + self.next % self.range);
        self.next += 1;
        self.live.push_back((vpn, now_ns + self.lifetime_ns));
        Some(vpn)
    }

    /// A random live page, if any (re-touching in-flight request state).
    pub fn peek_live(&self, salt: u64) -> Option<Vpn> {
        if self.live.is_empty() {
            return None;
        }
        let i = (salt as usize) % self.live.len();
        Some(self.live[i].0)
    }

    /// Removes and returns every page whose lifetime expired by `now_ns`.
    pub fn take_expired(&mut self, now_ns: u64) -> Vec<Vpn> {
        let mut out = Vec::new();
        while let Some(&(vpn, deadline)) = self.live.front() {
            if deadline > now_ns {
                break;
            }
            self.live.pop_front();
            out.push(vpn);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_distinct_while_live() {
        let mut pool = TransientPool::new(0, 100, 1000);
        let a = pool.allocate(0).unwrap();
        let b = pool.allocate(0).unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.live_count(), 2);
    }

    #[test]
    fn expiry_is_fifo_and_respects_deadlines() {
        let mut pool = TransientPool::new(0, 100, 1000);
        let a = pool.allocate(0).unwrap(); // expires at 1000
        let b = pool.allocate(500).unwrap(); // expires at 1500
        assert!(pool.take_expired(999).is_empty());
        assert_eq!(pool.take_expired(1000), vec![a]);
        assert_eq!(pool.take_expired(10_000), vec![b]);
        assert_eq!(pool.live_count(), 0);
    }

    #[test]
    fn vpns_recycle_after_expiry() {
        let mut pool = TransientPool::new(50, 2, 10);
        let a = pool.allocate(0).unwrap();
        let b = pool.allocate(0).unwrap();
        pool.take_expired(100);
        let c = pool.allocate(100).unwrap();
        assert_eq!(c, a); // wrapped around
        assert_ne!(c, b);
    }

    #[test]
    fn saturated_pool_declines_until_expiry() {
        let mut pool = TransientPool::new(0, 2, 100);
        assert!(pool.allocate(0).is_some());
        assert!(pool.allocate(0).is_some());
        assert_eq!(pool.allocate(0), None);
        pool.take_expired(100);
        assert!(pool.allocate(100).is_some());
    }

    #[test]
    fn peek_live_returns_member() {
        let mut pool = TransientPool::new(0, 16, 1000);
        assert_eq!(pool.peek_live(3), None);
        let a = pool.allocate(0).unwrap();
        let b = pool.allocate(0).unwrap();
        for salt in 0..10 {
            let v = pool.peek_live(salt).unwrap();
            assert!(v == a || v == b);
        }
    }
}
