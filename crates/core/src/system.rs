//! The system runner: drives one workload over one machine under one
//! placement policy, interleaving application ops with daemon ticks and
//! accounting every nanosecond of memory stall back into application
//! throughput.

use tiered_mem::{EventSink, Memory, PageFlags, PageLocation, Pfn, TraceEvent};
use tiered_sim::{
    Access, AccessKind, AccessObserver, LatencyModel, NullObserver, Periodic, SimClock, SimRng,
    Workload, WorkloadEvent,
};

use crate::metrics::RunMetrics;
use crate::policy::{PlacementPolicy, PolicyCtx, UnsupportedConfig};

/// A complete simulated system: machine + policy + workload.
///
/// # Examples
///
/// ```
/// use tiered_sim::SEC;
/// use tpp::{configs, policy::Tpp, System};
///
/// let workload = tiered_workloads::uniform(2_000).build();
/// let memory = configs::two_to_one(2_500);
/// let mut system = System::new(memory, Box::new(Tpp::new()), Box::new(workload), 42)?;
/// system.run(3 * SEC);
/// assert!(system.metrics().ops_completed > 0);
/// # Ok::<(), tpp::policy::UnsupportedConfig>(())
/// ```
pub struct System {
    memory: Memory,
    policy: Box<dyn PlacementPolicy>,
    workload: Box<dyn Workload>,
    latency: LatencyModel,
    clock: SimClock,
    rng: SimRng,
    daemon_timer: Periodic,
    sample_timer: Periodic,
    metrics: RunMetrics,
    /// Per-node access latency, indexed by `NodeId` — node latencies are
    /// fixed at machine-build time, so the access fast path reads this
    /// array instead of chasing `memory.node(node)` per access.
    node_latency_ns: Vec<u64>,
    /// Whether each node is CPU-attached, indexed by `NodeId`.
    node_is_local: Vec<bool>,
}

impl System {
    /// Assembles a system, validating the policy against the machine and
    /// registering the workload's process.
    ///
    /// # Errors
    ///
    /// [`UnsupportedConfig`] if the policy refuses the machine (e.g.
    /// AutoTiering on a 1:4 split).
    pub fn new(
        memory: Memory,
        policy: Box<dyn PlacementPolicy>,
        workload: Box<dyn Workload>,
        seed: u64,
    ) -> Result<System, UnsupportedConfig> {
        policy.validate_config(&memory)?;
        let mut memory = memory;
        memory.create_process(workload.pid());
        let daemon_timer = Periodic::new(policy.tick_period_ns());
        let mut system = System {
            memory,
            policy,
            workload,
            latency: LatencyModel::datacenter(),
            clock: SimClock::new(),
            rng: SimRng::seed(seed),
            daemon_timer,
            sample_timer: Periodic::new(RunMetrics::sample_period_ns()),
            metrics: RunMetrics::new(),
            node_latency_ns: Vec::new(),
            node_is_local: Vec::new(),
        };
        system.refresh_node_cache();
        Ok(system)
    }

    /// Rebuilds the per-node latency/locality arrays from the machine.
    /// Node latencies are only set during machine construction, but the
    /// refresh is cheap enough to rerun at the top of every `run` for
    /// robustness against future mutable-latency machines.
    fn refresh_node_cache(&mut self) {
        self.node_latency_ns.clear();
        self.node_is_local.clear();
        // Topology ids are dense and in index order (the builder asserts
        // it), so these arrays index directly by `NodeId`.
        for id in self.memory.topology().ids() {
            let node = self.memory.node(id);
            self.node_latency_ns.push(node.latency_ns());
            self.node_is_local.push(!node.is_cpu_less());
        }
    }

    /// Overrides the operation-cost model.
    pub fn set_latency_model(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// Attaches a telemetry sink to the machine: every counted memory
    /// event is also emitted as a timestamped trace record. Disabled by
    /// default (`NullSink`), in which case runs are bit-identical to
    /// untraced ones.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.memory.set_event_sink(sink);
    }

    /// Flushes the attached telemetry sink (for file-backed sinks).
    pub fn flush_trace(&mut self) {
        self.memory.flush_trace();
    }

    /// The machine state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Current simulated time.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Runs for `duration_ns` of simulated time.
    pub fn run(&mut self, duration_ns: u64) {
        self.run_observed(duration_ns, &mut NullObserver);
    }

    /// Runs for `duration_ns`, reporting every resolved access to `obs`
    /// (e.g. a Chameleon profiler).
    pub fn run_observed(&mut self, duration_ns: u64, obs: &mut dyn AccessObserver) {
        self.refresh_node_cache();
        let end = self.clock.now_ns() + duration_ns;
        // Trace timestamps advance with the clock below; seed the initial
        // value once rather than re-setting it at the top of every
        // iteration (it would only repeat the post-advance update).
        self.memory.set_trace_now(self.clock.now_ns());
        while self.clock.now_ns() < end {
            let now = self.clock.now_ns();
            let op = self.workload.next_op(now, &mut self.rng);
            let mut mem_ns = 0u64;
            for event in &op.events {
                match *event {
                    WorkloadEvent::Access(access) => {
                        mem_ns += self.execute_access(now, &access, obs);
                    }
                    WorkloadEvent::Free { pid, vpn } => {
                        self.memory.release(pid, vpn);
                    }
                }
            }
            let op_ns = op.cpu_ns + mem_ns;
            self.clock.advance(op_ns.max(1));
            self.metrics.note_op(op_ns, mem_ns);
            let now = self.clock.now_ns();
            self.memory.set_trace_now(now);
            // Daemon wakeups (capped catch-up after long ops).
            let fires = self.daemon_timer.fire(now).min(4);
            for _ in 0..fires {
                let mut ctx = PolicyCtx {
                    memory: &mut self.memory,
                    latency: &self.latency,
                    now_ns: now,
                    rng: &mut self.rng,
                };
                self.policy.tick(&mut ctx);
            }
            if self.sample_timer.fire(now) > 0 {
                self.metrics.sample(now, &self.memory);
            }
        }
    }

    /// Resolves one access exactly as the run loop would (for
    /// benchmarking the resolution hot path in isolation). Returns the
    /// latency charged to the op.
    pub fn resolve_access(&mut self, now_ns: u64, access: &Access) -> u64 {
        self.execute_access(now_ns, access, &mut NullObserver)
    }

    /// Resolves one access: fault if unmapped/swapped, hint-fault
    /// handling, reference bookkeeping. Returns the latency charged to
    /// the op.
    ///
    /// The overwhelmingly common case — page mapped, no hint PTE — is a
    /// branch-light fast path: one frame lookup resolves the node and
    /// flags, one write-back records the touch, and the per-node latency
    /// comes from the prebuilt arrays. Everything else (faults, hint
    /// faults) falls through to [`System::execute_access_slow`].
    fn execute_access(&mut self, now: u64, access: &Access, obs: &mut dyn AccessObserver) -> u64 {
        if let Some(PageLocation::Mapped(pfn)) = self.memory.space(access.pid).translate(access.vpn)
        {
            let frame = self.memory.frames_mut().frame_mut(pfn);
            if !frame.flags().contains(PageFlags::HINTED) {
                let mark = if access.kind == AccessKind::Store {
                    PageFlags::REFERENCED | PageFlags::DIRTY
                } else {
                    PageFlags::REFERENCED
                };
                frame.flags_mut().insert(mark);
                frame.touch_hotness();
                frame.set_last_access_ns(now);
                let node = frame.node();
                // A touch anywhere in a compound page keeps the whole
                // unit warm: only the head has LRU standing, so tail
                // accesses forward their marks to it (the kernel's
                // `page_referenced` collects young bits over every PTE of
                // a THP).
                if frame.flags().contains(PageFlags::TAIL) {
                    let head = self.memory.compound_head(pfn);
                    let head_frame = self.memory.frames_mut().frame_mut(head);
                    head_frame.flags_mut().insert(mark);
                    head_frame.touch_hotness();
                    head_frame.set_last_access_ns(now);
                }
                let node_latency = self.node_latency_ns[node.index()];
                self.metrics.note_access(
                    self.node_is_local[node.index()],
                    access.page_type.is_anon(),
                    node_latency,
                );
                obs.on_access(now, access, node);
                // One workload access stands for a bundle of LLC misses
                // (see `LatencyModel::access_bundle`); metrics record the
                // per-miss latency, the op is charged the whole stall.
                return node_latency * self.latency.access_bundle;
            }
        }
        self.execute_access_slow(now, access, obs)
    }

    /// The uncommon cases: page fault (first touch or swap-in) and NUMA
    /// hint faults, both of which need a [`PolicyCtx`].
    fn execute_access_slow(
        &mut self,
        now: u64,
        access: &Access,
        obs: &mut dyn AccessObserver,
    ) -> u64 {
        let mut cost = 0u64;
        let mut pfn = match self.memory.space(access.pid).translate(access.vpn) {
            Some(PageLocation::Mapped(pfn)) => pfn,
            _ => {
                let mut ctx = PolicyCtx {
                    memory: &mut self.memory,
                    latency: &self.latency,
                    now_ns: now,
                    rng: &mut self.rng,
                };
                let out =
                    self.policy
                        .handle_fault(&mut ctx, access.pid, access.vpn, access.page_type);
                cost += out.cost_ns;
                out.pfn
            }
        };
        // NUMA hint fault?
        if self
            .memory
            .frames()
            .frame(pfn)
            .flags()
            .contains(PageFlags::HINTED)
        {
            self.memory
                .frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .remove(PageFlags::HINTED);
            let hint_node = self.memory.frames().frame(pfn).node();
            self.memory.record(TraceEvent::HintFault {
                page: tiered_mem::PageKey::new(access.pid, access.vpn),
                node: hint_node,
            });
            cost += self.latency.hint_fault_ns;
            let mut ctx = PolicyCtx {
                memory: &mut self.memory,
                latency: &self.latency,
                now_ns: now,
                rng: &mut self.rng,
            };
            cost += self.policy.on_hint_fault(&mut ctx, pfn);
            // The policy may have migrated the page.
            pfn = match self.memory.space(access.pid).translate(access.vpn) {
                Some(PageLocation::Mapped(p)) => p,
                other => panic!("page vanished during hint fault: {other:?}"),
            };
        }
        self.touch(now, pfn, access.kind);
        let node = self.memory.frames().frame(pfn).node();
        let node_latency = self.memory.node(node).latency_ns();
        // One workload access stands for a bundle of LLC misses (see
        // `LatencyModel::access_bundle`); metrics record the per-miss
        // latency, the op is charged the whole stall.
        cost += node_latency * self.latency.access_bundle;
        let is_local = !self.memory.node(node).is_cpu_less();
        self.metrics
            .note_access(is_local, access.page_type.is_anon(), node_latency);
        obs.on_access(now, access, node);
        cost
    }

    fn touch(&mut self, now: u64, pfn: Pfn, kind: AccessKind) {
        let mark = if kind == AccessKind::Store {
            PageFlags::REFERENCED | PageFlags::DIRTY
        } else {
            PageFlags::REFERENCED
        };
        let frame = self.memory.frames_mut().frame_mut(pfn);
        frame.flags_mut().insert(mark);
        frame.touch_hotness();
        frame.set_last_access_ns(now);
        // Tail touches keep the whole compound warm (see the fast path).
        if frame.flags().contains(PageFlags::TAIL) {
            let head = self.memory.compound_head(pfn);
            let head_frame = self.memory.frames_mut().frame_mut(head);
            head_frame.flags_mut().insert(mark);
            head_frame.touch_hotness();
            head_frame.set_last_access_ns(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use crate::policy::{LinuxDefault, Tpp};
    use tiered_mem::NodeId;
    use tiered_sim::SEC;

    fn quick_system(policy: Box<dyn PlacementPolicy>) -> System {
        let workload = tiered_workloads::uniform(2_000).build();
        let memory = configs::two_to_one(2_500);
        System::new(memory, policy, Box::new(workload), 7).unwrap()
    }

    #[test]
    fn run_completes_ops_and_advances_time() {
        let mut s = quick_system(Box::new(LinuxDefault::new()));
        s.run(2 * SEC);
        assert!(s.now_ns() >= 2 * SEC);
        assert!(s.metrics().ops_completed > 1000);
        assert!(s.metrics().accesses > 1000);
        s.memory().validate();
    }

    #[test]
    fn metrics_sampled_once_per_second() {
        let mut s = quick_system(Box::new(LinuxDefault::new()));
        s.run(3 * SEC);
        assert!((3..=4).contains(&s.metrics().throughput.len()));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = quick_system(Box::new(Tpp::new()));
            s.run(SEC);
            (s.metrics().ops_completed, s.metrics().accesses, s.now_ns())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn working_set_materialises_on_the_machine() {
        let mut s = quick_system(Box::new(LinuxDefault::new()));
        s.run(2 * SEC);
        let used: u64 = (0..s.memory().node_count())
            .map(|i| s.memory().frames().used_pages(NodeId(i as u8)))
            .sum();
        assert!(used > 500, "only {used} pages materialised");
    }

    #[test]
    fn observer_sees_every_access() {
        struct Counter(u64);
        impl AccessObserver for Counter {
            fn on_access(&mut self, _: u64, _: &Access, _: NodeId) {
                self.0 += 1;
            }
        }
        let mut s = quick_system(Box::new(LinuxDefault::new()));
        let mut counter = Counter(0);
        s.run_observed(SEC, &mut counter);
        assert_eq!(counter.0, s.metrics().accesses);
    }
}
