//! Machine configurations matching the paper's evaluation setups (§6.1):
//! an all-local baseline, the 2:1 production target, and the 1:4 memory
//! expansion configuration.

use tiered_mem::{Memory, NodeKind};

/// Headroom factor: the paper's workloads consume 95–98% of system
/// capacity, so machines are sized ~5% above the working set.
const CAPACITY_SLACK_PCT: u64 = 105;

/// The "all from local" baseline: a single CPU-attached node large enough
/// to hold the entire working set comfortably.
pub fn all_local(ws_pages: u64) -> Memory {
    let cap = ws_pages * 120 / 100;
    Memory::builder()
        .node(NodeKind::LocalDram, cap.max(64))
        .swap_pages(ws_pages * 4)
        .build()
}

/// A machine with `local_parts : cxl_parts` capacity split, sized so the
/// total is ~105% of the working set.
pub fn ratio(ws_pages: u64, local_parts: u64, cxl_parts: u64) -> Memory {
    assert!(local_parts > 0 && cxl_parts > 0, "both tiers need capacity");
    let total = ws_pages * CAPACITY_SLACK_PCT / 100;
    let local = total * local_parts / (local_parts + cxl_parts);
    let cxl = total - local;
    Memory::builder()
        .node(NodeKind::LocalDram, local.max(64))
        .node(NodeKind::Cxl, cxl.max(64))
        .swap_pages(ws_pages * 4)
        .build()
}

/// The production target: local:CXL = 2:1 (§6.2.1).
pub fn two_to_one(ws_pages: u64) -> Memory {
    ratio(ws_pages, 2, 1)
}

/// The memory-expansion stress setup: local:CXL = 1:4, i.e. the local
/// node holds only ~20% of the working set (§6.2.2).
pub fn one_to_four(ws_pages: u64) -> Memory {
    ratio(ws_pages, 1, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::NodeId;

    #[test]
    fn ratios_split_capacity_as_labelled() {
        let m = two_to_one(30_000);
        let local = m.capacity(NodeId(0));
        let cxl = m.capacity(NodeId(1));
        let r = local as f64 / cxl as f64;
        assert!((1.9..2.1).contains(&r), "2:1 ratio got {r}");

        let m = one_to_four(30_000);
        let r = m.capacity(NodeId(1)) as f64 / m.capacity(NodeId(0)) as f64;
        assert!((3.9..4.1).contains(&r), "1:4 ratio got {r}");
    }

    #[test]
    fn total_capacity_slightly_exceeds_working_set() {
        for m in [two_to_one(50_000), one_to_four(50_000)] {
            let total = m.total_capacity();
            assert!(total > 50_000);
            assert!(total < 60_000);
        }
    }

    #[test]
    fn all_local_is_single_node() {
        let m = all_local(10_000);
        assert_eq!(m.node_count(), 1);
        assert!(m.capacity(NodeId(0)) >= 12_000);
        assert!(m.cxl_nodes().is_empty());
    }

    #[test]
    fn tiny_working_sets_get_floor_capacity() {
        let m = ratio(100, 1, 4);
        assert!(m.capacity(NodeId(0)) >= 64);
    }
}
