//! Machine configurations matching the paper's evaluation setups (§6.1):
//! an all-local baseline, the 2:1 production target, and the 1:4 memory
//! expansion configuration — plus multi-socket/multi-CXL topology presets
//! built on [`tiered_mem::Topology`].

use tiered_mem::{Memory, NodeKind, Topology};

/// Headroom factor: the paper's workloads consume 95–98% of system
/// capacity, so machines are sized ~5% above the working set.
const CAPACITY_SLACK_PCT: u64 = 105;

/// The "all from local" baseline: a single CPU-attached node large enough
/// to hold the entire working set comfortably.
pub fn all_local(ws_pages: u64) -> Memory {
    let cap = ws_pages * 120 / 100;
    Memory::builder()
        .node(NodeKind::LocalDram, cap.max(64))
        .swap_pages(ws_pages * 4)
        .build()
}

/// A machine with `local_parts : cxl_parts` capacity split, sized so the
/// total is ~105% of the working set.
pub fn ratio(ws_pages: u64, local_parts: u64, cxl_parts: u64) -> Memory {
    assert!(local_parts > 0 && cxl_parts > 0, "both tiers need capacity");
    let total = ws_pages * CAPACITY_SLACK_PCT / 100;
    let local = total * local_parts / (local_parts + cxl_parts);
    let cxl = total - local;
    Memory::builder()
        .node(NodeKind::LocalDram, local.max(64))
        .node(NodeKind::Cxl, cxl.max(64))
        .swap_pages(ws_pages * 4)
        .build()
}

/// The production target: local:CXL = 2:1 (§6.2.1).
pub fn two_to_one(ws_pages: u64) -> Memory {
    ratio(ws_pages, 2, 1)
}

/// The memory-expansion stress setup: local:CXL = 1:4, i.e. the local
/// node holds only ~20% of the working set (§6.2.2).
pub fn one_to_four(ws_pages: u64) -> Memory {
    ratio(ws_pages, 1, 4)
}

/// `2s2c`: two CPU sockets, each with a direct-attached CXL expander.
///
/// Node layout: 0 = DRAM socket A, 1 = DRAM socket B, 2 = expander on A,
/// 3 = expander on B. Distances follow a real two-socket board: the own
/// expander (14) is closer than the peer socket (21), the peer's expander
/// (24) is further still. Each socket's demotions must therefore land on
/// *its own* expander, not a shared node 1.
pub fn two_socket_two_cxl(ws_pages: u64) -> Memory {
    let total = ws_pages * CAPACITY_SLACK_PCT / 100;
    let dram = (total / 3).max(64);
    let cxl = (total / 6).max(64);
    let mut t = Topology::new();
    let a = t.node(NodeKind::LocalDram, dram);
    let b = t.node(NodeKind::LocalDram, dram);
    let xa = t.node(NodeKind::Cxl, cxl);
    let xb = t.node(NodeKind::Cxl, cxl);
    t.set_distance(a, b, 21);
    t.set_distance(a, xa, 14);
    t.set_distance(b, xb, 14);
    t.set_distance(a, xb, 24);
    t.set_distance(b, xa, 24);
    t.set_distance(xa, xb, 28);
    Memory::builder()
        .topology(t)
        .swap_pages(ws_pages * 4)
        .build()
}

/// `pooled`: one socket backed by a switch-attached CXL memory pool.
///
/// The pool is a [`NodeKind::CxlSwitched`] node: higher access latency,
/// two link hops per migration, and a larger NUMA distance (30) than a
/// direct expander would have.
pub fn pooled(ws_pages: u64) -> Memory {
    let total = ws_pages * CAPACITY_SLACK_PCT / 100;
    let dram = (total / 3).max(64);
    let pool = (total - total / 3).max(64);
    let mut t = Topology::new();
    let d = t.node(NodeKind::LocalDram, dram);
    let p = t.node(NodeKind::CxlSwitched, pool);
    t.set_distance(d, p, 30);
    Memory::builder()
        .topology(t)
        .swap_pages(ws_pages * 4)
        .build()
}

/// `3tier`: DRAM → direct CXL expander → switch-attached pool.
///
/// Demotions cascade: the DRAM node's nearest lower tier is the direct
/// expander (distance 14), which in turn demotes into the pool (20); the
/// pool is terminal and falls back to default reclaim.
pub fn three_tier(ws_pages: u64) -> Memory {
    let total = ws_pages * CAPACITY_SLACK_PCT / 100;
    let dram = (total * 2 / 5).max(64);
    let near = (total * 2 / 5).max(64);
    let far = (total - total * 2 / 5 * 2).max(64);
    let mut t = Topology::new();
    let d = t.node(NodeKind::LocalDram, dram);
    let n = t.node(NodeKind::Cxl, near);
    let f = t.node(NodeKind::CxlSwitched, far);
    t.set_distance(d, n, 14);
    t.set_distance(d, f, 30);
    t.set_distance(n, f, 20);
    Memory::builder()
        .topology(t)
        .swap_pages(ws_pages * 4)
        .build()
}

/// The topology preset names accepted by [`topology_preset`], in the
/// order the `repro topology` experiments run them.
pub fn topology_preset_names() -> &'static [&'static str] {
    &["2s2c", "pooled", "3tier"]
}

/// Builds a machine from a topology preset name.
///
/// # Panics
///
/// Panics on a name not in [`topology_preset_names`].
pub fn topology_preset(name: &str, ws_pages: u64) -> Memory {
    match name {
        "2s2c" => two_socket_two_cxl(ws_pages),
        "pooled" => pooled(ws_pages),
        "3tier" => three_tier(ws_pages),
        other => panic!("unknown topology preset {other:?} (try 2s2c, pooled, 3tier)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::NodeId;

    #[test]
    fn ratios_split_capacity_as_labelled() {
        let m = two_to_one(30_000);
        let local = m.capacity(NodeId(0));
        let cxl = m.capacity(NodeId(1));
        let r = local as f64 / cxl as f64;
        assert!((1.9..2.1).contains(&r), "2:1 ratio got {r}");

        let m = one_to_four(30_000);
        let r = m.capacity(NodeId(1)) as f64 / m.capacity(NodeId(0)) as f64;
        assert!((3.9..4.1).contains(&r), "1:4 ratio got {r}");
    }

    #[test]
    fn total_capacity_slightly_exceeds_working_set() {
        for m in [two_to_one(50_000), one_to_four(50_000)] {
            let total = m.total_capacity();
            assert!(total > 50_000);
            assert!(total < 60_000);
        }
    }

    #[test]
    fn all_local_is_single_node() {
        let m = all_local(10_000);
        assert_eq!(m.node_count(), 1);
        assert!(m.capacity(NodeId(0)) >= 12_000);
        assert!(m.cxl_nodes().is_empty());
    }

    #[test]
    fn tiny_working_sets_get_floor_capacity() {
        let m = ratio(100, 1, 4);
        assert!(m.capacity(NodeId(0)) >= 64);
    }

    #[test]
    fn two_socket_preset_demotes_to_own_expander() {
        let m = two_socket_two_cxl(40_000);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.local_nodes().as_slice(), &[NodeId(0), NodeId(1)]);
        // Socket A prefers its own expander, then the peer's.
        assert_eq!(
            m.node(NodeId(0)).demotion_order().as_slice(),
            &[NodeId(2), NodeId(3)]
        );
        assert_eq!(
            m.node(NodeId(1)).demotion_order().as_slice(),
            &[NodeId(3), NodeId(2)]
        );
        // Allocation fallback from socket B: itself, peer socket, own
        // expander order by distance (B=10, A=21, xB=14, xA=24).
        assert_eq!(
            m.fallback_order(NodeId(1)).as_slice(),
            &[NodeId(1), NodeId(3), NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn pooled_preset_is_switch_attached() {
        let m = pooled(10_000);
        assert_eq!(m.node_count(), 2);
        assert!(m.node(NodeId(1)).is_cpu_less());
        assert_eq!(m.migrate_hops(NodeId(0), NodeId(1)), 2);
        assert!(m.node(NodeId(1)).latency_ns() > 200);
    }

    #[test]
    fn three_tier_preset_cascades_demotions() {
        let m = three_tier(20_000);
        assert_eq!(m.node_count(), 3);
        assert_eq!(
            m.node(NodeId(0)).demotion_order().as_slice(),
            &[NodeId(1), NodeId(2)]
        );
        assert_eq!(m.node(NodeId(1)).demotion_order().as_slice(), &[NodeId(2)]);
        assert!(m.node(NodeId(2)).demotion_order().is_empty());
    }

    #[test]
    fn preset_dispatch_matches_names() {
        for &name in topology_preset_names() {
            let m = topology_preset(name, 5_000);
            assert!(m.total_capacity() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "unknown topology preset")]
    fn unknown_preset_panics() {
        topology_preset("4s4c", 1_000);
    }
}
