//! The default Linux kernel policy (paper §4.1): coupled allocation and
//! reclamation around the classic watermarks, paging out to the swap
//! device, allocation spilling to the next NUMA node under pressure — and
//! no promotion mechanism at all, so pages allocated to the CXL node stay
//! there forever.

use tiered_mem::{
    Memory, NodeId, PageFlags, PageKey, PageLocation, PageType, Pfn, Pid, ThpMode, TraceEvent, Vpn,
    HUGE_PAGE_FRAMES,
};
use tiered_sim::{LatencyModel, MS};

use super::huge::{run_huge_daemons, HugeConfig, HugeState};
use super::reclaim::{select_victims_into, DaemonBudget, ReclaimScratch, VictimClass};
use super::{FaultOutcome, PlacementPolicy, PolicyCtx};

/// Configuration for [`LinuxDefault`].
#[derive(Clone, Copy, Debug)]
pub struct LinuxDefaultConfig {
    /// kswapd's per-wakeup budget.
    pub kswapd_budget: DaemonBudget,
    /// Daemon wakeup period.
    pub tick_period_ns: u64,
    /// Huge-page daemon knobs (khugepaged/kcompactd); inert unless the
    /// machine runs with a [`ThpMode`] other than `Never`.
    pub huge: HugeConfig,
}

impl Default for LinuxDefaultConfig {
    fn default() -> LinuxDefaultConfig {
        LinuxDefaultConfig {
            kswapd_budget: DaemonBudget::kswapd(),
            tick_period_ns: 50 * MS,
            huge: HugeConfig::default(),
        }
    }
}

/// Default Linux page placement.
#[derive(Clone, Debug, Default)]
pub struct LinuxDefault {
    config: LinuxDefaultConfig,
    kswapd_active: Vec<bool>,
    huge_state: HugeState,
}

impl LinuxDefault {
    /// Creates the policy with default knobs.
    pub fn new() -> LinuxDefault {
        LinuxDefault::with_config(LinuxDefaultConfig::default())
    }

    /// Creates the policy with explicit knobs.
    pub fn with_config(config: LinuxDefaultConfig) -> LinuxDefault {
        LinuxDefault {
            config,
            kswapd_active: Vec::new(),
            huge_state: HugeState::default(),
        }
    }
}

impl PlacementPolicy for LinuxDefault {
    fn name(&self) -> &str {
        "linux"
    }

    fn handle_fault(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> FaultOutcome {
        let prefer = ctx.memory.home_node(pid);
        fault_with_fallback(ctx, pid, vpn, page_type, prefer, "linux")
    }

    fn tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        // kswapd: one pass per node whose reclaimer is (or becomes) awake.
        self.kswapd_active.resize(ctx.memory.node_count(), false);
        for i in 0..ctx.memory.node_count() {
            let node = NodeId(i as u8);
            kswapd_pass(
                ctx.memory,
                ctx.latency,
                node,
                self.config.kswapd_budget,
                &mut self.kswapd_active[i],
            );
        }
        run_huge_daemons(ctx, &self.config.huge, &mut self.huge_state);
    }

    fn tick_period_ns(&self) -> u64 {
        self.config.tick_period_ns
    }
}

// ---------------------------------------------------------------------
// Shared mechanics, reused by the other policies.
// ---------------------------------------------------------------------

/// Cost charged to a faulting task for materialising a page of
/// `page_type` (`was_swapped` selects the swap-in path).
///
/// File pages are read from the filesystem on (re-)fault — a device read,
/// not a zero-fill — which is why dropping page cache that will be
/// re-accessed is expensive, and why TPP's keep-it-in-memory demotion
/// wins (§5.1).
pub(crate) fn materialise_cost_ns(
    latency: &LatencyModel,
    page_type: PageType,
    was_swapped: bool,
) -> u64 {
    if was_swapped {
        latency.swap_in_total_ns()
    } else {
        match page_type {
            PageType::File => latency.major_fault_ns + latency.swap_in_page_ns,
            PageType::Anon | PageType::Tmpfs => latency.minor_fault_ns,
        }
    }
}

/// The default-kernel fault path: try each node in fallback order above
/// its `min` watermark; fall back to direct reclaim on the preferred node
/// when everything is below `min`. `policy` attributes the spill/stall
/// decision events emitted along the way.
pub(crate) fn fault_with_fallback(
    ctx: &mut PolicyCtx<'_>,
    pid: Pid,
    vpn: Vpn,
    page_type: PageType,
    prefer: NodeId,
    policy: &'static str,
) -> FaultOutcome {
    let was_swapped = matches!(
        ctx.memory.space(pid).translate(vpn),
        Some(PageLocation::Swapped(_))
    );
    let base_cost = materialise_cost_ns(ctx.latency, page_type, was_swapped);
    let order = ctx.memory.fallback_order(prefer);
    // THP at fault time (`ThpMode::Always`): an anon first-touch fault
    // whose aligned 512-page window is entirely unmapped gets a compound
    // page on the first node in fallback order that has watermark room
    // for the whole block. Fragmentation (no aligned free block) or
    // pressure falls through to the base-page path below.
    if ctx.memory.thp_mode() == ThpMode::Always && page_type.is_anon() && !was_swapped {
        let base = Vpn(vpn.0 & !(HUGE_PAGE_FRAMES - 1));
        if window_unmapped(ctx.memory, pid, base) {
            for node in &order {
                let free = ctx.memory.free_pages(*node);
                let wm = ctx.memory.node(*node).watermarks().base;
                if !wm.allows_allocation(free.saturating_sub(HUGE_PAGE_FRAMES - 1)) {
                    continue;
                }
                if let Ok(head) = ctx.memory.alloc_huge_and_map(*node, pid, base, page_type) {
                    ctx.memory.record(TraceEvent::Fault {
                        page: PageKey::new(pid, vpn),
                        major: false,
                    });
                    if *node != prefer && ctx.memory.trace_enabled() {
                        ctx.memory.record(TraceEvent::Decision {
                            policy,
                            reason: "alloc_spill_below_watermark",
                            page: Some(PageKey::new(pid, vpn)),
                        });
                    }
                    return FaultOutcome {
                        pfn: Pfn(head.0 + (vpn.0 - base.0) as u32),
                        cost_ns: base_cost,
                    };
                }
            }
        }
    }
    for node in &order {
        let wm = ctx.memory.node(*node).watermarks().base;
        if !wm.allows_allocation(ctx.memory.free_pages(*node)) {
            continue;
        }
        if let Some(pfn) = try_place(ctx.memory, *node, pid, vpn, page_type, was_swapped) {
            if *node != prefer && ctx.memory.trace_enabled() {
                // Allocation spilled past the preferred node's watermark —
                // the §4.1 failure mode TPP's headroom exists to avoid.
                ctx.memory.record(TraceEvent::Decision {
                    policy,
                    reason: "alloc_spill_below_watermark",
                    page: Some(PageKey::new(pid, vpn)),
                });
            }
            return FaultOutcome {
                pfn,
                cost_ns: base_cost,
            };
        }
    }
    // Every node is under its min watermark: direct reclaim on the
    // preferred node, charged to the task.
    ctx.memory.record(TraceEvent::AllocStall { node: prefer });
    ctx.memory.record(TraceEvent::Decision {
        policy,
        reason: "alloc_stall_direct_reclaim",
        page: Some(PageKey::new(pid, vpn)),
    });
    let reclaim_cost = direct_reclaim(ctx.memory, ctx.latency, prefer, 32);
    for node in &order {
        if let Some(pfn) = try_place(ctx.memory, *node, pid, vpn, page_type, was_swapped) {
            return FaultOutcome {
                pfn,
                cost_ns: base_cost + reclaim_cost,
            };
        }
    }
    panic!("simulated OOM: no node can host {pid}:{vpn} even after direct reclaim");
}

/// Whether the whole aligned 512-page window at `base` is unmapped (a
/// swap entry counts as mapped — swapped pages must come back as base
/// pages so their contents survive).
fn window_unmapped(memory: &Memory, pid: Pid, base: Vpn) -> bool {
    let space = memory.space(pid);
    (0..HUGE_PAGE_FRAMES).all(|i| space.translate(Vpn(base.0 + i)).is_none())
}

/// Attempts the actual placement on `node` (swap-in or fresh mapping).
pub(crate) fn try_place(
    memory: &mut Memory,
    node: NodeId,
    pid: Pid,
    vpn: Vpn,
    page_type: PageType,
    was_swapped: bool,
) -> Option<Pfn> {
    memory.record(TraceEvent::Fault {
        page: PageKey::new(pid, vpn),
        major: was_swapped,
    });
    let res = if was_swapped {
        memory.swap_in(pid, vpn, node, page_type)
    } else {
        memory.alloc_and_map(node, pid, vpn, page_type)
    };
    res.ok()
}

/// Evicts one page the default-kernel way. Returns the daemon time spent,
/// or `None` if the page could not be evicted (swap full).
///
/// * anon and tmpfs pages are written to swap,
/// * dirty file pages pay a writeback before being dropped,
/// * clean file pages are dropped for free.
pub(crate) fn evict_page(memory: &mut Memory, latency: &LatencyModel, pfn: Pfn) -> Option<u64> {
    let frame = memory.frames().frame(pfn);
    let page_type = frame.page_type();
    let dirty = frame.flags().contains(PageFlags::DIRTY);
    let node = frame.node();
    let page = frame.owner().expect("eviction victim is allocated");
    match page_type {
        PageType::Anon | PageType::Tmpfs => match memory.swap_out(pfn) {
            Ok(_) => {
                memory.record(TraceEvent::ReclaimSteal { page, node });
                Some(latency.swap_out_page_ns)
            }
            Err(_) => None,
        },
        PageType::File => {
            memory.drop_file_page(pfn);
            memory.record(TraceEvent::ReclaimSteal { page, node });
            Some(if dirty {
                latency.swap_out_page_ns
            } else {
                latency.scan_page_ns
            })
        }
    }
}

/// One kswapd wakeup on `node`, with wake/sleep hysteresis carried in
/// `active`: kswapd wakes when free pages drop below `low` and keeps
/// processing one scan batch per wakeup until free pages reach a boosted
/// target slightly *above* `high` — which is what lets NUMA balancing's
/// `free > high` promotion check occasionally pass on a busy node.
///
/// Each wakeup processes a *single* batch (`SWAP_CLUSTER_MAX`-style),
/// bounded by both the scan and time budgets — the kernel's
/// priority-based throttling, and what allocation surges outrun (§4.1:
/// "with high allocation rate, reclamation may fail to cope up").
pub(crate) fn kswapd_pass(
    memory: &mut Memory,
    latency: &LatencyModel,
    node: NodeId,
    budget: DaemonBudget,
    active: &mut bool,
) -> u64 {
    let wm = memory.node(node).watermarks().base;
    let free = memory.free_pages(node);
    let boost_target = wm.high + (wm.high - wm.low).max(1);
    if !*active {
        if !wm.needs_reclaim(free) {
            return 0;
        }
        *active = true;
        if memory.trace_enabled() {
            memory.record(TraceEvent::WatermarkCross {
                node,
                level: "low",
                free,
                below: true,
            });
            memory.record(TraceEvent::DaemonWake {
                daemon: "kswapd",
                node: Some(node),
            });
        }
    } else if free >= boost_target {
        *active = false;
        if memory.trace_enabled() {
            memory.record(TraceEvent::WatermarkCross {
                node,
                level: "high_boost",
                free,
                below: false,
            });
        }
        return 0;
    }
    let mut time_left = budget.time_ns;
    let mut reclaimed = 0u64;
    let want = (boost_target.saturating_sub(free)).min(32) as usize;
    let mut scratch = ReclaimScratch::from_pool(memory);
    select_victims_into(
        memory,
        node,
        want,
        budget.scan_pages as usize,
        VictimClass::AnonAndFile,
        &mut scratch,
    );
    for i in 0..scratch.victims.len() {
        let pfn = scratch.victims[i];
        match evict_page(memory, latency, pfn) {
            Some(cost) if cost <= time_left => {
                time_left -= cost;
                reclaimed += 1;
            }
            Some(_) | None => break,
        }
    }
    scratch.into_pool(memory);
    reclaimed
}

/// Synchronous direct reclaim of up to `want` pages on `node`; returns
/// the latency charged to the allocating task.
///
/// Escalates the scan budget (the kernel's reclaim-priority analogue)
/// until at least one page is freed or the whole node has been scanned —
/// direct reclaim must make forward progress or the allocation OOMs.
pub(crate) fn direct_reclaim(
    memory: &mut Memory,
    latency: &LatencyModel,
    node: NodeId,
    want: usize,
) -> u64 {
    let mut cost = 0u64;
    let node_pages = memory.capacity(node) as usize;
    let mut scan_budget = want * 8;
    let mut scratch = ReclaimScratch::from_pool(memory);
    loop {
        select_victims_into(
            memory,
            node,
            want,
            scan_budget,
            VictimClass::AnonAndFile,
            &mut scratch,
        );
        let mut freed = 0usize;
        for i in 0..scratch.victims.len() {
            if let Some(c) = evict_page(memory, latency, scratch.victims[i]) {
                cost += c;
                freed += 1;
            }
        }
        if freed > 0 || scan_budget >= node_pages {
            scratch.into_pool(memory);
            return cost;
        }
        scan_budget = (scan_budget * 8).min(node_pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::NodeKind;
    use tiered_mem::VmEvent;
    use tiered_sim::SimRng;

    fn ctx_parts() -> (Memory, LatencyModel, SimRng) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 64)
            .node(NodeKind::Cxl, 256)
            .swap_pages(1024)
            .build();
        m.create_process(Pid(1));
        (m, LatencyModel::datacenter(), SimRng::seed(7))
    }

    fn fault(
        policy: &mut LinuxDefault,
        m: &mut Memory,
        lat: &LatencyModel,
        rng: &mut SimRng,
        vpn: u64,
        t: PageType,
    ) -> FaultOutcome {
        let mut ctx = PolicyCtx {
            memory: m,
            latency: lat,
            now_ns: 0,
            rng,
        };
        policy.handle_fault(&mut ctx, Pid(1), Vpn(vpn), t)
    }

    #[test]
    fn faults_fill_local_node_first() {
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 0, PageType::Anon);
        assert_eq!(m.frames().frame(out.pfn).node(), NodeId(0));
        assert_eq!(out.cost_ns, lat.minor_fault_ns);
    }

    #[test]
    fn file_faults_pay_a_disk_read() {
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 0, PageType::File);
        assert_eq!(out.cost_ns, lat.major_fault_ns + lat.swap_in_page_ns);
    }

    #[test]
    fn allocation_spills_to_cxl_below_min_watermark() {
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        let min = m.node(NodeId(0)).watermarks().base.min;
        // Fill the local node down to its min watermark.
        let fill = 64 - min;
        for i in 0..fill {
            fault(&mut p, &mut m, &lat, &mut rng, i, PageType::Anon);
        }
        assert_eq!(m.free_pages(NodeId(0)), min);
        let out = fault(&mut p, &mut m, &lat, &mut rng, 10_000, PageType::Anon);
        assert_eq!(m.frames().frame(out.pfn).node(), NodeId(1));
        assert!(m.vmstat().get(VmEvent::PgAllocRemote) >= 1);
        m.validate();
    }

    #[test]
    fn kswapd_reclaims_to_high_watermark() {
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        // Fill local with cold anon pages.
        let min = m.node(NodeId(0)).watermarks().base.min;
        for i in 0..(64 - min) {
            fault(&mut p, &mut m, &lat, &mut rng, i, PageType::Anon);
        }
        let wm = m.node(NodeId(0)).watermarks().base;
        assert!(wm.needs_reclaim(m.free_pages(NodeId(0))));
        // Run several daemon ticks.
        for _ in 0..20 {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.tick(&mut ctx);
        }
        assert!(m.free_pages(NodeId(0)) >= wm.high);
        assert!(m.swap().used_slots() > 0, "anon reclaim must use swap");
        assert!(m.vmstat().get(VmEvent::PswpOut) > 0);
        m.validate();
    }

    #[test]
    fn kswapd_budget_limits_swap_rate_per_tick() {
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        let min = m.node(NodeId(0)).watermarks().base.min;
        for i in 0..(64 - min) {
            fault(&mut p, &mut m, &lat, &mut rng, i, PageType::Anon);
        }
        let before = m.vmstat().get(VmEvent::PswpOut);
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        p.tick(&mut ctx);
        let per_tick = m.vmstat().get(VmEvent::PswpOut) - before;
        // 5 ms budget at 130 µs/page ≈ 38 pages max.
        assert!(per_tick <= 40, "swapped {per_tick} pages in one tick");
    }

    #[test]
    fn clean_file_pages_drop_dirty_ones_pay_writeback() {
        let (mut m, lat, _) = ctx_parts();
        m.create_process(Pid(2));
        let clean = m
            .alloc_and_map(NodeId(0), Pid(2), Vpn(1), PageType::File)
            .unwrap();
        let dirty = m
            .alloc_and_map(NodeId(0), Pid(2), Vpn(2), PageType::File)
            .unwrap();
        m.frames_mut()
            .frame_mut(dirty)
            .flags_mut()
            .insert(PageFlags::DIRTY);
        let c1 = evict_page(&mut m, &lat, clean).unwrap();
        let c2 = evict_page(&mut m, &lat, dirty).unwrap();
        assert!(c2 > c1 * 100);
        assert_eq!(m.vmstat().get(VmEvent::PgDropFile), 2);
        assert_eq!(m.swap().used_slots(), 0);
    }

    #[test]
    fn tmpfs_pages_must_swap_not_drop() {
        let (mut m, lat, _) = ctx_parts();
        m.create_process(Pid(2));
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(2), Vpn(1), PageType::Tmpfs)
            .unwrap();
        evict_page(&mut m, &lat, pfn).unwrap();
        assert_eq!(m.swap().used_slots(), 1);
        assert_eq!(m.vmstat().get(VmEvent::PswpOut), 1);
    }

    #[test]
    fn swap_in_after_reclaim_round_trips() {
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        fault(&mut p, &mut m, &lat, &mut rng, 7, PageType::Anon);
        let pfn = match m.space(Pid(1)).translate(Vpn(7)) {
            Some(PageLocation::Mapped(pfn)) => pfn,
            other => panic!("unexpected {other:?}"),
        };
        m.swap_out(pfn).unwrap();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 7, PageType::Anon);
        assert_eq!(out.cost_ns, lat.swap_in_total_ns());
        assert!(m.space(Pid(1)).translate(Vpn(7)).unwrap().pfn().is_some());
        let _ = out;
        m.validate();
    }

    #[test]
    fn no_promotion_mechanism_exists() {
        // Linux default never reacts to hint faults (it installs none).
        let (mut m, lat, mut rng) = ctx_parts();
        let mut p = LinuxDefault::new();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 1, PageType::Anon);
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        assert_eq!(p.on_hint_fault(&mut ctx, out.pfn), 0);
    }

    fn thp_parts(mode: ThpMode) -> (Memory, LatencyModel, SimRng) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 2048)
            .node(NodeKind::Cxl, 2048)
            .swap_pages(1024)
            .thp_mode(mode)
            .build();
        m.create_process(Pid(1));
        (m, LatencyModel::datacenter(), SimRng::seed(7))
    }

    #[test]
    fn always_mode_anon_faults_allocate_compound_pages() {
        let (mut m, lat, mut rng) = thp_parts(ThpMode::Always);
        let mut p = LinuxDefault::new();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 700, PageType::Anon);
        assert_eq!(m.vmstat().get(VmEvent::ThpFaultAlloc), 1);
        let head = m.compound_head(out.pfn);
        assert!(m.frames().frame(head).flags().contains(PageFlags::HEAD));
        // The faulting VPN resolves inside the window, and its neighbours
        // were mapped along with it.
        assert_eq!(out.cost_ns, lat.minor_fault_ns);
        assert!(matches!(
            m.space(Pid(1)).translate(Vpn(513)),
            Some(PageLocation::Mapped(_))
        ));
        m.validate();
    }

    #[test]
    fn always_mode_file_faults_stay_base_pages() {
        let (mut m, lat, mut rng) = thp_parts(ThpMode::Always);
        let mut p = LinuxDefault::new();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 0, PageType::File);
        assert!(!m
            .frames()
            .frame(out.pfn)
            .flags()
            .intersects(PageFlags::HEAD | PageFlags::TAIL));
        assert_eq!(m.vmstat().get(VmEvent::ThpFaultAlloc), 0);
    }

    #[test]
    fn madvise_mode_faults_stay_base_pages() {
        let (mut m, lat, mut rng) = thp_parts(ThpMode::Madvise);
        let mut p = LinuxDefault::new();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 0, PageType::Anon);
        assert!(!m
            .frames()
            .frame(out.pfn)
            .flags()
            .intersects(PageFlags::HEAD | PageFlags::TAIL));
        assert_eq!(m.vmstat().get(VmEvent::ThpFaultAlloc), 0);
    }

    #[test]
    fn partially_mapped_windows_fall_back_to_base_pages() {
        let (mut m, lat, mut rng) = thp_parts(ThpMode::Always);
        let mut p = LinuxDefault::new();
        // Pre-map one page of the target window as a base page.
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(520), PageType::Anon)
            .unwrap();
        let out = fault(&mut p, &mut m, &lat, &mut rng, 700, PageType::Anon);
        assert!(!m
            .frames()
            .frame(out.pfn)
            .flags()
            .intersects(PageFlags::HEAD | PageFlags::TAIL));
        assert_eq!(m.vmstat().get(VmEvent::ThpFaultAlloc), 0);
        m.validate();
    }
}
