//! NUMA hint-fault sampling: the kernel scanner that poisons PTEs so the
//! next access takes a minor fault (paper §4.2).
//!
//! A kernel task periodically walks a window of each process's address
//! space and marks resident pages `HINTED`. When the application touches
//! a hinted page the runner raises a hint fault and the policy decides
//! whether to promote.
//!
//! TPP's crucial tweak (§5.3) is the [`SampleScope::CxlOnly`] mode:
//! sampling local-node pages is pure overhead on a tiered machine, so
//! TPP restricts the scanner to CPU-less nodes. Default NUMA balancing
//! samples everything.

use tiered_mem::{Memory, PageFlags, PageLocation, VmEvent};

/// Which nodes the scanner installs hint PTEs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SampleScope {
    /// All nodes (default NUMA balancing): local pages generate useless
    /// hint faults, costing CPU.
    AllNodes,
    /// Only CPU-less (CXL) nodes — TPP's `NUMA_BALANCING_TIERED` mode.
    CxlOnly,
}

/// Scanner configuration.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Pages marked per scan period (the kernel's 256 MB default window,
    /// scaled to simulation size).
    pub pages_per_scan: u32,
    /// Scan period in nanoseconds.
    pub period_ns: u64,
    /// Node scope.
    pub scope: SampleScope,
}

impl SamplerConfig {
    /// A scanner suitable for the simulation scale: 4096 pages per second.
    pub fn scaled(scope: SampleScope) -> SamplerConfig {
        SamplerConfig {
            pages_per_scan: 4096,
            period_ns: tiered_sim::SEC,
            scope,
        }
    }
}

/// The hint-PTE scanner. Keeps one cursor per process so successive scans
/// cover successive windows of the address space, like
/// `task_numa_work`'s `mm->numa_scan_offset`.
#[derive(Clone, Debug)]
pub struct HintSampler {
    config: SamplerConfig,
    cursors: std::collections::HashMap<tiered_mem::Pid, u64>,
    /// Reused per-scan buffer for each process's sorted VPNs.
    vpn_scratch: Vec<tiered_mem::Vpn>,
}

impl HintSampler {
    /// Creates a scanner.
    pub fn new(config: SamplerConfig) -> HintSampler {
        HintSampler {
            config,
            cursors: std::collections::HashMap::new(),
            vpn_scratch: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Runs one scan pass: marks up to `pages_per_scan` resident pages
    /// (within scope) as `HINTED`, advancing per-process cursors.
    /// Returns the number of PTEs updated.
    pub fn scan(&mut self, memory: &mut Memory) -> u32 {
        let mut marked = 0u32;
        let budget = self.config.pages_per_scan;
        let pids = memory.pids();
        if pids.is_empty() {
            return 0;
        }
        let per_pid = (budget / pids.len() as u32).max(1);
        for pid in pids {
            memory.space(pid).sorted_vpns_into(&mut self.vpn_scratch);
            let vpns = &self.vpn_scratch;
            if vpns.is_empty() {
                continue;
            }
            let start = *self.cursors.get(&pid).unwrap_or(&0) as usize % vpns.len();
            let mut scanned = 0usize;
            let mut idx = start;
            while scanned < vpns.len() && marked < budget && (scanned as u32) < per_pid {
                let vpn = vpns[idx];
                idx = (idx + 1) % vpns.len();
                scanned += 1;
                let Some(PageLocation::Mapped(pfn)) = memory.space(pid).translate(vpn) else {
                    continue;
                };
                let in_scope = match self.config.scope {
                    SampleScope::AllNodes => true,
                    SampleScope::CxlOnly => {
                        memory.node(memory.frames().frame(pfn).node()).is_cpu_less()
                    }
                };
                if !in_scope {
                    continue;
                }
                // Compound pages are sampled at head granularity: hinting
                // a tail could never fire (tails carry no LRU standing and
                // the head decides placement for the whole unit).
                if memory.frames().frame(pfn).flags().contains(PageFlags::TAIL) {
                    continue;
                }
                let frame = memory.frames_mut().frame_mut(pfn);
                if !frame.flags().contains(PageFlags::HINTED) {
                    frame.flags_mut().insert(PageFlags::HINTED);
                    marked += 1;
                    memory.vmstat_mut().count(VmEvent::NumaPteUpdates);
                }
            }
            self.cursors.insert(pid, idx as u64);
        }
        marked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{NodeId, NodeKind, PageType, Pid, Vpn};

    fn machine() -> Memory {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 64)
            .node(NodeKind::Cxl, 64)
            .build();
        m.create_process(Pid(1));
        for i in 0..16 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        for i in 16..32 {
            m.alloc_and_map(NodeId(1), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        m
    }

    fn hinted_on(m: &Memory, node: NodeId) -> usize {
        m.frames()
            .allocated_on(node)
            .filter(|&p| m.frames().frame(p).flags().contains(PageFlags::HINTED))
            .count()
    }

    #[test]
    fn cxl_only_scope_never_marks_local_pages() {
        let mut m = machine();
        let mut s = HintSampler::new(SamplerConfig {
            pages_per_scan: 1000,
            period_ns: 1,
            scope: SampleScope::CxlOnly,
        });
        let marked = s.scan(&mut m);
        assert_eq!(marked, 16);
        assert_eq!(hinted_on(&m, NodeId(0)), 0);
        assert_eq!(hinted_on(&m, NodeId(1)), 16);
    }

    #[test]
    fn all_nodes_scope_marks_everything() {
        let mut m = machine();
        let mut s = HintSampler::new(SamplerConfig {
            pages_per_scan: 1000,
            period_ns: 1,
            scope: SampleScope::AllNodes,
        });
        assert_eq!(s.scan(&mut m), 32);
        assert_eq!(hinted_on(&m, NodeId(0)), 16);
        assert_eq!(m.vmstat().get(tiered_mem::VmEvent::NumaPteUpdates), 32);
    }

    #[test]
    fn budget_limits_marks_and_cursor_resumes() {
        let mut m = machine();
        let mut s = HintSampler::new(SamplerConfig {
            pages_per_scan: 8,
            period_ns: 1,
            scope: SampleScope::AllNodes,
        });
        assert_eq!(s.scan(&mut m), 8);
        // Second scan continues where the first stopped — no page is
        // double-marked while others are unvisited.
        assert_eq!(s.scan(&mut m), 8);
        let total = hinted_on(&m, NodeId(0)) + hinted_on(&m, NodeId(1));
        assert_eq!(total, 16);
    }

    #[test]
    fn already_hinted_pages_are_not_recounted() {
        let mut m = machine();
        let mut s = HintSampler::new(SamplerConfig {
            pages_per_scan: 1000,
            period_ns: 1,
            scope: SampleScope::AllNodes,
        });
        assert_eq!(s.scan(&mut m), 32);
        assert_eq!(s.scan(&mut m), 0);
    }

    #[test]
    fn empty_machine_scans_nothing() {
        let mut m = Memory::builder().node(NodeKind::LocalDram, 8).build();
        let mut s = HintSampler::new(SamplerConfig::scaled(SampleScope::AllNodes));
        assert_eq!(s.scan(&mut m), 0);
    }
}
