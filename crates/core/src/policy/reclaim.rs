//! Shared LRU reclaim scanning: victim selection with second-chance
//! semantics and active-list aging, used by every policy's background
//! daemon.

use tiered_mem::{LruKind, Memory, NodeId, PageFlags, Pfn, TraceEvent, VmEvent};

/// Per-tick resource budget of a background daemon.
///
/// `scan_pages` models the kernel's priority-based scan throttling (a
/// kswapd wakeup only walks a bounded slice of the LRU); `time_ns` models
/// the daemon's CPU slice, which the *cost of the eviction mechanism*
/// (swap-out vs. migration) is paid from. The interplay of these two
/// budgets reproduces the paper's ~44× reclaim-rate gap between paging
/// and migration without hard-coding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DaemonBudget {
    /// Maximum pages scanned per wakeup.
    pub scan_pages: u32,
    /// Maximum daemon CPU per wakeup, in nanoseconds.
    pub time_ns: u64,
}

impl DaemonBudget {
    /// The throttled budget default Linux kswapd runs with (the kernel's
    /// priority-based scanning walks only a small LRU slice per wakeup).
    pub fn kswapd() -> DaemonBudget {
        DaemonBudget {
            scan_pages: 96,
            time_ns: 5_000_000,
        }
    }

    /// The budget of TPP's demotion daemon — same CPU slice, larger scan
    /// window (migration is cheap enough to act on what it scans).
    pub fn demoter() -> DaemonBudget {
        DaemonBudget {
            scan_pages: 2048,
            time_ns: 5_000_000,
        }
    }
}

/// Which LRU classes a reclaim scan may take victims from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimClass {
    /// Only file-backed pages (the reclaim fast path).
    FileOnly,
    /// File pages first, then anonymous pages (full reclaim; TPP always
    /// scans both since demotion keeps pages in memory, §5.1).
    AnonAndFile,
}

/// Reusable buffers for [`select_victims_into`].
///
/// Background daemons scan every tick; holding the victim and rotation
/// lists across calls removes two heap allocations per tick per node.
#[derive(Clone, Debug, Default)]
pub struct ReclaimScratch {
    /// Victims selected by the last scan, coldest first.
    pub victims: Vec<Pfn>,
    kind_victims: Vec<Pfn>,
}

impl ReclaimScratch {
    /// Borrows buffers from `memory`'s scratch pool.
    pub fn from_pool(memory: &mut Memory) -> ReclaimScratch {
        ReclaimScratch {
            victims: memory.take_pfn_scratch(),
            kind_victims: memory.take_pfn_scratch(),
        }
    }

    /// Hands the buffers back to `memory`'s scratch pool for reuse.
    pub fn into_pool(self, memory: &mut Memory) {
        memory.put_pfn_scratch(self.victims);
        memory.put_pfn_scratch(self.kind_victims);
    }
}

/// Scans up to `scan_budget` pages from `node`'s inactive tails and
/// returns up to `want` reclaim victims, coldest first.
///
/// Allocating convenience wrapper around [`select_victims_into`]; per-tick
/// callers should hold a [`ReclaimScratch`] and use the `_into` form.
pub fn select_victims(
    memory: &mut Memory,
    node: NodeId,
    want: usize,
    scan_budget: usize,
    class: VictimClass,
) -> Vec<Pfn> {
    let mut scratch = ReclaimScratch::default();
    select_victims_into(memory, node, want, scan_budget, class, &mut scratch);
    scratch.victims
}

/// Scans up to `scan_budget` pages from `node`'s inactive tails and
/// leaves up to `want` reclaim victims in `scratch.victims`, coldest
/// first.
///
/// Second-chance semantics mirror `shrink_inactive_list`:
/// * `REFERENCED` pages get their bit cleared and rotate away from the
///   tail (referenced anon pages are promoted to the active list),
/// * `UNEVICTABLE` pages rotate away untouched,
/// * everything else is a victim.
///
/// Victims remain linked at the tail of their list; the caller evicts
/// them via `migrate_page`, `swap_out`, or `drop_file_page` (each of
/// which maintains LRU consistency itself).
pub fn select_victims_into(
    memory: &mut Memory,
    node: NodeId,
    want: usize,
    scan_budget: usize,
    class: VictimClass,
    scratch: &mut ReclaimScratch,
) {
    let ReclaimScratch {
        victims,
        kind_victims,
    } = scratch;
    victims.clear();
    let mut scanned = 0usize;
    let kinds: &[LruKind] = match class {
        VictimClass::FileOnly => &[LruKind::FileInactive],
        VictimClass::AnonAndFile => &[LruKind::FileInactive, LruKind::AnonInactive],
    };
    for &kind in kinds {
        // Age the matching active list first if inactive has run dry, so
        // reclaim always has something to look at (inactive/active
        // rebalancing, `inactive_is_low` analogue).
        balance_inactive(memory, node, kind);
        kind_victims.clear();
        let list_len = memory.node(node).lru.len(kind) as usize;
        let mut remaining = list_len;
        let scanned_before = scanned;
        while victims.len() + kind_victims.len() < want && scanned < scan_budget && remaining > 0 {
            let Some(pfn) = take_tail(memory, node, kind) else {
                break;
            };
            scanned += 1;
            remaining -= 1;
            let flags = memory.frames().frame(pfn).flags();
            if flags.contains(PageFlags::UNEVICTABLE) {
                relink_front(memory, node, kind, pfn);
            } else if flags.contains(PageFlags::REFERENCED) {
                memory
                    .frames_mut()
                    .frame_mut(pfn)
                    .flags_mut()
                    .remove(PageFlags::REFERENCED);
                if kind.is_anon() {
                    // Referenced anon pages are activated, not rotated.
                    relink_front(memory, node, kind.counterpart(), pfn);
                    memory.vmstat_mut().count(VmEvent::PgActivate);
                } else {
                    relink_front(memory, node, kind, pfn);
                }
            } else {
                kind_victims.push(pfn);
            }
        }
        // Put victims back at the tail, coldest at the very end.
        for &pfn in kind_victims.iter().rev() {
            relink_back(memory, node, kind, pfn);
        }
        // One batched scan event per list: `pgscan` advances by exactly
        // the number of pages this loop visited.
        if scanned > scanned_before {
            memory.record(TraceEvent::ReclaimScan {
                node,
                pages: (scanned - scanned_before) as u64,
            });
        }
        victims.append(kind_victims);
        if victims.len() >= want || scanned >= scan_budget {
            break;
        }
    }
}

/// Moves pages from the active tail to the inactive head until the
/// inactive list holds at least a third of the class, clearing
/// `REFERENCED` along the way (`shrink_active_list` analogue).
pub fn age_active_list(memory: &mut Memory, node: NodeId, inactive: LruKind, batch: usize) {
    let active = inactive.counterpart();
    for _ in 0..batch {
        let Some(pfn) = take_tail(memory, node, active) else {
            break;
        };
        let frame = memory.frames_mut().frame_mut(pfn);
        let was_ref = frame.flags_mut().test_and_clear(PageFlags::REFERENCED);
        if was_ref {
            // Recently used: one more round on the active list.
            relink_front(memory, node, active, pfn);
        } else {
            relink_front(memory, node, inactive, pfn);
            memory.vmstat_mut().count(VmEvent::PgDeactivate);
        }
    }
}

fn balance_inactive(memory: &mut Memory, node: NodeId, inactive: LruKind) {
    let active_len = memory.node(node).lru.len(inactive.counterpart());
    let inactive_len = memory.node(node).lru.len(inactive);
    if inactive_len * 2 < active_len {
        let deficit = (active_len / 3).saturating_sub(inactive_len) as usize;
        age_active_list(memory, node, inactive, deficit.min(512));
    }
}

fn take_tail(memory: &mut Memory, node: NodeId, kind: LruKind) -> Option<Pfn> {
    let (lru, frames) = memory.lru_and_frames_mut(node);
    lru.pop_back(frames, kind)
}

fn relink_front(memory: &mut Memory, node: NodeId, kind: LruKind, pfn: Pfn) {
    let (lru, frames) = memory.lru_and_frames_mut(node);
    lru.push_front(frames, kind, pfn);
}

fn relink_back(memory: &mut Memory, node: NodeId, kind: LruKind, pfn: Pfn) {
    let (lru, frames) = memory.lru_and_frames_mut(node);
    lru.push_back(frames, kind, pfn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{NodeKind, PageType, Pid, Vpn};

    fn setup(n_file: u64, n_anon: u64) -> (Memory, Vec<Pfn>, Vec<Pfn>) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, n_file + n_anon + 8)
            .node(NodeKind::Cxl, 16)
            .build();
        m.create_process(Pid(1));
        let files = (0..n_file)
            .map(|i| {
                m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
                    .unwrap()
            })
            .collect();
        let anons = (0..n_anon)
            .map(|i| {
                let pfn = m
                    .alloc_and_map(NodeId(0), Pid(1), Vpn(1000 + i), PageType::Anon)
                    .unwrap();
                // New anon pages start active; deactivate them so the
                // inactive list has content for these tests.
                m.deactivate_page(pfn);
                pfn
            })
            .collect();
        (m, files, anons)
    }

    #[test]
    fn coldest_file_pages_selected_first() {
        let (mut m, files, _) = setup(8, 0);
        let victims = select_victims(&mut m, NodeId(0), 3, 64, VictimClass::FileOnly);
        // Files were pushed to the front in order, so the coldest (tail)
        // is the first allocated.
        assert_eq!(victims, files[..3].to_vec());
        // Victims are still on the LRU.
        for &v in &victims {
            assert!(m.frames().frame(v).lru_kind().is_some());
        }
        m.validate();
    }

    #[test]
    fn referenced_pages_get_second_chance() {
        let (mut m, files, _) = setup(4, 0);
        // Mark the two coldest as referenced.
        for &pfn in &files[..2] {
            m.frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .insert(PageFlags::REFERENCED);
        }
        let victims = select_victims(&mut m, NodeId(0), 2, 64, VictimClass::FileOnly);
        assert_eq!(victims, vec![files[2], files[3]]);
        // Referenced bits were consumed.
        for &pfn in &files[..2] {
            assert!(!m
                .frames()
                .frame(pfn)
                .flags()
                .contains(PageFlags::REFERENCED));
            assert_eq!(
                m.frames().frame(pfn).lru_kind(),
                Some(LruKind::FileInactive)
            );
        }
        m.validate();
    }

    #[test]
    fn referenced_anon_pages_are_activated() {
        let (mut m, _, anons) = setup(0, 4);
        m.frames_mut()
            .frame_mut(anons[0])
            .flags_mut()
            .insert(PageFlags::REFERENCED);
        let victims = select_victims(&mut m, NodeId(0), 1, 64, VictimClass::AnonAndFile);
        assert_eq!(victims, vec![anons[1]]);
        assert_eq!(
            m.frames().frame(anons[0]).lru_kind(),
            Some(LruKind::AnonActive)
        );
        m.validate();
    }

    #[test]
    fn unevictable_pages_are_skipped() {
        let (mut m, files, _) = setup(3, 0);
        m.frames_mut()
            .frame_mut(files[0])
            .flags_mut()
            .insert(PageFlags::UNEVICTABLE);
        let victims = select_victims(&mut m, NodeId(0), 3, 64, VictimClass::FileOnly);
        assert_eq!(victims, vec![files[1], files[2]]);
        m.validate();
    }

    #[test]
    fn scan_budget_caps_work() {
        let (mut m, files, _) = setup(16, 0);
        // Every page referenced: with a scan budget of 4, nothing is
        // selected and only 4 pages are scanned.
        for &pfn in &files {
            m.frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .insert(PageFlags::REFERENCED);
        }
        let before = m.vmstat().get(VmEvent::PgScan);
        let victims = select_victims(&mut m, NodeId(0), 8, 4, VictimClass::FileOnly);
        assert!(victims.is_empty());
        assert_eq!(m.vmstat().get(VmEvent::PgScan) - before, 4);
        m.validate();
    }

    #[test]
    fn file_victims_preferred_over_anon() {
        let (mut m, files, anons) = setup(2, 4);
        let victims = select_victims(&mut m, NodeId(0), 3, 64, VictimClass::AnonAndFile);
        assert_eq!(victims.len(), 3);
        assert_eq!(&victims[..2], &files[..2]);
        assert_eq!(victims[2], anons[0]);
        m.validate();
    }

    #[test]
    fn file_only_never_touches_anon() {
        let (mut m, _, anons) = setup(0, 4);
        let victims = select_victims(&mut m, NodeId(0), 4, 64, VictimClass::FileOnly);
        assert!(victims.is_empty());
        for &pfn in &anons {
            assert!(m.frames().frame(pfn).lru_kind().is_some());
        }
    }

    #[test]
    fn aging_refills_inactive_from_active() {
        let mut m = Memory::builder().node(NodeKind::LocalDram, 32).build();
        m.create_process(Pid(1));
        // New anon pages land on the *active* list.
        for i in 0..8 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        assert_eq!(m.node(NodeId(0)).lru.len(LruKind::AnonInactive), 0);
        // select_victims internally rebalances, so victims appear even
        // though everything started active.
        let victims = select_victims(&mut m, NodeId(0), 2, 64, VictimClass::AnonAndFile);
        assert_eq!(victims.len(), 2);
        assert!(m.node(NodeId(0)).lru.len(LruKind::AnonInactive) > 0);
        m.validate();
    }

    #[test]
    fn budgets_have_expected_asymmetry() {
        assert!(DaemonBudget::demoter().scan_pages > DaemonBudget::kswapd().scan_pages * 8);
        assert_eq!(
            DaemonBudget::demoter().time_ns,
            DaemonBudget::kswapd().time_ns
        );
    }
}
