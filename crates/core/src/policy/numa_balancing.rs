//! Default NUMA balancing (AutoNUMA) on a tiered machine (paper §4.2).
//!
//! NUMA balancing samples *every* node (wasting hint faults on local
//! pages), promotes pages only when the local node sits above its *high*
//! watermark, and cannot demote anything to a CPU-less node — so reclaim
//! still pages out to swap, and under memory pressure promotion simply
//! stops and hot pages stay trapped on the CXL node.

use tiered_mem::telemetry::PromoteFailReason;
use tiered_mem::{PageType, Pid, TraceEvent, Vpn};
use tiered_sim::Periodic;

use super::linux_default::{fault_with_fallback, kswapd_pass, LinuxDefaultConfig};
use super::sampler::{HintSampler, SampleScope, SamplerConfig};
use super::{FaultOutcome, PlacementPolicy, PolicyCtx};

/// Configuration for [`NumaBalancing`].
#[derive(Clone, Copy, Debug)]
pub struct NumaBalancingConfig {
    /// The underlying default-kernel knobs (reclaim stays unchanged).
    pub linux: LinuxDefaultConfig,
    /// Hint-PTE scanner settings (scope is forced to all nodes).
    pub sampler: SamplerConfig,
}

impl Default for NumaBalancingConfig {
    fn default() -> NumaBalancingConfig {
        NumaBalancingConfig {
            linux: LinuxDefaultConfig::default(),
            sampler: SamplerConfig::scaled(SampleScope::AllNodes),
        }
    }
}

/// NUMA balancing page placement.
#[derive(Clone, Debug)]
pub struct NumaBalancing {
    config: NumaBalancingConfig,
    sampler: HintSampler,
    scan_timer: Periodic,
    kswapd_active: Vec<bool>,
}

impl NumaBalancing {
    /// Creates the policy with default knobs.
    pub fn new() -> NumaBalancing {
        NumaBalancing::with_config(NumaBalancingConfig::default())
    }

    /// Creates the policy with explicit knobs.
    pub fn with_config(mut config: NumaBalancingConfig) -> NumaBalancing {
        // Default NUMA balancing has no notion of tiers: it samples all
        // nodes no matter what the caller asked for.
        config.sampler.scope = SampleScope::AllNodes;
        NumaBalancing {
            config,
            sampler: HintSampler::new(config.sampler),
            scan_timer: Periodic::new(config.sampler.period_ns),
            kswapd_active: Vec::new(),
        }
    }
}

impl Default for NumaBalancing {
    fn default() -> NumaBalancing {
        NumaBalancing::new()
    }
}

impl PlacementPolicy for NumaBalancing {
    fn name(&self) -> &str {
        "numa_balancing"
    }

    fn handle_fault(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> FaultOutcome {
        let prefer = ctx.memory.home_node(pid);
        fault_with_fallback(ctx, pid, vpn, page_type, prefer, "numa_balancing")
    }

    fn on_hint_fault(&mut self, ctx: &mut PolicyCtx<'_>, pfn: tiered_mem::Pfn) -> u64 {
        let frame = ctx.memory.frames().frame(pfn);
        let node = frame.node();
        let page = frame.owner().expect("hint fault on a free frame");
        if !ctx.memory.node(node).is_cpu_less() {
            // Hint fault on a local page: pure sampling overhead.
            ctx.memory.record(TraceEvent::HintFaultLocal { page, node });
            return 0;
        }
        // Promote toward the accessing task's socket, not a fixed node 0.
        let target = ctx.memory.home_node(page.pid);
        ctx.memory.record(TraceEvent::PromoteCandidate {
            page,
            demoted: false,
        });
        // Default NUMA balancing refuses to migrate unless the target is
        // comfortably above its high watermark — this is exactly how hot
        // pages get trapped on the CXL node under pressure (§4.2).
        let wm = ctx.memory.node(target).watermarks().base;
        if ctx.memory.free_pages(target) <= wm.high {
            ctx.memory.record(TraceEvent::PromoteFail {
                page,
                reason: PromoteFailReason::LowMem,
            });
            ctx.memory.record(TraceEvent::Decision {
                policy: "numa_balancing",
                reason: "target_below_high_watermark_page_trapped",
                page: Some(page),
            });
            return 0;
        }
        ctx.memory.record(TraceEvent::PromoteAttempt {
            page,
            from: node,
            to: target,
        });
        let page_type = ctx.memory.frames().frame(pfn).page_type();
        match ctx.memory.migrate_page(pfn, target) {
            Ok(_) => {
                ctx.memory.record(TraceEvent::PromoteSuccess {
                    page,
                    from: node,
                    to: target,
                    page_type,
                });
                ctx.latency
                    .migrate_cost_ns(ctx.memory.migrate_hops(node, target))
            }
            Err(_) => {
                ctx.memory.record(TraceEvent::PromoteFail {
                    page,
                    reason: PromoteFailReason::Busy,
                });
                0
            }
        }
    }

    fn tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.kswapd_active.resize(ctx.memory.node_count(), false);
        for i in 0..ctx.memory.node_count() {
            kswapd_pass(
                ctx.memory,
                ctx.latency,
                tiered_mem::NodeId(i as u8),
                self.config.linux.kswapd_budget,
                &mut self.kswapd_active[i],
            );
        }
        if self.scan_timer.fire(ctx.now_ns) > 0 {
            self.sampler.scan(ctx.memory);
        }
    }

    fn tick_period_ns(&self) -> u64 {
        self.config.linux.tick_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::VmEvent;
    use tiered_mem::{Memory, NodeId, NodeKind, PageFlags, PageLocation};
    use tiered_sim::{LatencyModel, SimRng};

    fn setup() -> (Memory, LatencyModel, SimRng, NumaBalancing) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 64)
            .node(NodeKind::Cxl, 128)
            .build();
        m.create_process(Pid(1));
        (
            m,
            LatencyModel::datacenter(),
            SimRng::seed(1),
            NumaBalancing::new(),
        )
    }

    #[test]
    fn promotes_cxl_page_when_local_has_headroom() {
        let (mut m, lat, mut rng, mut p) = setup();
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let cost = p.on_hint_fault(&mut ctx, pfn);
        assert_eq!(cost, lat.migrate_page_ns);
        let new = m.space(Pid(1)).translate(Vpn(0)).unwrap().pfn().unwrap();
        assert_eq!(m.frames().frame(new).node(), NodeId(0));
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteSuccessAnon), 1);
        m.validate();
    }

    #[test]
    fn promotion_stops_when_local_is_under_pressure() {
        let (mut m, lat, mut rng, mut p) = setup();
        // Fill local down to (high watermark) free pages.
        let high = m.node(NodeId(0)).watermarks().base.high;
        for i in 0..(64 - high) {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(100 + i), PageType::Anon)
                .unwrap();
        }
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        assert_eq!(p.on_hint_fault(&mut ctx, pfn), 0);
        // Page remains trapped on the CXL node.
        assert_eq!(m.frames().frame(pfn).node(), NodeId(1));
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteFailLowMem), 1);
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteAttempt), 0);
    }

    #[test]
    fn local_hint_faults_are_counted_as_overhead() {
        let (mut m, lat, mut rng, mut p) = setup();
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        assert_eq!(p.on_hint_fault(&mut ctx, pfn), 0);
        assert_eq!(m.vmstat().get(VmEvent::NumaHintFaultsLocal), 1);
        assert_eq!(m.frames().frame(pfn).node(), NodeId(0));
    }

    #[test]
    fn sampler_marks_local_pages_too() {
        let (mut m, lat, mut rng, mut p) = setup();
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(1), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 2 * tiered_sim::SEC,
            rng: &mut rng,
        };
        p.tick(&mut ctx);
        let hinted = |m: &Memory, node: NodeId| {
            m.frames()
                .allocated_on(node)
                .filter(|&f| m.frames().frame(f).flags().contains(PageFlags::HINTED))
                .count()
        };
        assert_eq!(
            hinted(&m, NodeId(0)),
            1,
            "default NUMA balancing samples local nodes"
        );
        assert_eq!(hinted(&m, NodeId(1)), 1);
    }

    #[test]
    fn reclaim_still_swaps_out() {
        let (mut m, lat, mut rng, mut p) = setup();
        let min = m.node(NodeId(0)).watermarks().base.min;
        for i in 0..(64 - min) {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.handle_fault(&mut ctx, Pid(1), Vpn(i), PageType::Tmpfs);
        }
        for _ in 0..10 {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.tick(&mut ctx);
        }
        assert!(
            m.swap().used_slots() > 0,
            "no demotion path exists; swap must be used"
        );
        // Nothing was migrated to the CXL node by reclaim.
        assert_eq!(m.vmstat().demoted_total(), 0);
        let _ = m.space(Pid(1)).translate(Vpn(0)) == Some(PageLocation::Mapped(tiered_mem::Pfn(0)));
        m.validate();
    }
}
