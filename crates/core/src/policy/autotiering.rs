//! The AutoTiering baseline (Kim et al., ATC '21), as characterised by the
//! TPP paper (§6.4, §7):
//!
//! * background **migration-based demotion** driven by timer-decayed
//!   access-frequency counters (faster than paging, but the decay pass
//!   costs CPU and mis-ranks infrequently accessed pages),
//! * **optimised NUMA-balancing promotion** (CXL-only sampling) gated on
//!   a **fixed-size reserved buffer** on the local node — once a surge of
//!   CXL accesses drains the buffer, promotion fails,
//! * allocation and reclamation stay **coupled** to the classic
//!   watermarks (no free-page headroom is maintained),
//! * the paper could not run it on 1:4 local:CXL configurations at all
//!   ("frequently crashes right after the warm up phase"), which
//!   [`PlacementPolicy::validate_config`] reproduces as a hard error.

use tiered_mem::telemetry::{PromoteFailReason, PromoteSkipReason};
use tiered_mem::{Memory, NodeId, PageFlags, PageType, Pfn, Pid, TraceEvent, Vpn};
use tiered_sim::{Periodic, SEC};

use super::huge::{run_huge_daemons, HugeState, COMPOUND_MIGRATE_FACTOR};
use super::linux_default::{evict_page, fault_with_fallback, LinuxDefaultConfig};
use super::reclaim::{select_victims_into, DaemonBudget, ReclaimScratch, VictimClass};
use super::sampler::{HintSampler, SampleScope, SamplerConfig};
use super::{preferred_local_node, FaultOutcome, PlacementPolicy, PolicyCtx, UnsupportedConfig};

/// Configuration for [`AutoTiering`].
#[derive(Clone, Copy, Debug)]
pub struct AutoTieringConfig {
    /// Base daemon knobs.
    pub linux: LinuxDefaultConfig,
    /// Hint-PTE scanner (CXL-only, the "optimised" NUMA balancing).
    pub sampler: SamplerConfig,
    /// Demotion daemon budget (migration-based, so demoter-class).
    pub demote_budget: DaemonBudget,
    /// Minimum hotness counter for a page to be promotion-worthy.
    pub hotness_threshold: u8,
    /// Period of the hotness-decay timer.
    pub decay_period_ns: u64,
    /// Reserved promotion buffer, as a fraction of local-node capacity.
    pub promo_buffer_frac: f64,
}

impl Default for AutoTieringConfig {
    fn default() -> AutoTieringConfig {
        AutoTieringConfig {
            linux: LinuxDefaultConfig::default(),
            sampler: SamplerConfig::scaled(SampleScope::CxlOnly),
            demote_budget: DaemonBudget::demoter(),
            hotness_threshold: 2,
            decay_period_ns: 2 * SEC,
            promo_buffer_frac: 0.02,
        }
    }
}

/// AutoTiering page placement.
#[derive(Clone, Debug)]
pub struct AutoTiering {
    config: AutoTieringConfig,
    sampler: HintSampler,
    scan_timer: Periodic,
    decay_timer: Periodic,
    /// Remaining promotion-buffer tokens; refilled by demotions.
    buffer_tokens: u64,
    buffer_capacity: u64,
    initialised: bool,
    kswapd_active: Vec<bool>,
    huge_state: HugeState,
}

impl AutoTiering {
    /// Creates the policy with default knobs.
    pub fn new() -> AutoTiering {
        AutoTiering::with_config(AutoTieringConfig::default())
    }

    /// Creates the policy with explicit knobs.
    pub fn with_config(config: AutoTieringConfig) -> AutoTiering {
        AutoTiering {
            config,
            sampler: HintSampler::new(config.sampler),
            scan_timer: Periodic::new(config.sampler.period_ns),
            decay_timer: Periodic::new(config.decay_period_ns),
            buffer_tokens: 0,
            buffer_capacity: 0,
            initialised: false,
            kswapd_active: Vec::new(),
            huge_state: HugeState::default(),
        }
    }

    /// Current promotion-buffer tokens (for tests and observability).
    pub fn buffer_tokens(&self) -> u64 {
        self.buffer_tokens
    }

    fn ensure_buffer(&mut self, memory: &Memory) {
        if !self.initialised {
            let local = preferred_local_node(memory);
            self.buffer_capacity =
                (memory.capacity(local) as f64 * self.config.promo_buffer_frac) as u64;
            self.buffer_tokens = self.buffer_capacity;
            self.initialised = true;
        }
    }

    /// Demotion pass on `node`: migrate cold (hotness-zero) inactive pages
    /// to the CXL node. Coupled to the *classic* watermarks — demotion
    /// only starts below `low` and stops at `high`, so no headroom is
    /// maintained beyond what default Linux would keep.
    fn demote_pass(&mut self, ctx: &mut PolicyCtx<'_>, node: NodeId) {
        let wm = ctx.memory.node(node).watermarks().base;
        if !wm.needs_reclaim(ctx.memory.free_pages(node)) {
            return;
        }
        // Nearest lower tier with allocation headroom; the nearest one
        // takes the pages anyway when all candidates are pressured.
        let order = *ctx.memory.node(node).demotion_order();
        let target = order
            .iter()
            .copied()
            .find(|&t| {
                let twm = ctx.memory.node(t).watermarks().base;
                twm.allows_allocation(ctx.memory.free_pages(t))
            })
            .or_else(|| order.first().copied());
        let Some(target) = target else {
            return;
        };
        let demote_cost = ctx
            .latency
            .migrate_cost_ns(ctx.memory.migrate_hops(node, target));
        let mut time_left = self.config.demote_budget.time_ns;
        let mut scratch = ReclaimScratch::from_pool(ctx.memory);
        while !wm.reclaim_satisfied(ctx.memory.free_pages(node)) && time_left > 0 {
            let want = (wm.high - ctx.memory.free_pages(node)).min(64) as usize;
            select_victims_into(
                ctx.memory,
                node,
                want,
                self.config.demote_budget.scan_pages as usize,
                VictimClass::AnonAndFile,
                &mut scratch,
            );
            if scratch.victims.is_empty() {
                break;
            }
            let mut progressed = false;
            for &pfn in &scratch.victims {
                // Timer-based criterion: only cold-by-counter pages move.
                if ctx.memory.frames().frame(pfn).hotness() > 1 {
                    continue;
                }
                // AutoTiering always splits a compound before demoting
                // (split-on-demote): its per-page hotness ranking has no
                // notion of compound units, so the base pages re-enter the
                // cold end of the LRU and move individually.
                if ctx
                    .memory
                    .frames()
                    .frame(pfn)
                    .flags()
                    .contains(PageFlags::HEAD)
                {
                    ctx.memory.split_huge_page(pfn);
                    let cost = ctx.latency.migrate_page_ns;
                    if cost > time_left {
                        time_left = 0;
                        break;
                    }
                    time_left -= cost;
                    progressed = true;
                    continue;
                }
                let frame = ctx.memory.frames().frame(pfn);
                let page_type = frame.page_type();
                let page = frame.owner().expect("demotion victim is allocated");
                let cost = match ctx.memory.migrate_page(pfn, target) {
                    Ok(_) => {
                        self.buffer_tokens = (self.buffer_tokens + 1).min(self.buffer_capacity);
                        ctx.memory.record(TraceEvent::Demote {
                            page,
                            from: node,
                            to: target,
                            page_type,
                        });
                        demote_cost
                    }
                    Err(_) => match evict_page(ctx.memory, ctx.latency, pfn) {
                        Some(c) => c,
                        None => break,
                    },
                };
                if cost > time_left {
                    time_left = 0;
                    break;
                }
                time_left -= cost;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        scratch.into_pool(ctx.memory);
    }
}

impl Default for AutoTiering {
    fn default() -> AutoTiering {
        AutoTiering::new()
    }
}

impl PlacementPolicy for AutoTiering {
    fn name(&self) -> &str {
        "autotiering"
    }

    fn validate_config(&self, memory: &Memory) -> Result<(), UnsupportedConfig> {
        let local: u64 = memory
            .local_nodes()
            .iter()
            .map(|&n| memory.capacity(n))
            .sum();
        let cxl: u64 = memory.cxl_nodes().iter().map(|&n| memory.capacity(n)).sum();
        if cxl > local * 3 {
            return Err(UnsupportedConfig {
                policy: self.name().into(),
                reason: format!(
                    "local:CXL ratio 1:{} exceeds 1:3 — the paper reports AutoTiering \
                     crashing after warm-up on 1:4 configurations",
                    cxl.checked_div(local).unwrap_or(u64::MAX)
                ),
            });
        }
        Ok(())
    }

    fn handle_fault(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> FaultOutcome {
        self.ensure_buffer(ctx.memory);
        let prefer = ctx.memory.home_node(pid);
        fault_with_fallback(ctx, pid, vpn, page_type, prefer, "autotiering")
    }

    fn on_hint_fault(&mut self, ctx: &mut PolicyCtx<'_>, pfn: Pfn) -> u64 {
        self.ensure_buffer(ctx.memory);
        let frame = ctx.memory.frames().frame(pfn);
        let node = frame.node();
        let page = frame.owner().expect("hint fault on a free frame");
        if !ctx.memory.node(node).is_cpu_less() {
            ctx.memory.record(TraceEvent::HintFaultLocal { page, node });
            return 0;
        }
        // Frequency criterion: only pages hot by counter are candidates.
        // Previously a silent return — the trace makes the skip visible.
        if ctx.memory.frames().frame(pfn).hotness() < self.config.hotness_threshold {
            if ctx.memory.trace_enabled() {
                ctx.memory.record(TraceEvent::PromoteSkip {
                    page,
                    reason: PromoteSkipReason::Cold,
                });
            }
            return 0;
        }
        ctx.memory.record(TraceEvent::PromoteCandidate {
            page,
            demoted: false,
        });
        let target = ctx.memory.home_node(page.pid);
        let wm = ctx.memory.node(target).watermarks().base;
        let free = ctx.memory.free_pages(target);
        // The reserved buffer is the only headroom: promotions need a
        // token (or genuine free space above the high watermark).
        if self.buffer_tokens == 0 && free <= wm.high {
            ctx.memory.record(TraceEvent::PromoteFail {
                page,
                reason: PromoteFailReason::LowMem,
            });
            ctx.memory.record(TraceEvent::Decision {
                policy: "autotiering",
                reason: "promotion_buffer_exhausted",
                page: Some(page),
            });
            return 0;
        }
        if free <= wm.min {
            ctx.memory.record(TraceEvent::PromoteFail {
                page,
                reason: PromoteFailReason::LowMem,
            });
            return 0;
        }
        ctx.memory.record(TraceEvent::PromoteAttempt {
            page,
            from: node,
            to: target,
        });
        let page_type = ctx.memory.frames().frame(pfn).page_type();
        // A hinted compound head promotes as one unit (hint sampling is
        // head-granular); it still consumes a single buffer token — the
        // buffer models reserved *decisions*, not pages.
        let is_head = ctx
            .memory
            .frames()
            .frame(pfn)
            .flags()
            .contains(PageFlags::HEAD);
        let migrated = if is_head {
            ctx.memory.migrate_huge(pfn, target)
        } else {
            ctx.memory.migrate_page(pfn, target)
        };
        match migrated {
            Ok(_) => {
                self.buffer_tokens = self.buffer_tokens.saturating_sub(1);
                ctx.memory.record(TraceEvent::PromoteSuccess {
                    page,
                    from: node,
                    to: target,
                    page_type,
                });
                let unit = ctx
                    .latency
                    .migrate_cost_ns(ctx.memory.migrate_hops(node, target));
                if is_head {
                    unit * COMPOUND_MIGRATE_FACTOR
                } else {
                    unit
                }
            }
            Err(_) => {
                ctx.memory.record(TraceEvent::PromoteFail {
                    page,
                    reason: PromoteFailReason::Busy,
                });
                0
            }
        }
    }

    fn tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.ensure_buffer(ctx.memory);
        // Hotness decay: the "timer-based hot page detection" that costs
        // CPU — every allocated frame is visited.
        if self.decay_timer.fire(ctx.now_ns) > 0 {
            for i in 0..ctx.memory.node_count() {
                let node = NodeId(i as u8);
                let pfns: Vec<Pfn> = ctx.memory.frames().allocated_on(node).collect();
                for pfn in pfns {
                    ctx.memory.frames_mut().frame_mut(pfn).decay_hotness();
                }
            }
        }
        // Migration-based demotion from local nodes.
        for node in ctx.memory.local_nodes() {
            self.demote_pass(ctx, node);
        }
        // CXL nodes reclaim the default way if ever pressured.
        self.kswapd_active.resize(ctx.memory.node_count(), false);
        for node in ctx.memory.cxl_nodes() {
            let mut active = self.kswapd_active[node.index()];
            super::linux_default::kswapd_pass(
                ctx.memory,
                ctx.latency,
                node,
                self.config.linux.kswapd_budget,
                &mut active,
            );
            self.kswapd_active[node.index()] = active;
        }
        run_huge_daemons(ctx, &self.config.linux.huge, &mut self.huge_state);
        if self.scan_timer.fire(ctx.now_ns) > 0 {
            self.sampler.scan(ctx.memory);
        }
    }

    fn tick_period_ns(&self) -> u64 {
        self.config.linux.tick_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::NodeKind;
    use tiered_mem::VmEvent;
    use tiered_sim::{LatencyModel, SimRng};

    fn setup(local: u64, cxl: u64) -> (Memory, LatencyModel, SimRng, AutoTiering) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, local)
            .node(NodeKind::Cxl, cxl)
            .build();
        m.create_process(Pid(1));
        (
            m,
            LatencyModel::datacenter(),
            SimRng::seed(1),
            AutoTiering::new(),
        )
    }

    #[test]
    fn rejects_one_to_four_configs() {
        let (m, ..) = setup(64, 256);
        let p = AutoTiering::new();
        let err = p.validate_config(&m).unwrap_err();
        assert!(err.reason.contains("1:4"));
        // 2:1 is fine.
        let (m2, ..) = setup(128, 64);
        assert!(p.validate_config(&m2).is_ok());
    }

    #[test]
    fn promotion_requires_hotness_threshold() {
        let (mut m, lat, mut rng, mut p) = setup(64, 64);
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        // Cold by counter: not promoted.
        assert_eq!(p.on_hint_fault(&mut ctx, pfn), 0);
        assert_eq!(ctx.memory.frames().frame(pfn).node(), NodeId(1));
        // Heat it up.
        ctx.memory.frames_mut().frame_mut(pfn).touch_hotness();
        ctx.memory.frames_mut().frame_mut(pfn).touch_hotness();
        let cost = p.on_hint_fault(&mut ctx, pfn);
        assert_eq!(cost, lat.migrate_page_ns);
        m.validate();
    }

    #[test]
    fn buffer_exhaustion_halts_promotion_under_pressure() {
        let (mut m, lat, mut rng, mut p) = setup(64, 64);
        // Local filled to its high watermark: only buffer tokens allow
        // promotion.
        let high = m.node(NodeId(0)).watermarks().base.high;
        for i in 0..(64 - high) {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(1000 + i), PageType::Anon)
                .unwrap();
        }
        // Hot CXL pages.
        let pfns: Vec<Pfn> = (0..8)
            .map(|i| {
                let pfn = m
                    .alloc_and_map(NodeId(1), Pid(1), Vpn(i), PageType::Anon)
                    .unwrap();
                for _ in 0..4 {
                    m.frames_mut().frame_mut(pfn).touch_hotness();
                }
                pfn
            })
            .collect();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        p.ensure_buffer(ctx.memory);
        p.buffer_tokens = 2; // nearly drained
        let mut promoted = 0;
        for pfn in pfns {
            if p.on_hint_fault(&mut ctx, pfn) > 0 {
                promoted += 1;
            }
        }
        assert_eq!(promoted, 2, "only the buffered tokens may promote");
        assert!(m.vmstat().get(VmEvent::PgPromoteFailLowMem) >= 6);
    }

    #[test]
    fn demotion_migrates_cold_pages_instead_of_swapping() {
        let (mut m, lat, mut rng, mut p) = setup(64, 256);
        let low = m.node(NodeId(0)).watermarks().base.low;
        for i in 0..(64 - low + 4).min(63) {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Tmpfs)
                .unwrap();
        }
        for _ in 0..5 {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.tick(&mut ctx);
        }
        assert!(
            m.frames().used_pages(NodeId(1)) > 0,
            "cold pages should move to CXL"
        );
        assert_eq!(m.swap().used_slots(), 0, "migration should beat swap");
        m.validate();
    }

    #[test]
    fn decay_halves_hotness_counters() {
        let (mut m, lat, mut rng, mut p) = setup(64, 64);
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        for _ in 0..8 {
            m.frames_mut().frame_mut(pfn).touch_hotness();
        }
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 3 * SEC,
            rng: &mut rng,
        };
        p.tick(&mut ctx);
        assert_eq!(m.frames().frame(pfn).hotness(), 4);
    }

    #[test]
    fn demotion_splits_compounds_first() {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 2048)
            .node(NodeKind::Cxl, 2048)
            .thp_mode(tiered_mem::ThpMode::Always)
            .build();
        m.create_process(Pid(1));
        let (lat, mut rng) = (LatencyModel::datacenter(), SimRng::seed(1));
        let mut p = AutoTiering::new();
        m.alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        // Push below the classic low watermark (AutoTiering stays coupled)
        // with hot base pages; the cold compound is the first victim.
        let low = m.node(NodeId(0)).watermarks().base.low;
        let mut vpn = 100_000;
        while m.free_pages(NodeId(0)) >= low {
            let pfn = m
                .alloc_and_map(NodeId(0), Pid(1), Vpn(vpn), PageType::Anon)
                .unwrap();
            m.frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .insert(PageFlags::REFERENCED);
            vpn += 1;
        }
        for _ in 0..10 {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.tick(&mut ctx);
        }
        assert!(
            m.vmstat().get(VmEvent::ThpSplit) >= 1,
            "AutoTiering must split-on-demote"
        );
        assert!(
            m.frames().used_pages(NodeId(1)) > 0,
            "the split base pages should demote individually"
        );
        m.validate();
    }

    #[test]
    fn compound_promotion_moves_the_whole_unit() {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 2048)
            .node(NodeKind::Cxl, 2048)
            .thp_mode(tiered_mem::ThpMode::Always)
            .build();
        m.create_process(Pid(1));
        let (lat, mut rng) = (LatencyModel::datacenter(), SimRng::seed(1));
        let mut p = AutoTiering::new();
        let head = m
            .alloc_huge_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        // Hot by counter, so the frequency criterion passes.
        for _ in 0..4 {
            m.frames_mut().frame_mut(head).touch_hotness();
        }
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let cost = p.on_hint_fault(&mut ctx, head);
        assert_eq!(cost, lat.migrate_page_ns * COMPOUND_MIGRATE_FACTOR);
        let new_head = m.space(Pid(1)).translate(Vpn(0)).unwrap().pfn().unwrap();
        assert_eq!(m.frames().frame(new_head).node(), NodeId(0));
        assert!(m.frames().frame(new_head).flags().contains(PageFlags::HEAD));
        m.validate();
    }
}
