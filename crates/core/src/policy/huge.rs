//! Huge-page background machinery shared by the policies: a
//! **khugepaged**-style collapse scanner that assembles aligned runs of
//! warm base pages into compound pages, and a **kcompactd**-style
//! compaction daemon that defragments nodes back to allocable
//! order-[`MAX_PAGE_ORDER`] blocks.
//!
//! Both daemons are complete no-ops when the machine runs with
//! [`ThpMode::Never`], so existing base-page experiments are untouched.
//! Under [`ThpMode::Madvise`] there is no fault-time THP allocation, but
//! khugepaged still collapses eligible windows in the background — the
//! kernel's behaviour for madvised regions, applied here to every anon
//! mapping. [`ThpMode::Always`] adds fault-time allocation on top (see
//! `fault_with_fallback`).

use std::collections::HashMap;

use tiered_mem::{
    Memory, NodeId, PageFlags, Pfn, Pid, ThpMode, TraceEvent, Vpn, HUGE_PAGE_FRAMES, MAX_PAGE_ORDER,
};
use tiered_sim::LatencyModel;

use super::reclaim::DaemonBudget;
use super::PolicyCtx;

/// Cost multiplier for migrating a compound page as one unit, relative to
/// one base-page migration.
///
/// Moving 2 MiB is one decision, one PTE batch, and one long sequential
/// copy — far cheaper than 512 independent page migrations (which is the
/// entire point of migrating compounds whole), but clearly more than one.
/// The same factor prices khugepaged's 512-page collapse copy.
pub const COMPOUND_MIGRATE_FACTOR: u64 = 8;

/// Configuration of the huge-page daemons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HugeConfig {
    /// khugepaged's per-wakeup budget: `scan_pages` counts base pages
    /// examined (one 512-page window per eligibility check), `time_ns`
    /// pays for scan work and collapse copies.
    pub khugepaged: DaemonBudget,
    /// kcompactd's per-node per-wakeup budget: `scan_pages` bounds the
    /// migration scanner, `time_ns` pays for page relocations.
    pub kcompactd: DaemonBudget,
    /// Fragmentation gate in milli-units (0..=1000): compaction only runs
    /// when the node's unusable-free-space index for order
    /// [`MAX_PAGE_ORDER`] exceeds this (kernel
    /// `sysctl_extfrag_threshold`).
    pub frag_threshold_milli: u32,
}

impl Default for HugeConfig {
    fn default() -> HugeConfig {
        HugeConfig {
            // Four windows' worth of eligibility checks per wakeup —
            // khugepaged is deliberately slow in the kernel too.
            khugepaged: DaemonBudget {
                scan_pages: 4 * HUGE_PAGE_FRAMES as u32,
                time_ns: 5_000_000,
            },
            kcompactd: DaemonBudget {
                scan_pages: 4096,
                time_ns: 5_000_000,
            },
            frag_threshold_milli: 500,
        }
    }
}

/// Cursor and scratch state of the huge-page daemons, owned by each
/// policy instance.
#[derive(Clone, Debug, Default)]
pub struct HugeState {
    /// khugepaged's per-process window cursor (`khugepaged_scan.address`
    /// analogue): successive wakeups resume where the last stopped.
    khugepaged_cursor: HashMap<Pid, u64>,
    /// Per-node migration-scanner position, as a node-relative PFN.
    compact_cursor: Vec<u32>,
    /// Reused buffer for each process's sorted VPNs.
    vpn_scratch: Vec<Vpn>,
    /// Reused buffer for the distinct aligned windows of a process.
    window_scratch: Vec<u64>,
}

/// Runs one wakeup of both huge-page daemons: khugepaged over every
/// process, then kcompactd over every node. No-op under
/// [`ThpMode::Never`].
pub fn run_huge_daemons(ctx: &mut PolicyCtx<'_>, config: &HugeConfig, state: &mut HugeState) {
    if ctx.memory.thp_mode() == ThpMode::Never {
        return;
    }
    khugepaged_pass(state, ctx.memory, ctx.latency, config.khugepaged);
    for i in 0..ctx.memory.node_count() {
        kcompactd_pass(
            state,
            ctx.memory,
            ctx.latency,
            NodeId(i as u8),
            config.kcompactd,
            config.frag_threshold_milli,
        );
    }
}

/// One khugepaged wakeup: walks each process's mapped address space in
/// aligned 512-page windows from a persistent cursor and collapses every
/// eligible window ([`Memory::collapse_candidate`]) into a compound page.
/// Returns the number of windows collapsed.
pub fn khugepaged_pass(
    state: &mut HugeState,
    memory: &mut Memory,
    latency: &LatencyModel,
    budget: DaemonBudget,
) -> u64 {
    if memory.thp_mode() == ThpMode::Never {
        return 0;
    }
    let mut scanned = 0u64;
    let mut time_left = budget.time_ns;
    let mut collapsed = 0u64;
    for pid in memory.pids() {
        if scanned >= budget.scan_pages as u64 || time_left == 0 {
            break;
        }
        memory.space(pid).sorted_vpns_into(&mut state.vpn_scratch);
        // Distinct aligned windows, in address order (the VPNs are
        // sorted, so consecutive dedup suffices).
        state.window_scratch.clear();
        let mut last = u64::MAX;
        for vpn in &state.vpn_scratch {
            let base = vpn.0 & !(HUGE_PAGE_FRAMES - 1);
            if base != last {
                state.window_scratch.push(base);
                last = base;
            }
        }
        let windows = &state.window_scratch;
        if windows.is_empty() {
            continue;
        }
        let mut idx = (*state.khugepaged_cursor.get(&pid).unwrap_or(&0) as usize) % windows.len();
        let mut visited = 0usize;
        while visited < windows.len() && scanned < budget.scan_pages as u64 && time_left > 0 {
            let base = Vpn(windows[idx]);
            idx = (idx + 1) % windows.len();
            visited += 1;
            scanned += HUGE_PAGE_FRAMES;
            time_left = time_left.saturating_sub(latency.scan_page_ns * HUGE_PAGE_FRAMES);
            if let Some(node) = memory.collapse_candidate(pid, base) {
                if memory.collapse_range(pid, base, node).is_ok() {
                    collapsed += 1;
                    time_left =
                        time_left.saturating_sub(latency.migrate_page_ns * COMPOUND_MIGRATE_FACTOR);
                }
            }
        }
        state.khugepaged_cursor.insert(pid, idx as u64);
    }
    collapsed
}

/// One kcompactd wakeup on `node`. Returns the number of pages relocated.
///
/// The daemon only wakes when the node can no longer serve an
/// order-[`MAX_PAGE_ORDER`] allocation *and* its unusable-free-space
/// index exceeds `frag_threshold_milli` — i.e. there is enough free
/// memory, it is just scattered. It then runs the two classic scanners
/// toward each other:
///
/// * the **migration scanner** walks node-relative PFNs upward from a
///   persistent cursor looking for movable base pages (LRU-linked, not
///   compound, not pinned),
/// * the **free scanner** walks downward from the top of the node
///   grabbing free frames with [`tiered_mem::FrameTable::reserve_page`],
///   skipping windows that are already pristine max-order blocks.
///
/// Each pair is relocated with [`Memory::compact_relocate`]; the pass
/// ends when a budget runs dry or the scanners meet, and records one
/// [`TraceEvent::Compact`] whose `success` says whether a max-order block
/// exists afterwards.
pub fn kcompactd_pass(
    state: &mut HugeState,
    memory: &mut Memory,
    latency: &LatencyModel,
    node: NodeId,
    budget: DaemonBudget,
    frag_threshold_milli: u32,
) -> u64 {
    if memory.thp_mode() == ThpMode::Never {
        return 0;
    }
    let frag = memory.frames().unusable_free_index(node, MAX_PAGE_ORDER);
    let triggered = memory.frames().free_blocks(node, MAX_PAGE_ORDER) == 0
        && memory.free_pages(node) >= HUGE_PAGE_FRAMES
        && frag * 1000.0 > frag_threshold_milli as f64;
    if !triggered {
        return 0;
    }
    if memory.trace_enabled() {
        memory.record(TraceEvent::DaemonWake {
            daemon: "kcompactd",
            node: Some(node),
        });
    }
    let range = memory.frames().pfn_range(node);
    let start = range.start;
    let cap = range.end - range.start;
    if state.compact_cursor.len() < memory.node_count() {
        state.compact_cursor.resize(memory.node_count(), 0);
    }
    let mut mig = state.compact_cursor[node.index()].min(cap);
    let mut free_rel = cap;
    let mut migrated = 0u64;
    let mut time_left = budget.time_ns;
    let mut scan_left = budget.scan_pages as u64;
    while time_left >= latency.migrate_page_ns && scan_left > 0 && mig < free_rel {
        // Migration scanner: the next movable base page at or above `mig`.
        let mut src = None;
        while mig < free_rel && scan_left > 0 {
            let pfn = Pfn(start + mig);
            mig += 1;
            scan_left -= 1;
            let f = memory.frames().frame(pfn);
            if f.is_allocated()
                && f.lru_kind().is_some()
                && !f.flags().intersects(
                    PageFlags::HEAD
                        | PageFlags::TAIL
                        | PageFlags::ISOLATED
                        | PageFlags::UNEVICTABLE,
                )
            {
                src = Some(pfn);
                break;
            }
        }
        let Some(src) = src else { break };
        // Free scanner: the next grabbable free frame below `free_rel`.
        let mut dst = None;
        while free_rel > mig {
            free_rel -= 1;
            let pfn = Pfn(start + free_rel);
            if memory.frames().frame(pfn).is_allocated() {
                continue;
            }
            // Don't cannibalise a window that is already a pristine
            // max-order block — that would undo the daemon's own work.
            let window_head = Pfn(start + (free_rel & !(HUGE_PAGE_FRAMES as u32 - 1)));
            let head_frame = memory.frames().frame(window_head);
            if head_frame.flags().contains(PageFlags::BUDDY) && head_frame.order() == MAX_PAGE_ORDER
            {
                continue;
            }
            if memory.frames_mut().reserve_page(pfn) {
                dst = Some(pfn);
                break;
            }
        }
        let Some(dst) = dst else { break };
        memory.compact_relocate(src, dst);
        migrated += 1;
        time_left = time_left.saturating_sub(latency.migrate_page_ns);
    }
    state.compact_cursor[node.index()] = if mig >= free_rel { 0 } else { mig };
    let success = memory.frames().free_blocks(node, MAX_PAGE_ORDER) > 0;
    memory.record(TraceEvent::Compact {
        node,
        migrated,
        success,
    });
    migrated
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{NodeKind, PageType, VmEvent};

    fn thp_machine(mode: ThpMode, pages: u64) -> Memory {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, pages)
            .thp_mode(mode)
            .build();
        m.create_process(Pid(1));
        m
    }

    #[test]
    fn khugepaged_collapses_a_warm_resident_window() {
        let mut m = thp_machine(ThpMode::Madvise, 2048);
        for i in 0..HUGE_PAGE_FRAMES {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        // Warm gate: one referenced page suffices.
        let pfn = match m.space(Pid(1)).translate(Vpn(3)).unwrap() {
            tiered_mem::PageLocation::Mapped(pfn) => pfn,
            other => panic!("unexpected {other:?}"),
        };
        m.frames_mut()
            .frame_mut(pfn)
            .flags_mut()
            .insert(PageFlags::REFERENCED);
        let mut state = HugeState::default();
        let lat = LatencyModel::datacenter();
        let collapsed = khugepaged_pass(&mut state, &mut m, &lat, DaemonBudget::demoter());
        assert_eq!(collapsed, 1);
        assert_eq!(m.vmstat().get(VmEvent::ThpCollapseAlloc), 1);
        let head = match m.space(Pid(1)).translate(Vpn(0)).unwrap() {
            tiered_mem::PageLocation::Mapped(pfn) => pfn,
            other => panic!("unexpected {other:?}"),
        };
        assert!(m.frames().frame(head).flags().contains(PageFlags::HEAD));
        m.validate();
    }

    #[test]
    fn khugepaged_is_a_noop_under_never() {
        let mut m = thp_machine(ThpMode::Never, 2048);
        for i in 0..HUGE_PAGE_FRAMES {
            let pfn = m
                .alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
            m.frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .insert(PageFlags::REFERENCED);
        }
        let mut state = HugeState::default();
        let lat = LatencyModel::datacenter();
        assert_eq!(
            khugepaged_pass(&mut state, &mut m, &lat, DaemonBudget::demoter()),
            0
        );
        assert_eq!(m.vmstat().get(VmEvent::ThpCollapseAlloc), 0);
    }

    #[test]
    fn khugepaged_cursor_resumes_across_wakeups() {
        let mut m = thp_machine(ThpMode::Always, 4096);
        // Three fully resident warm windows.
        for w in 0..3u64 {
            for i in 0..HUGE_PAGE_FRAMES {
                let pfn = m
                    .alloc_and_map(NodeId(0), Pid(1), Vpn(w * 4096 + i), PageType::Anon)
                    .unwrap();
                m.frames_mut().frame_mut(pfn).touch_hotness();
            }
        }
        let mut state = HugeState::default();
        let lat = LatencyModel::datacenter();
        // One window's worth of scan budget per wakeup.
        let budget = DaemonBudget {
            scan_pages: HUGE_PAGE_FRAMES as u32,
            time_ns: 5_000_000,
        };
        for _ in 0..3 {
            assert_eq!(khugepaged_pass(&mut state, &mut m, &lat, budget), 1);
        }
        assert_eq!(m.vmstat().get(VmEvent::ThpCollapseAlloc), 3);
        assert_eq!(khugepaged_pass(&mut state, &mut m, &lat, budget), 0);
        m.validate();
    }

    #[test]
    fn kcompactd_reassembles_a_max_order_block() {
        let mut m = thp_machine(ThpMode::Always, 2048);
        // Fill the node with base pages, then free every other one: 1024
        // free pages, none of them mergeable — worst-case fragmentation.
        for i in 0..2048 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        for i in (0..2048).step_by(2) {
            m.release(Pid(1), Vpn(i));
        }
        assert_eq!(m.frames().free_blocks(NodeId(0), MAX_PAGE_ORDER), 0);
        assert!(m.frames().unusable_free_index(NodeId(0), MAX_PAGE_ORDER) > 0.99);
        let mut state = HugeState::default();
        let lat = LatencyModel::datacenter();
        let moved = kcompactd_pass(
            &mut state,
            &mut m,
            &lat,
            NodeId(0),
            DaemonBudget {
                scan_pages: 4096,
                time_ns: 100_000_000,
            },
            500,
        );
        assert!(moved > 0, "compaction relocated nothing");
        assert!(
            m.frames().free_blocks(NodeId(0), MAX_PAGE_ORDER) > 0,
            "no max-order block after compaction"
        );
        assert_eq!(m.vmstat().get(VmEvent::CompactSuccess), 1);
        assert_eq!(m.vmstat().get(VmEvent::CompactFail), 0);
        m.validate();
    }

    #[test]
    fn kcompactd_does_not_wake_without_fragmentation() {
        let mut m = thp_machine(ThpMode::Always, 2048);
        for i in 0..64 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        let mut state = HugeState::default();
        let lat = LatencyModel::datacenter();
        // Max-order blocks still exist: no wakeup, no events.
        assert_eq!(
            kcompactd_pass(
                &mut state,
                &mut m,
                &lat,
                NodeId(0),
                DaemonBudget::demoter(),
                500
            ),
            0
        );
        assert_eq!(m.vmstat().get(VmEvent::CompactSuccess), 0);
        assert_eq!(m.vmstat().get(VmEvent::CompactFail), 0);
    }

    #[test]
    fn compact_fail_is_counted_when_the_budget_is_too_small() {
        let mut m = thp_machine(ThpMode::Always, 2048);
        for i in 0..2048 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        for i in (0..2048).step_by(2) {
            m.release(Pid(1), Vpn(i));
        }
        let mut state = HugeState::default();
        let lat = LatencyModel::datacenter();
        // Room for only a handful of relocations: the pass runs but
        // cannot finish a block.
        kcompactd_pass(
            &mut state,
            &mut m,
            &lat,
            NodeId(0),
            DaemonBudget {
                scan_pages: 16,
                time_ns: 100_000_000,
            },
            500,
        );
        assert_eq!(m.vmstat().get(VmEvent::CompactFail), 1);
        assert_eq!(m.frames().free_blocks(NodeId(0), MAX_PAGE_ORDER), 0);
        m.validate();
    }
}
