//! **TPP: Transparent Page Placement** — the paper's contribution (§5).
//!
//! Four mechanisms compose the policy:
//!
//! 1. **Migration for lightweight reclamation** (§5.1): when the local
//!    node is pressured, cold pages from the inactive LRU tails (anon
//!    *and* file) are *migrated* to the CXL node instead of paged out —
//!    orders of magnitude cheaper than swap, with the legacy reclaim path
//!    as a per-page fallback. CXL nodes keep the default swap-based
//!    reclaim.
//! 2. **Decoupled allocation and reclamation watermarks** (§5.2):
//!    demotion triggers at `demote_scale_factor` (2%) of capacity and
//!    runs until the higher `demotion_watermark`, while allocations only
//!    check the classic watermark — so the local node always keeps a
//!    headroom of free pages for new (short-lived, hot) allocations and
//!    for promotions.
//! 3. **Reactive, hysteretic page promotion** (§5.3): hint-PTE sampling
//!    restricted to CXL nodes; a faulting page found on the *inactive*
//!    LRU is only marked accessed (moving it to the active list), and is
//!    promoted on its *next* hint fault if still hot — cutting ping-pong
//!    traffic. Promotion ignores the allocation watermark.
//! 4. **Page-type-aware allocation** (§5.4, optional): file/tmpfs caches
//!    are preferentially allocated on the CXL node from the start, while
//!    anon pages keep local preference.
//!
//! The `decouple` and `active_lru_filter` switches exist to reproduce the
//! paper's component ablations (Figures 17 and 18).

use tiered_mem::telemetry::{PromoteFailReason, PromoteSkipReason};
use tiered_mem::{NodeId, PageFlags, PageType, Pfn, Pid, TraceEvent, Vpn, HUGE_PAGE_FRAMES};
use tiered_sim::{Periodic, MS};

use super::huge::{run_huge_daemons, HugeConfig, HugeState, COMPOUND_MIGRATE_FACTOR};
use super::linux_default::{evict_page, fault_with_fallback, kswapd_pass, materialise_cost_ns};
use super::reclaim::{select_victims_into, DaemonBudget, ReclaimScratch, VictimClass};
use super::sampler::{HintSampler, SampleScope, SamplerConfig};
use super::{FaultOutcome, PlacementPolicy, PolicyCtx};

/// Configuration for [`Tpp`].
#[derive(Clone, Copy, Debug)]
pub struct TppConfig {
    /// Budget of the demotion daemon (migration-class).
    pub demote_budget: DaemonBudget,
    /// Budget of the default reclaimer used on CXL nodes.
    pub kswapd_budget: DaemonBudget,
    /// Daemon wakeup period.
    pub tick_period_ns: u64,
    /// Hint-PTE scanner (CXL-only).
    pub sampler: SamplerConfig,
    /// Decoupled allocation/demotion watermarks (§5.2). Disable to
    /// reproduce the Figure 17 ablation.
    pub decouple: bool,
    /// Active-LRU promotion filter (§5.3). Disable to reproduce the
    /// Figure 18 ablation (instant promotion on every hint fault).
    pub active_lru_filter: bool,
    /// Page-type-aware allocation (§5.4): prefer caches on CXL.
    pub cache_to_cxl: bool,
    /// Optional promotion rate limit in pages per second (the
    /// `numa_balancing_promote_rate_limit` knob the upstreamed tiering
    /// code grew after the paper): bounds how much migration bandwidth
    /// promotions may consume. `None` disables the limit.
    pub promote_rate_limit: Option<u64>,
    /// Huge-page daemon knobs (khugepaged/kcompactd); inert unless the
    /// machine runs with a `ThpMode` other than `Never`.
    pub huge: HugeConfig,
}

impl Default for TppConfig {
    fn default() -> TppConfig {
        TppConfig {
            demote_budget: DaemonBudget::demoter(),
            kswapd_budget: DaemonBudget::kswapd(),
            tick_period_ns: 50 * MS,
            sampler: SamplerConfig::scaled(SampleScope::CxlOnly),
            decouple: true,
            active_lru_filter: true,
            cache_to_cxl: false,
            promote_rate_limit: None,
            huge: HugeConfig::default(),
        }
    }
}

/// Transparent Page Placement.
#[derive(Clone, Debug)]
pub struct Tpp {
    config: TppConfig,
    sampler: HintSampler,
    scan_timer: Periodic,
    /// Token bucket for the optional promotion rate limit: tokens are
    /// whole pages, refilled once per second of simulated time.
    promote_tokens: u64,
    token_refill: Periodic,
    kswapd_active: Vec<bool>,
    /// Per-socket demotion-daemon budgets, indexed by node. A multi-socket
    /// machine runs one demoter per CPU socket; each may carry its own
    /// budget. Nodes without an override use `config.demote_budget`.
    node_demote_budgets: Vec<Option<DaemonBudget>>,
    huge_state: HugeState,
}

impl Tpp {
    /// Creates TPP with the paper's default configuration.
    pub fn new() -> Tpp {
        Tpp::with_config(TppConfig::default())
    }

    /// Creates TPP with explicit knobs (ablations, page-type-aware
    /// allocation).
    pub fn with_config(mut config: TppConfig) -> Tpp {
        // NUMA_BALANCING_TIERED: sampling is CXL-only by construction.
        config.sampler.scope = SampleScope::CxlOnly;
        Tpp {
            config,
            sampler: HintSampler::new(config.sampler),
            scan_timer: Periodic::new(config.sampler.period_ns),
            promote_tokens: config.promote_rate_limit.unwrap_or(0),
            token_refill: Periodic::new(tiered_sim::SEC),
            kswapd_active: Vec::new(),
            node_demote_budgets: Vec::new(),
            huge_state: HugeState::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TppConfig {
        &self.config
    }

    /// Gives the demotion daemon of `node` (one daemon per CPU socket) its
    /// own budget, overriding [`TppConfig::demote_budget`] for that node.
    pub fn set_node_demote_budget(&mut self, node: NodeId, budget: DaemonBudget) {
        if self.node_demote_budgets.len() <= node.index() {
            self.node_demote_budgets.resize(node.index() + 1, None);
        }
        self.node_demote_budgets[node.index()] = Some(budget);
    }

    /// The demotion budget in effect for `node`.
    fn demote_budget_for(&self, node: NodeId) -> DaemonBudget {
        self.node_demote_budgets
            .get(node.index())
            .copied()
            .flatten()
            .unwrap_or(self.config.demote_budget)
    }

    /// The demotion daemon: one pass over `node`.
    fn demote_pass(&mut self, ctx: &mut PolicyCtx<'_>, node: NodeId) {
        let wm = *ctx.memory.node(node).watermarks();
        let free = ctx.memory.free_pages(node);
        let (trigger_hit, target_free) = if self.config.decouple {
            (wm.needs_demotion(free), wm.demote_target)
        } else {
            // Ablation: coupled to the classic watermarks like default
            // Linux reclaim.
            (wm.base.needs_reclaim(free), wm.base.high)
        };
        if !trigger_hit {
            return;
        }
        if ctx.memory.trace_enabled() {
            // Which watermark fired distinguishes §5.2 decoupled demotion
            // from the coupled (Figure 17 ablation) trigger.
            ctx.memory.record(TraceEvent::WatermarkCross {
                node,
                level: if self.config.decouple {
                    "demote_trigger"
                } else {
                    "low"
                },
                free,
                below: true,
            });
            ctx.memory.record(TraceEvent::DaemonWake {
                daemon: "demoter",
                node: Some(node),
            });
        }
        // Nearest lower tier with allocation headroom (§5.2); when every
        // candidate is pressured, the nearest one still takes the pages
        // (its own daemon will cascade or reclaim them).
        let order = *ctx.memory.node(node).demotion_order();
        let target = order
            .iter()
            .copied()
            .find(|&t| {
                let wm = ctx.memory.node(t).watermarks().base;
                wm.allows_allocation(ctx.memory.free_pages(t))
            })
            .or_else(|| order.first().copied());
        let Some(target) = target else {
            // Terminal tier: fall back to default reclaim.
            ctx.memory.record(TraceEvent::Decision {
                policy: "tpp",
                reason: "terminal_tier_default_reclaim",
                page: None,
            });
            self.kswapd_active.resize(ctx.memory.node_count(), false);
            let mut active = self.kswapd_active[node.index()];
            kswapd_pass(
                ctx.memory,
                ctx.latency,
                node,
                self.config.kswapd_budget,
                &mut active,
            );
            self.kswapd_active[node.index()] = active;
            return;
        };
        let budget = self.demote_budget_for(node);
        let mut time_left = budget.time_ns;
        let demote_cost = ctx
            .latency
            .migrate_cost_ns(ctx.memory.migrate_hops(node, target));
        let mut scratch = ReclaimScratch::from_pool(ctx.memory);
        while ctx.memory.free_pages(node) < target_free && time_left > 0 {
            let want = (target_free - ctx.memory.free_pages(node)).min(64) as usize;
            // Unlike swapping, demoted pages stay in memory, so TPP scans
            // inactive *anon* pages as well as file pages (§5.1).
            select_victims_into(
                ctx.memory,
                node,
                want,
                budget.scan_pages as usize,
                VictimClass::AnonAndFile,
                &mut scratch,
            );
            if scratch.victims.is_empty() {
                break;
            }
            let mut progressed = false;
            for &pfn in &scratch.victims {
                let frame = ctx.memory.frames().frame(pfn);
                let page_type = frame.page_type();
                let page = frame.owner().expect("demotion victim is allocated");
                // Split-on-demote vs migrate-whole: a cold compound moves
                // as one unit when the target can supply an aligned
                // block; otherwise it is shattered so the base pages take
                // the ordinary path on later passes.
                if frame.flags().contains(PageFlags::HEAD) {
                    let cost = match ctx.memory.migrate_huge(pfn, target) {
                        Ok(new_head) => {
                            ctx.memory
                                .frames_mut()
                                .frame_mut(new_head)
                                .flags_mut()
                                .insert(PageFlags::DEMOTED);
                            ctx.memory.record(TraceEvent::Demote {
                                page,
                                from: node,
                                to: target,
                                page_type,
                            });
                            demote_cost * COMPOUND_MIGRATE_FACTOR
                        }
                        Err(_) => {
                            ctx.memory.split_huge_page(pfn);
                            ctx.latency.migrate_page_ns
                        }
                    };
                    if cost > time_left {
                        time_left = 0;
                        break;
                    }
                    time_left -= cost;
                    progressed = true;
                    continue;
                }
                let cost = match ctx.memory.migrate_page(pfn, target) {
                    Ok(new_pfn) => {
                        // Tag for the ping-pong detector (§5.5).
                        ctx.memory
                            .frames_mut()
                            .frame_mut(new_pfn)
                            .flags_mut()
                            .insert(PageFlags::DEMOTED);
                        ctx.memory.record(TraceEvent::Demote {
                            page,
                            from: node,
                            to: target,
                            page_type,
                        });
                        demote_cost
                    }
                    Err(_) => {
                        // Migration failed (e.g. CXL node full): fall back
                        // to the default reclaim mechanism for this page.
                        ctx.memory.record(TraceEvent::DemoteFallback { page, node });
                        match evict_page(ctx.memory, ctx.latency, pfn) {
                            Some(c) => c,
                            None => break,
                        }
                    }
                };
                if cost > time_left {
                    time_left = 0;
                    break;
                }
                time_left -= cost;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        scratch.into_pool(ctx.memory);
    }
}

impl Default for Tpp {
    fn default() -> Tpp {
        Tpp::new()
    }
}

impl PlacementPolicy for Tpp {
    fn name(&self) -> &str {
        "tpp"
    }

    fn handle_fault(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> FaultOutcome {
        let local = ctx.memory.home_node(pid);
        // Page-type-aware allocation (§5.4): caches go to CXL first.
        if self.config.cache_to_cxl && page_type.is_file_backed() {
            if let Some(&cxl) = ctx.memory.cxl_nodes().first() {
                let was_swapped = matches!(
                    ctx.memory.space(pid).translate(vpn),
                    Some(tiered_mem::PageLocation::Swapped(_))
                );
                let wm = ctx.memory.node(cxl).watermarks().base;
                if wm.allows_allocation(ctx.memory.free_pages(cxl)) {
                    if let Some(pfn) = super::linux_default::try_place(
                        ctx.memory,
                        cxl,
                        pid,
                        vpn,
                        page_type,
                        was_swapped,
                    ) {
                        return FaultOutcome {
                            pfn,
                            cost_ns: materialise_cost_ns(ctx.latency, page_type, was_swapped),
                        };
                    }
                }
            }
        }
        fault_with_fallback(ctx, pid, vpn, page_type, local, "tpp")
    }

    fn on_hint_fault(&mut self, ctx: &mut PolicyCtx<'_>, pfn: Pfn) -> u64 {
        let frame = ctx.memory.frames().frame(pfn);
        let node = frame.node();
        let page = frame.owner().expect("hint fault on a free frame");
        if !ctx.memory.node(node).is_cpu_less() {
            // CXL-only sampling should make this impossible; count it as
            // overhead if it ever happens.
            ctx.memory.record(TraceEvent::HintFaultLocal { page, node });
            return 0;
        }
        // Apt identification of trapped hot pages (§5.3): a page on the
        // inactive LRU may be an infrequently accessed page — mark it
        // accessed (activating it) and promote only if it is found hot
        // again on its next hint fault.
        let lru_kind = ctx.memory.frames().frame(pfn).lru_kind();
        if self.config.active_lru_filter {
            match lru_kind {
                Some(kind) if !kind.is_active() => {
                    ctx.memory.activate_page(pfn);
                    ctx.memory.record(TraceEvent::PromoteSkip {
                        page,
                        reason: PromoteSkipReason::Inactive,
                    });
                    return 0;
                }
                Some(_) => {}
                None => return 0, // isolated elsewhere
            }
        }
        let demoted = ctx
            .memory
            .frames()
            .frame(pfn)
            .flags()
            .contains(PageFlags::DEMOTED);
        ctx.memory
            .record(TraceEvent::PromoteCandidate { page, demoted });
        // Promotion rate limit (upstream's promote_rate_limit knob).
        if let Some(limit) = self.config.promote_rate_limit {
            if self.token_refill.fire(ctx.now_ns) > 0 {
                self.promote_tokens = limit;
            }
            if self.promote_tokens == 0 {
                ctx.memory.record(TraceEvent::PromoteFail {
                    page,
                    reason: PromoteFailReason::System,
                });
                return 0;
            }
            self.promote_tokens -= 1;
        }
        // Promote to the accessing socket's DRAM (§5.3): the faulting
        // task's home node, not a hard-coded node 0.
        let target = ctx.memory.home_node(page.pid);
        // A hinted compound head promotes the whole 512-page unit in one
        // decision (hint sampling is head-granular), so the watermark is
        // checked for the whole block.
        let is_head = ctx
            .memory
            .frames()
            .frame(pfn)
            .flags()
            .contains(PageFlags::HEAD);
        let need = if is_head { HUGE_PAGE_FRAMES } else { 1 };
        // Promotion ignores the allocation watermark (§5.3) — only the
        // hard min floor gates it. Decoupled demotion keeps free pages
        // above that essentially always.
        let wm = ctx.memory.node(target).watermarks();
        if !wm.allows_promotion(ctx.memory.free_pages(target).saturating_sub(need - 1)) {
            ctx.memory.record(TraceEvent::PromoteFail {
                page,
                reason: PromoteFailReason::LowMem,
            });
            return 0;
        }
        ctx.memory.record(TraceEvent::PromoteAttempt {
            page,
            from: node,
            to: target,
        });
        let page_type = ctx.memory.frames().frame(pfn).page_type();
        let migrated = if is_head {
            ctx.memory.migrate_huge(pfn, target)
        } else {
            ctx.memory.migrate_page(pfn, target)
        };
        match migrated {
            Ok(new_pfn) => {
                // Promotion clears PG_demoted (§5.5).
                ctx.memory
                    .frames_mut()
                    .frame_mut(new_pfn)
                    .flags_mut()
                    .remove(PageFlags::DEMOTED);
                ctx.memory.record(TraceEvent::PromoteSuccess {
                    page,
                    from: node,
                    to: target,
                    page_type,
                });
                let unit = ctx
                    .latency
                    .migrate_cost_ns(ctx.memory.migrate_hops(node, target));
                if is_head {
                    unit * COMPOUND_MIGRATE_FACTOR
                } else {
                    unit
                }
            }
            Err(tiered_mem::MigrateError::DstNoMemory { .. }) => {
                ctx.memory.record(TraceEvent::PromoteFail {
                    page,
                    reason: PromoteFailReason::LowMem,
                });
                0
            }
            Err(_) => {
                ctx.memory.record(TraceEvent::PromoteFail {
                    page,
                    reason: PromoteFailReason::Busy,
                });
                0
            }
        }
    }

    fn tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        // Demotion daemon on local nodes.
        for node in ctx.memory.local_nodes() {
            self.demote_pass(ctx, node);
        }
        // Default reclaim on CXL nodes (allocation there is not
        // performance-critical, §5.1).
        self.kswapd_active.resize(ctx.memory.node_count(), false);
        for node in ctx.memory.cxl_nodes() {
            let mut active = self.kswapd_active[node.index()];
            kswapd_pass(
                ctx.memory,
                ctx.latency,
                node,
                self.config.kswapd_budget,
                &mut active,
            );
            self.kswapd_active[node.index()] = active;
        }
        run_huge_daemons(ctx, &self.config.huge, &mut self.huge_state);
        if self.scan_timer.fire(ctx.now_ns) > 0 {
            self.sampler.scan(ctx.memory);
        }
    }

    fn tick_period_ns(&self) -> u64 {
        self.config.tick_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::VmEvent;
    use tiered_mem::{LruKind, Memory, NodeKind};
    use tiered_sim::{LatencyModel, SimRng};

    fn setup(local: u64, cxl: u64) -> (Memory, LatencyModel, SimRng) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, local)
            .node(NodeKind::Cxl, cxl)
            .swap_pages(4096)
            .build();
        m.create_process(Pid(1));
        (m, LatencyModel::datacenter(), SimRng::seed(1))
    }

    fn tick(p: &mut Tpp, m: &mut Memory, lat: &LatencyModel, rng: &mut SimRng, now: u64) {
        let mut ctx = PolicyCtx {
            memory: m,
            latency: lat,
            now_ns: now,
            rng,
        };
        p.tick(&mut ctx);
    }

    #[test]
    fn demotion_migrates_cold_pages_and_tags_them() {
        let (mut m, lat, mut rng) = setup(256, 1024);
        let mut p = Tpp::new();
        // Fill local past the demotion trigger.
        let trigger = m.node(NodeId(0)).watermarks().demote_trigger;
        for i in 0..(256 - trigger + 8).min(255) {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
                .unwrap();
        }
        assert!(m
            .node(NodeId(0))
            .watermarks()
            .needs_demotion(m.free_pages(NodeId(0))));
        for t in 0..10 {
            tick(&mut p, &mut m, &lat, &mut rng, t * 50 * MS);
        }
        let demoted = m.vmstat().demoted_total();
        assert!(demoted > 0, "nothing was demoted");
        assert_eq!(m.swap().used_slots(), 0, "TPP must migrate, not swap");
        // Demoted pages carry PG_demoted.
        let tagged = m
            .frames()
            .allocated_on(NodeId(1))
            .filter(|&f| m.frames().frame(f).flags().contains(PageFlags::DEMOTED))
            .count() as u64;
        assert_eq!(tagged, demoted);
        // Decoupling: free pages now exceed the demotion target.
        assert!(m.free_pages(NodeId(0)) >= m.node(NodeId(0)).watermarks().demote_target);
        m.validate();
    }

    #[test]
    fn demotion_scans_anon_pages_too() {
        let (mut m, lat, mut rng) = setup(256, 1024);
        let mut p = Tpp::new();
        for i in 0..250 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        for t in 0..20 {
            tick(&mut p, &mut m, &lat, &mut rng, t * 50 * MS);
        }
        assert!(m.vmstat().get(VmEvent::PgDemoteAnon) > 0);
        assert_eq!(m.swap().used_slots(), 0);
        m.validate();
    }

    #[test]
    fn inactive_page_is_activated_not_promoted_then_promoted_when_hot() {
        let (mut m, lat, mut rng) = setup(64, 64);
        let mut p = Tpp::new();
        // A file page on the CXL node starts on the inactive list.
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::File)
            .unwrap();
        assert_eq!(
            m.frames().frame(pfn).lru_kind(),
            Some(LruKind::FileInactive)
        );
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        // First hint fault: activated, not promoted.
        assert_eq!(p.on_hint_fault(&mut ctx, pfn), 0);
        assert_eq!(m.frames().frame(pfn).lru_kind(), Some(LruKind::FileActive));
        assert_eq!(m.frames().frame(pfn).node(), NodeId(1));
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteSkipInactive), 1);
        // Second hint fault: found on the active LRU → promoted.
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let cost = p.on_hint_fault(&mut ctx, pfn);
        assert_eq!(cost, lat.migrate_page_ns);
        let new = m.space(Pid(1)).translate(Vpn(0)).unwrap().pfn().unwrap();
        assert_eq!(m.frames().frame(new).node(), NodeId(0));
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteSuccessFile), 1);
        m.validate();
    }

    #[test]
    fn disabling_the_filter_promotes_instantly() {
        let (mut m, lat, mut rng) = setup(64, 64);
        let mut p = Tpp::with_config(TppConfig {
            active_lru_filter: false,
            ..TppConfig::default()
        });
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::File)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        assert!(p.on_hint_fault(&mut ctx, pfn) > 0);
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteSuccessFile), 1);
    }

    #[test]
    fn promotion_ignores_allocation_watermark() {
        let (mut m, lat, mut rng) = setup(64, 64);
        let mut p = Tpp::new();
        // Fill local down to just above min: ordinary NUMA balancing
        // would refuse (it checks high), TPP promotes.
        let min = m.node(NodeId(0)).watermarks().base.min;
        for i in 0..(64 - min - 1) {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(1000 + i), PageType::Anon)
                .unwrap();
        }
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        // Anon pages start active → no filter skip.
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let cost = p.on_hint_fault(&mut ctx, pfn);
        assert!(cost > 0, "promotion should bypass the allocation watermark");
        assert_eq!(m.vmstat().promoted_total(), 1);
        m.validate();
    }

    #[test]
    fn promotion_clears_demoted_flag_and_counts_pingpong() {
        let (mut m, lat, mut rng) = setup(64, 64);
        let mut p = Tpp::new();
        let pfn = m
            .alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let demoted = m.migrate_page(pfn, NodeId(1)).unwrap();
        m.frames_mut()
            .frame_mut(demoted)
            .flags_mut()
            .insert(PageFlags::DEMOTED);
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        assert!(p.on_hint_fault(&mut ctx, demoted) > 0);
        assert_eq!(m.vmstat().get(VmEvent::PgPromoteCandidateDemoted), 1);
        let new = m.space(Pid(1)).translate(Vpn(0)).unwrap().pfn().unwrap();
        assert!(!m.frames().frame(new).flags().contains(PageFlags::DEMOTED));
    }

    #[test]
    fn cache_to_cxl_places_files_remotely_and_anons_locally() {
        let (mut m, lat, mut rng) = setup(64, 64);
        let mut p = Tpp::with_config(TppConfig {
            cache_to_cxl: true,
            ..TppConfig::default()
        });
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let f = p.handle_fault(&mut ctx, Pid(1), Vpn(0), PageType::Tmpfs);
        let a = p.handle_fault(&mut ctx, Pid(1), Vpn(1), PageType::Anon);
        assert_eq!(m.frames().frame(f.pfn).node(), NodeId(1));
        assert_eq!(m.frames().frame(a.pfn).node(), NodeId(0));
        m.validate();
    }

    #[test]
    fn promotion_rate_limit_caps_migrations() {
        let (mut m, lat, mut rng) = setup(256, 256);
        let mut p = Tpp::with_config(TppConfig {
            promote_rate_limit: Some(3),
            ..TppConfig::default()
        });
        // Eight hot anon pages on CXL, all hint-faulting within the same
        // simulated second.
        let pfns: Vec<Pfn> = (0..8)
            .map(|i| {
                m.alloc_and_map(NodeId(1), Pid(1), Vpn(i), PageType::Anon)
                    .unwrap()
            })
            .collect();
        let mut promoted = 0;
        for pfn in pfns {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 100,
                rng: &mut rng,
            };
            if p.on_hint_fault(&mut ctx, pfn) > 0 {
                promoted += 1;
            }
        }
        assert_eq!(promoted, 3, "only the budgeted pages may promote");
        assert!(m.vmstat().get(VmEvent::PgPromoteFailSystem) >= 5);
        // A second later the bucket refills.
        let pfn = m
            .alloc_and_map(NodeId(1), Pid(1), Vpn(100), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 2 * tiered_sim::SEC,
            rng: &mut rng,
        };
        assert!(p.on_hint_fault(&mut ctx, pfn) > 0);
        m.validate();
    }

    #[test]
    fn demotion_skips_full_target_for_one_with_headroom() {
        // Local DRAM, a nearly-full direct CXL expander, and a roomy
        // switch-attached pool: demotions should skip the pressured CXL
        // node and land on the pool.
        // No swap: the full expander stays full (its kswapd cannot evict),
        // so the skip decision is exercised on every pass.
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 256)
            .node(NodeKind::Cxl, 64)
            .node(NodeKind::CxlSwitched, 1024)
            .swap_pages(0)
            .build();
        m.create_process(Pid(1));
        let (lat, mut rng) = (LatencyModel::datacenter(), SimRng::seed(1));
        let mut p = Tpp::new();
        // Exhaust the direct expander's allocation headroom.
        let min = m.node(NodeId(1)).watermarks().base.min;
        for i in 0..(64 - min) {
            m.alloc_and_map(NodeId(1), Pid(1), Vpn(10_000 + i), PageType::Anon)
                .unwrap();
        }
        for i in 0..250 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Anon)
                .unwrap();
        }
        for t in 0..10 {
            tick(&mut p, &mut m, &lat, &mut rng, t * 50 * MS);
        }
        assert!(m.vmstat().demoted_total() > 0);
        assert!(
            m.migrations_between(NodeId(0), NodeId(2)) > 0,
            "demotion should fall through to the pool with headroom"
        );
        assert_eq!(m.migrations_between(NodeId(0), NodeId(1)), 0);
        m.validate();
    }

    #[test]
    fn per_node_demote_budget_overrides_the_default() {
        let (mut m, lat, mut rng) = setup(256, 1024);
        let mut p = Tpp::new();
        // A starvation budget on node 0's demoter: at most one page fits
        // per wakeup before the time budget runs dry.
        p.set_node_demote_budget(
            NodeId(0),
            DaemonBudget {
                scan_pages: 64,
                time_ns: 1,
            },
        );
        for i in 0..250 {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
                .unwrap();
        }
        for t in 0..10 {
            tick(&mut p, &mut m, &lat, &mut rng, t * 50 * MS);
        }
        assert!(
            m.vmstat().demoted_total() <= 10,
            "a starved per-node budget must throttle that node's demoter"
        );
        assert!(
            m.free_pages(NodeId(0)) < m.node(NodeId(0)).watermarks().demote_target,
            "the default budget would have reached the demotion target"
        );
        m.validate();
    }

    #[test]
    fn coupled_ablation_behaves_like_late_reclaim() {
        let (mut m, lat, mut rng) = setup(256, 1024);
        let mut p = Tpp::with_config(TppConfig {
            decouple: false,
            ..TppConfig::default()
        });
        // Fill to just below the demote trigger but above the classic low
        // watermark: decoupled TPP would demote; coupled must not.
        let trigger = m.node(NodeId(0)).watermarks().demote_trigger;
        for i in 0..(256 - trigger - 1) {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
                .unwrap();
        }
        tick(&mut p, &mut m, &lat, &mut rng, 0);
        assert_eq!(
            m.vmstat().demoted_total(),
            0,
            "coupled TPP must not demote early"
        );
        let low = m.node(NodeId(0)).watermarks().base.low;
        let more = m.free_pages(NodeId(0)) - low + 1;
        for i in 0..more {
            m.alloc_and_map(NodeId(0), Pid(1), Vpn(5000 + i), PageType::File)
                .unwrap();
        }
        tick(&mut p, &mut m, &lat, &mut rng, 50 * MS);
        assert!(m.vmstat().demoted_total() > 0, "below low it must demote");
        m.validate();
    }

    use tiered_mem::{ThpMode, HUGE_PAGE_FRAMES};

    fn thp_setup(local: u64, cxl: u64) -> (Memory, LatencyModel, SimRng) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, local)
            .node(NodeKind::Cxl, cxl)
            .swap_pages(4096)
            .thp_mode(ThpMode::Always)
            .build();
        m.create_process(Pid(1));
        (m, LatencyModel::datacenter(), SimRng::seed(1))
    }

    #[test]
    fn compound_promotion_moves_the_whole_unit() {
        let (mut m, lat, mut rng) = thp_setup(2048, 2048);
        let mut p = Tpp::new();
        let head = m
            .alloc_huge_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        // Heads start on the active LRU, so the §5.3 filter passes.
        let cost = p.on_hint_fault(&mut ctx, head);
        assert_eq!(
            cost,
            lat.migrate_page_ns * super::COMPOUND_MIGRATE_FACTOR,
            "a compound promotion is one decision at compound cost"
        );
        for i in 0..HUGE_PAGE_FRAMES {
            let pfn = m.space(Pid(1)).translate(Vpn(i)).unwrap().pfn().unwrap();
            assert_eq!(m.frames().frame(pfn).node(), NodeId(0));
        }
        assert_eq!(m.vmstat().promoted_total(), 1);
        assert_eq!(m.vmstat().get(VmEvent::ThpSplit), 0);
        m.validate();
    }

    #[test]
    fn compound_demotion_migrates_whole_when_target_has_an_aligned_block() {
        let (mut m, lat, mut rng) = thp_setup(2048, 4096);
        let mut p = Tpp::new();
        let head = m
            .alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        // Push the local node below its demotion trigger with hot base
        // pages; the untouched compound is the coldest victim.
        let trigger = m.node(NodeId(0)).watermarks().demote_trigger;
        let mut vpn = 100_000;
        while m.free_pages(NodeId(0)) >= trigger {
            let pfn = m
                .alloc_and_map(NodeId(0), Pid(1), Vpn(vpn), PageType::Anon)
                .unwrap();
            m.frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .insert(PageFlags::REFERENCED);
            vpn += 1;
        }
        for t in 0..20 {
            tick(&mut p, &mut m, &lat, &mut rng, t * 50 * MS);
        }
        let new_head = m.space(Pid(1)).translate(Vpn(0)).unwrap().pfn().unwrap();
        let frame = m.frames().frame(new_head);
        assert_eq!(frame.node(), NodeId(1), "the compound should demote");
        assert!(frame.flags().contains(PageFlags::HEAD), "still one unit");
        assert!(frame.flags().contains(PageFlags::DEMOTED));
        assert_eq!(m.vmstat().get(VmEvent::ThpSplit), 0);
        let _ = head;
        m.validate();
    }

    #[test]
    fn compound_demotion_splits_when_target_has_no_aligned_block() {
        // A 511-page CXL node can never hold an aligned order-9 block, so
        // every compound demotion must take the split-on-demote path.
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 2048)
            .node(NodeKind::Cxl, 511)
            .swap_pages(4096)
            .thp_mode(ThpMode::Always)
            .build();
        m.create_process(Pid(1));
        let (lat, mut rng) = (LatencyModel::datacenter(), SimRng::seed(1));
        let mut p = Tpp::new();
        m.alloc_huge_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        let trigger = m.node(NodeId(0)).watermarks().demote_trigger;
        let mut vpn = 100_000;
        while m.free_pages(NodeId(0)) >= trigger {
            let pfn = m
                .alloc_and_map(NodeId(0), Pid(1), Vpn(vpn), PageType::Anon)
                .unwrap();
            m.frames_mut()
                .frame_mut(pfn)
                .flags_mut()
                .insert(PageFlags::REFERENCED);
            vpn += 1;
        }
        for t in 0..10 {
            tick(&mut p, &mut m, &lat, &mut rng, t * 50 * MS);
        }
        assert!(
            m.vmstat().get(VmEvent::ThpSplit) >= 1,
            "demotion into a fragmented tier must split"
        );
        m.validate();
    }
}
