//! Page-placement policies: the decision layer on top of the
//! [`tiered_mem`] mechanics.
//!
//! Four policies are provided, mirroring the paper's evaluation matrix:
//!
//! * [`LinuxDefault`] — coupled allocation/reclamation, paging to swap
//!   (§4.1: the baseline whose pitfalls motivate TPP),
//! * [`NumaBalancing`] — hint-fault promotion gated on local watermarks,
//!   no demotion to CPU-less nodes (§4.2),
//! * [`AutoTiering`] — timer-based hotness demotion plus optimised NUMA
//!   balancing with a fixed reserved promotion buffer (§6.4),
//! * [`Tpp`] — the paper's contribution (§5): migration-based demotion,
//!   decoupled allocation/demotion watermarks, active-LRU-filtered
//!   promotion from CXL-only sampling, and optional page-type-aware
//!   allocation,
//! * [`InMemorySwap`] — a zswap/zram-style extra baseline the paper's
//!   related-work section argues against (§7).

mod autotiering;
mod huge;
mod inmem_swap;
mod linux_default;
mod numa_balancing;
mod reclaim;
mod sampler;
mod tpp_policy;

pub use autotiering::{AutoTiering, AutoTieringConfig};
pub use huge::{
    kcompactd_pass, khugepaged_pass, run_huge_daemons, HugeConfig, HugeState,
    COMPOUND_MIGRATE_FACTOR,
};
pub use inmem_swap::{InMemorySwap, InMemorySwapConfig};
pub use linux_default::{LinuxDefault, LinuxDefaultConfig};
pub use numa_balancing::{NumaBalancing, NumaBalancingConfig};
pub use reclaim::{
    age_active_list, select_victims, select_victims_into, DaemonBudget, ReclaimScratch, VictimClass,
};
pub use sampler::{HintSampler, SampleScope, SamplerConfig};
pub use tpp_policy::{Tpp, TppConfig};

use std::error::Error;
use std::fmt;

use tiered_mem::{Memory, NodeId, PageType, Pfn, Pid, Vpn};
use tiered_sim::{LatencyModel, SimRng};

/// Everything a policy may touch while making a decision.
pub struct PolicyCtx<'a> {
    /// The machine's memory subsystem.
    pub memory: &'a mut Memory,
    /// Operation cost model.
    pub latency: &'a LatencyModel,
    /// Current simulated time.
    pub now_ns: u64,
    /// Deterministic randomness.
    pub rng: &'a mut SimRng,
}

/// A policy rejected the machine configuration (e.g. AutoTiering on a 1:4
/// local:CXL split, which the paper reports crashing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedConfig {
    /// The policy that refused.
    pub policy: String,
    /// Why.
    pub reason: String,
}

impl fmt::Display for UnsupportedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cannot run on this machine: {}",
            self.policy, self.reason
        )
    }
}

impl Error for UnsupportedConfig {}

/// Outcome of a fault handled by a policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The frame now backing the page.
    pub pfn: Pfn,
    /// Extra latency charged to the faulting task (fault handling, any
    /// direct reclaim or swap I/O on the critical path).
    pub cost_ns: u64,
}

/// A page-placement policy.
///
/// The system runner invokes:
///
/// * [`PlacementPolicy::handle_fault`] when an access misses the page
///   table (first touch or swapped-out page),
/// * [`PlacementPolicy::on_hint_fault`] when an access trips a NUMA hint
///   PTE,
/// * [`PlacementPolicy::tick`] periodically (every
///   [`PlacementPolicy::tick_period_ns`]) for background daemons —
///   reclaim, demotion, hint-PTE sampling.
pub trait PlacementPolicy {
    /// Policy name, e.g. `"tpp"`.
    fn name(&self) -> &str;

    /// Checks whether the policy can run on this machine at all.
    ///
    /// # Errors
    ///
    /// [`UnsupportedConfig`] when it cannot (the paper's AutoTiering
    /// crashes on 1:4 local:CXL configurations).
    fn validate_config(&self, memory: &Memory) -> Result<(), UnsupportedConfig> {
        let _ = memory;
        Ok(())
    }

    /// Places a faulting page (first touch or swap-in) and returns the
    /// frame plus the latency charged to the faulting task.
    ///
    /// # Panics
    ///
    /// Implementations panic if memory is exhausted beyond recovery
    /// (simulated OOM) — experiment configurations are sized to avoid
    /// this.
    fn handle_fault(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> FaultOutcome;

    /// Handles a NUMA hint fault on the mapped page `pfn`; returns the
    /// extra latency charged to the faulting task (fault handling plus
    /// any synchronous promotion migration).
    fn on_hint_fault(&mut self, ctx: &mut PolicyCtx<'_>, pfn: Pfn) -> u64 {
        let _ = (ctx, pfn);
        0
    }

    /// Runs background work (kswapd/kdemoted wakeup, hint-PTE sampling).
    fn tick(&mut self, ctx: &mut PolicyCtx<'_>);

    /// How often [`PlacementPolicy::tick`] should run.
    fn tick_period_ns(&self) -> u64;
}

/// The local node a task's allocations prefer: the first CPU-attached
/// node (the paper's evaluation machines have exactly one).
///
/// # Panics
///
/// Panics if the machine has no CPU-attached node.
pub fn preferred_local_node(memory: &Memory) -> NodeId {
    *memory
        .local_nodes()
        .first()
        .expect("machine has no CPU-attached node")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_config_displays() {
        let e = UnsupportedConfig {
            policy: "autotiering".into(),
            reason: "1:4 split".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("autotiering"));
        assert!(msg.contains("1:4"));
    }

    #[test]
    fn preferred_local_node_is_first_dram_node() {
        use tiered_mem::NodeKind;
        let m = Memory::builder()
            .node(NodeKind::LocalDram, 16)
            .node(NodeKind::Cxl, 16)
            .build();
        assert_eq!(preferred_local_node(&m), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "no CPU-attached node")]
    fn cxl_only_machine_has_no_local() {
        use tiered_mem::NodeKind;
        let m = Memory::builder().node(NodeKind::Cxl, 16).build();
        preferred_local_node(&m);
    }
}
