//! An in-memory-swap baseline (zswap/zram-style), the alternative the
//! paper's related-work section argues against (§7): cold pages are
//! "swapped" into a fast in-memory pool (here: CXL-backed, so swap I/O
//! costs are copy-like rather than disk-like), but **every access to a
//! swapped-out page takes a page fault** and must be brought back before
//! use.
//!
//! The paper's point, which the evaluation here reproduces: when
//! CXL-Memory is part of the main memory (TPP), less frequently accessed
//! pages can live there and still be accessed directly with no fault;
//! with in-memory swapping, pages of intermediate temperature bounce
//! through the fault path on every cold re-access, which hurts workloads
//! that touch pages at varied frequencies.

use tiered_mem::{NodeId, PageKey, PageLocation, PageType, Pid, TraceEvent, Vpn};
use tiered_sim::MS;

use super::linux_default::{materialise_cost_ns, try_place};
use super::reclaim::{select_victims_into, DaemonBudget, ReclaimScratch, VictimClass};
use super::{FaultOutcome, PlacementPolicy, PolicyCtx};

/// Configuration for [`InMemorySwap`].
#[derive(Clone, Copy, Debug)]
pub struct InMemorySwapConfig {
    /// Cost of compressing/copying one page out to the in-memory pool.
    pub swap_out_ns: u64,
    /// Cost of bringing one page back (fault handling + copy).
    pub swap_in_ns: u64,
    /// Reclaim daemon budget (generous: in-memory swap is cheap).
    pub budget: DaemonBudget,
    /// Daemon wakeup period.
    pub tick_period_ns: u64,
}

impl Default for InMemorySwapConfig {
    fn default() -> InMemorySwapConfig {
        InMemorySwapConfig {
            swap_out_ns: 4_000,
            swap_in_ns: 6_000,
            budget: DaemonBudget {
                scan_pages: 512,
                time_ns: 5_000_000,
            },
            tick_period_ns: 50 * MS,
        }
    }
}

/// zswap-style placement: reclaim to a fast in-memory pool, fault pages
/// back on access, no migration and no NUMA awareness.
#[derive(Clone, Debug, Default)]
pub struct InMemorySwap {
    config: InMemorySwapConfig,
}

impl InMemorySwap {
    /// Creates the policy with default knobs.
    pub fn new() -> InMemorySwap {
        InMemorySwap {
            config: InMemorySwapConfig::default(),
        }
    }

    /// Creates the policy with explicit knobs.
    pub fn with_config(config: InMemorySwapConfig) -> InMemorySwap {
        InMemorySwap { config }
    }
}

impl PlacementPolicy for InMemorySwap {
    fn name(&self) -> &str {
        "inmem_swap"
    }

    fn handle_fault(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        pid: Pid,
        vpn: Vpn,
        page_type: PageType,
    ) -> FaultOutcome {
        let prefer = ctx.memory.home_node(pid);
        let was_swapped = matches!(
            ctx.memory.space(pid).translate(vpn),
            Some(PageLocation::Swapped(_))
        );
        // Swap-ins come back fast (in-memory pool), everything else costs
        // what it normally costs.
        let base_cost = if was_swapped {
            ctx.latency.hint_fault_ns + self.config.swap_in_ns
        } else {
            materialise_cost_ns(ctx.latency, page_type, false)
        };
        for node in ctx.memory.fallback_order(prefer) {
            let wm = ctx.memory.node(node).watermarks().base;
            if !wm.allows_allocation(ctx.memory.free_pages(node)) {
                continue;
            }
            if let Some(pfn) = try_place(ctx.memory, node, pid, vpn, page_type, was_swapped) {
                return FaultOutcome {
                    pfn,
                    cost_ns: base_cost,
                };
            }
        }
        // Synchronous reclaim into the pool (fast), escalating the scan
        // budget like direct reclaim does until at least one page frees.
        ctx.memory.record(TraceEvent::AllocStall { node: prefer });
        ctx.memory.record(TraceEvent::Decision {
            policy: "inmem_swap",
            reason: "alloc_stall_sync_pool_reclaim",
            page: Some(PageKey::new(pid, vpn)),
        });
        let mut cost = base_cost;
        let node_pages = ctx.memory.capacity(prefer) as usize;
        let mut scan_budget = 512usize;
        let mut scratch = ReclaimScratch::from_pool(ctx.memory);
        loop {
            select_victims_into(
                ctx.memory,
                prefer,
                32,
                scan_budget,
                VictimClass::AnonAndFile,
                &mut scratch,
            );
            let mut freed = 0usize;
            for &v in &scratch.victims {
                let page = ctx
                    .memory
                    .frames()
                    .frame(v)
                    .owner()
                    .expect("victim is allocated");
                if ctx.memory.swap_out(v).is_ok() {
                    ctx.memory
                        .record(TraceEvent::ReclaimSteal { page, node: prefer });
                    cost += self.config.swap_out_ns;
                    freed += 1;
                }
            }
            if freed > 0 || scan_budget >= node_pages {
                break;
            }
            scan_budget = (scan_budget * 8).min(node_pages);
        }
        scratch.into_pool(ctx.memory);
        for node in ctx.memory.fallback_order(prefer) {
            if let Some(pfn) = try_place(ctx.memory, node, pid, vpn, page_type, was_swapped) {
                return FaultOutcome { pfn, cost_ns: cost };
            }
        }
        panic!("simulated OOM under in-memory swap: {pid}:{vpn}");
    }

    fn tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        for i in 0..ctx.memory.node_count() {
            let node = NodeId(i as u8);
            let wm = ctx.memory.node(node).watermarks().base;
            if !wm.needs_reclaim(ctx.memory.free_pages(node)) {
                continue;
            }
            ctx.memory.record(TraceEvent::DaemonWake {
                daemon: "pool_reclaim",
                node: Some(node),
            });
            let mut time_left = self.config.budget.time_ns;
            let mut scratch = ReclaimScratch::from_pool(ctx.memory);
            while !wm.reclaim_satisfied(ctx.memory.free_pages(node)) && time_left > 0 {
                let want = (wm.high - ctx.memory.free_pages(node)).min(64) as usize;
                select_victims_into(
                    ctx.memory,
                    node,
                    want,
                    self.config.budget.scan_pages as usize,
                    VictimClass::AnonAndFile,
                    &mut scratch,
                );
                if scratch.victims.is_empty() {
                    break;
                }
                let mut progressed = false;
                for &pfn in &scratch.victims {
                    // Everything goes to the in-memory pool, even file
                    // pages (zram holds any page).
                    let page = ctx
                        .memory
                        .frames()
                        .frame(pfn)
                        .owner()
                        .expect("victim is allocated");
                    if ctx.memory.swap_out(pfn).is_err() {
                        time_left = 0;
                        break;
                    }
                    ctx.memory.record(TraceEvent::ReclaimSteal { page, node });
                    if self.config.swap_out_ns > time_left {
                        time_left = 0;
                        break;
                    }
                    time_left -= self.config.swap_out_ns;
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            scratch.into_pool(ctx.memory);
        }
    }

    fn tick_period_ns(&self) -> u64 {
        self.config.tick_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::VmEvent;
    use tiered_mem::{Memory, NodeKind};
    use tiered_sim::{LatencyModel, SimRng};

    fn setup() -> (Memory, LatencyModel, SimRng, InMemorySwap) {
        let mut m = Memory::builder()
            .node(NodeKind::LocalDram, 64)
            .node(NodeKind::Cxl, 64)
            .swap_pages(1024)
            .build();
        m.create_process(Pid(1));
        (
            m,
            LatencyModel::datacenter(),
            SimRng::seed(1),
            InMemorySwap::new(),
        )
    }

    #[test]
    fn reclaim_swaps_everything_including_files() {
        let (mut m, lat, mut rng, mut p) = setup();
        let min = m.node(NodeId(0)).watermarks().base.min;
        for i in 0..(64 - min) {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.handle_fault(&mut ctx, Pid(1), Vpn(i), PageType::File);
        }
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        p.tick(&mut ctx);
        assert!(
            m.swap().used_slots() > 0,
            "files should land in the pool too"
        );
        assert_eq!(m.vmstat().get(VmEvent::PgDropFile), 0);
        m.validate();
    }

    #[test]
    fn swapped_page_faults_back_cheaply() {
        let (mut m, lat, mut rng, mut p) = setup();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let out = p.handle_fault(&mut ctx, Pid(1), Vpn(7), PageType::Anon);
        m.swap_out(out.pfn).unwrap();
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        let back = p.handle_fault(&mut ctx, Pid(1), Vpn(7), PageType::Anon);
        // Much cheaper than a disk swap-in, costlier than a plain touch.
        assert!(back.cost_ns < lat.swap_in_total_ns() / 2);
        assert!(back.cost_ns >= p.config.swap_in_ns);
        m.validate();
    }

    #[test]
    fn no_migration_ever_happens() {
        let (mut m, lat, mut rng, mut p) = setup();
        for i in 0..50 {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.handle_fault(&mut ctx, Pid(1), Vpn(i), PageType::Anon);
        }
        for _ in 0..5 {
            let mut ctx = PolicyCtx {
                memory: &mut m,
                latency: &lat,
                now_ns: 0,
                rng: &mut rng,
            };
            p.tick(&mut ctx);
        }
        assert_eq!(m.vmstat().get(VmEvent::PgMigrateSuccess), 0);
        assert_eq!(m.vmstat().demoted_total(), 0);
    }
}
