//! Co-located workloads: several services sharing one tiered machine.
//!
//! Datacenter hosts rarely run a single process; the paper's mechanisms
//! (shared watermarks, one demotion daemon, promotion into the shared
//! local node) all operate machine-wide. [`MultiSystem`] runs any number
//! of workloads over one [`Memory`] under one policy, each on its own
//! virtual CPU: workload-local clocks advance independently, and the
//! scheduler always progresses the workload that is furthest behind, so
//! the interleaving is deterministic and fair.

use tiered_mem::{EventSink, Memory, PageFlags, PageKey, PageLocation, TraceEvent};
use tiered_sim::{
    AccessObserver, LatencyModel, NullObserver, Periodic, SimRng, Workload, WorkloadEvent,
};

use crate::metrics::RunMetrics;
use crate::policy::{PlacementPolicy, PolicyCtx, UnsupportedConfig};

/// One co-located workload and its execution state.
struct Lane {
    workload: Box<dyn Workload>,
    /// This lane's virtual-CPU clock.
    clock_ns: u64,
    metrics: RunMetrics,
}

/// A machine shared by several workloads under one placement policy.
///
/// # Examples
///
/// ```
/// use tiered_sim::SEC;
/// use tpp::{configs, policy::Tpp, MultiSystem};
///
/// let a = tiered_workloads::cache1(2_000).build();
/// let b = tiered_workloads::data_warehouse(2_000).build();
/// let memory = configs::two_to_one(6_000);
/// let mut system = MultiSystem::new(
///     memory,
///     Box::new(Tpp::new()),
///     vec![Box::new(a), Box::new(b)],
///     7,
/// )?;
/// system.run(2 * SEC);
/// assert_eq!(system.lane_count(), 2);
/// # Ok::<(), tpp::policy::UnsupportedConfig>(())
/// ```
pub struct MultiSystem {
    memory: Memory,
    policy: Box<dyn PlacementPolicy>,
    lanes: Vec<Lane>,
    latency: LatencyModel,
    rng: SimRng,
    daemon_timer: Periodic,
    sample_timer: Periodic,
}

impl MultiSystem {
    /// Assembles a co-located system.
    ///
    /// # Errors
    ///
    /// [`UnsupportedConfig`] if the policy rejects the machine.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or two workloads share a pid.
    pub fn new(
        memory: Memory,
        policy: Box<dyn PlacementPolicy>,
        workloads: Vec<Box<dyn Workload>>,
        seed: u64,
    ) -> Result<MultiSystem, UnsupportedConfig> {
        assert!(!workloads.is_empty(), "at least one workload required");
        policy.validate_config(&memory)?;
        let mut memory = memory;
        for w in &workloads {
            memory.create_process(w.pid());
        }
        let daemon_timer = Periodic::new(policy.tick_period_ns());
        let lanes = workloads
            .into_iter()
            .map(|workload| Lane {
                workload,
                clock_ns: 0,
                metrics: RunMetrics::new(),
            })
            .collect();
        Ok(MultiSystem {
            memory,
            policy,
            lanes,
            latency: LatencyModel::datacenter(),
            rng: SimRng::seed(seed),
            daemon_timer,
            sample_timer: Periodic::new(RunMetrics::sample_period_ns()),
        })
    }

    /// Number of co-located workloads.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Attaches a telemetry sink to the shared machine: every counted
    /// memory event is also emitted as a timestamped trace record.
    /// Disabled by default (`NullSink`), in which case runs are
    /// bit-identical to untraced ones.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.memory.set_event_sink(sink);
    }

    /// Flushes the attached telemetry sink (for file-backed sinks).
    pub fn flush_trace(&mut self) {
        self.memory.flush_trace();
    }

    /// The machine state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Metrics of lane `i` (same order as construction).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lane_metrics(&self, i: usize) -> &RunMetrics {
        &self.lanes[i].metrics
    }

    /// Name of the workload in lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lane_name(&self, i: usize) -> &str {
        self.lanes[i].workload.name()
    }

    /// Global simulated time: the furthest-behind lane's clock (all lanes
    /// have fully executed up to this instant).
    pub fn now_ns(&self) -> u64 {
        self.lanes.iter().map(|l| l.clock_ns).min().unwrap_or(0)
    }

    /// Runs every lane for `duration_ns` of simulated time.
    pub fn run(&mut self, duration_ns: u64) {
        self.run_observed(duration_ns, &mut NullObserver);
    }

    /// Runs every lane for `duration_ns`, reporting accesses to `obs`.
    pub fn run_observed(&mut self, duration_ns: u64, obs: &mut dyn AccessObserver) {
        let end: Vec<u64> = self
            .lanes
            .iter()
            .map(|l| l.clock_ns + duration_ns)
            .collect();
        // Progress the lane that is furthest behind (deterministic, fair
        // interleave); stop when every lane reached its end.
        while let Some(i) = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(i, l)| l.clock_ns < end[*i])
            .min_by_key(|(i, l)| (l.clock_ns, *i))
            .map(|(i, _)| i)
        {
            let now = self.lanes[i].clock_ns;
            self.memory.set_trace_now(now);
            let op = self.lanes[i].workload.next_op(now, &mut self.rng);
            let mut mem_ns = 0u64;
            for event in &op.events {
                match *event {
                    WorkloadEvent::Access(access) => {
                        let (cost, is_local, latency, node) = {
                            let cost = execute_access_shared(
                                &mut self.memory,
                                &mut *self.policy,
                                &self.latency,
                                now,
                                &access,
                                &mut self.rng,
                            );
                            let pfn = self
                                .memory
                                .space(access.pid)
                                .translate(access.vpn)
                                .and_then(|l| l.pfn())
                                .expect("access leaves the page resident");
                            let node = self.memory.frames().frame(pfn).node();
                            (
                                cost,
                                !self.memory.node(node).is_cpu_less(),
                                self.memory.node(node).latency_ns(),
                                node,
                            )
                        };
                        mem_ns += cost;
                        self.lanes[i].metrics.note_access(
                            is_local,
                            access.page_type.is_anon(),
                            latency,
                        );
                        obs.on_access(now, &access, node);
                    }
                    WorkloadEvent::Free { pid, vpn } => {
                        self.memory.release(pid, vpn);
                    }
                }
            }
            let op_ns = (op.cpu_ns + mem_ns).max(1);
            self.lanes[i].clock_ns += op_ns;
            self.lanes[i].metrics.note_op(op_ns, mem_ns);
            // Daemons and sampling follow the global (min) clock.
            let global = self.now_ns();
            self.memory.set_trace_now(global);
            let fires = self.daemon_timer.fire(global).min(4);
            for _ in 0..fires {
                let mut ctx = PolicyCtx {
                    memory: &mut self.memory,
                    latency: &self.latency,
                    now_ns: global,
                    rng: &mut self.rng,
                };
                self.policy.tick(&mut ctx);
            }
            if self.sample_timer.fire(global) > 0 {
                for lane in &mut self.lanes {
                    lane.metrics.sample(global, &self.memory);
                }
            }
        }
    }
}

/// The shared access path (fault, hint fault, touch, charge); mirrors
/// `System::execute_access` for a machine with several processes.
fn execute_access_shared(
    memory: &mut Memory,
    policy: &mut dyn PlacementPolicy,
    latency: &LatencyModel,
    now: u64,
    access: &tiered_sim::Access,
    rng: &mut SimRng,
) -> u64 {
    let mut cost = 0u64;
    let mut pfn = match memory.space(access.pid).translate(access.vpn) {
        Some(PageLocation::Mapped(pfn)) => pfn,
        _ => {
            let mut ctx = PolicyCtx {
                memory,
                latency,
                now_ns: now,
                rng,
            };
            let out = policy.handle_fault(&mut ctx, access.pid, access.vpn, access.page_type);
            cost += out.cost_ns;
            out.pfn
        }
    };
    if memory
        .frames()
        .frame(pfn)
        .flags()
        .contains(PageFlags::HINTED)
    {
        memory
            .frames_mut()
            .frame_mut(pfn)
            .flags_mut()
            .remove(PageFlags::HINTED);
        let hint_node = memory.frames().frame(pfn).node();
        memory.record(TraceEvent::HintFault {
            page: PageKey::new(access.pid, access.vpn),
            node: hint_node,
        });
        cost += latency.hint_fault_ns;
        let mut ctx = PolicyCtx {
            memory,
            latency,
            now_ns: now,
            rng,
        };
        cost += policy.on_hint_fault(&mut ctx, pfn);
        pfn = match memory.space(access.pid).translate(access.vpn) {
            Some(PageLocation::Mapped(p)) => p,
            other => panic!("page vanished during hint fault: {other:?}"),
        };
    }
    {
        let frame = memory.frames_mut().frame_mut(pfn);
        frame.flags_mut().insert(PageFlags::REFERENCED);
        if access.kind == tiered_sim::AccessKind::Store {
            frame.flags_mut().insert(PageFlags::DIRTY);
        }
        frame.touch_hotness();
        frame.set_last_access_ns(now);
    }
    let node = memory.frames().frame(pfn).node();
    cost + memory.node(node).latency_ns() * latency.access_bundle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use crate::policy::{LinuxDefault, Tpp};
    use tiered_sim::SEC;

    fn colocated(policy: Box<dyn PlacementPolicy>) -> MultiSystem {
        let a = tiered_workloads::cache1(1_500).build();
        let b = tiered_workloads::data_warehouse(1_500).build();
        let ws = 1_500 * 2 + 1_500; // regions + churn headroom
        MultiSystem::new(
            configs::two_to_one(ws),
            policy,
            vec![Box::new(a), Box::new(b)],
            3,
        )
        .unwrap()
    }

    #[test]
    fn lanes_progress_together() {
        let mut s = colocated(Box::new(LinuxDefault::new()));
        s.run(3 * SEC);
        assert!(s.now_ns() >= 3 * SEC);
        for i in 0..s.lane_count() {
            assert!(
                s.lane_metrics(i).ops_completed > 100,
                "lane {i} ({}) starved",
                s.lane_name(i)
            );
        }
        s.memory().validate();
    }

    #[test]
    fn shared_machine_keeps_per_process_isolation() {
        let mut s = colocated(Box::new(Tpp::new()));
        s.run(2 * SEC);
        // Both processes have pages resident and no cross-owner mappings
        // (validate checks the rmap bijection).
        let m = s.memory();
        for pid in m.pids() {
            assert!(m.space(pid).resident_pages() > 0, "{pid} has no memory");
        }
        m.validate();
    }

    #[test]
    fn deterministic_interleave() {
        let run = || {
            let mut s = colocated(Box::new(Tpp::new()));
            s.run(SEC);
            (
                s.lane_metrics(0).ops_completed,
                s.lane_metrics(1).ops_completed,
                s.memory().vmstat().to_string(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_lane_list_rejected() {
        let _ = MultiSystem::new(
            configs::all_local(1_000),
            Box::new(LinuxDefault::new()),
            vec![],
            1,
        );
    }
}
