//! # tpp
//!
//! A full reimplementation-in-simulation of **TPP: Transparent Page
//! Placement for CXL-Enabled Tiered Memory** (ASPLOS 2023): the TPP
//! policy itself, the three comparison policies the paper evaluates
//! against (default Linux, NUMA balancing, AutoTiering), the system
//! runner that drives calibrated synthetic workloads over simulated
//! tiered-memory machines, and the experiment harness behind every
//! figure and table in the paper's evaluation.
//!
//! ## Layers
//!
//! * [`policy`] — placement policies over the [`tiered_mem`] substrate.
//! * [`System`] — one machine + one policy + one workload, run under a
//!   deterministic nanosecond clock.
//! * [`configs`] — the paper's machine setups (all-local, 2:1, 1:4).
//! * [`experiment`] — (workload × machine × policy) cells reduced to the
//!   figures' quantities.
//!
//! ## Quick start
//!
//! ```
//! use tiered_sim::SEC;
//! use tpp::{configs, experiment::{run_cell, PolicyChoice}};
//!
//! let profile = tiered_workloads::cache1(4_000);
//! let machine = configs::two_to_one(4_000);
//! let result = run_cell(&profile, machine, &PolicyChoice::Tpp, 2 * SEC, 42)?;
//! assert!(result.throughput > 0.0);
//! # Ok::<(), tpp::policy::UnsupportedConfig>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod configs;
pub mod experiment;
pub mod metrics;
mod multi;
pub mod policy;
mod system;

pub use metrics::RunMetrics;
pub use multi::MultiSystem;
pub use system::System;
