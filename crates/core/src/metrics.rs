//! Run metrics: the measurements behind every evaluation figure —
//! throughput, per-node traffic split, residency by page type, and
//! promotion/demotion rates derived from vmstat deltas — plus the
//! trace-derived diagnostics (§5.5 ping-pong report, per-policy decision
//! summaries) and machine-readable CSV/JSON exports.

use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::path::Path;

use tiered_mem::telemetry::TraceRecord;
use tiered_mem::{Memory, NodeId, PageKey, TraceEvent, VmEvent, VmStat};
use tiered_sim::{fraction, rate_per_sec, LogHistogram, TimeSeries, SEC};

/// Everything measured during a [`crate::System`] run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Application operations completed.
    pub ops_completed: u64,
    /// Total wall time of completed ops (CPU + memory stalls), ns.
    pub total_op_ns: u64,
    /// Total memory-stall time, ns.
    pub total_mem_ns: u64,
    /// Total page accesses.
    pub accesses: u64,
    /// Accesses served by CPU-attached nodes.
    pub local_accesses: u64,
    /// Accesses served by CXL nodes.
    pub cxl_accesses: u64,
    /// Anon accesses served locally / in total.
    pub anon_local_accesses: u64,
    /// Total anon accesses.
    pub anon_accesses: u64,
    /// Sum of access latencies, ns (for average access latency).
    pub access_latency_ns: u64,

    /// Throughput per sample window (ops/s).
    pub throughput: TimeSeries,
    /// Fraction of accesses served locally per window.
    pub local_traffic: TimeSeries,
    /// Promotion rate per window (pages/s).
    pub promotion_rate: TimeSeries,
    /// Demotion rate per window (pages/s).
    pub demotion_rate: TimeSeries,
    /// Local allocation rate per window (pages/s).
    pub alloc_local_rate: TimeSeries,
    /// Reclaim (steal) rate per window (pages/s).
    pub reclaim_rate: TimeSeries,
    /// Swap-out rate per window (pages/s).
    pub swap_out_rate: TimeSeries,
    /// Anon pages resident on the first local node per window.
    pub local_anon_pages: TimeSeries,
    /// File pages resident on the first local node per window.
    pub local_file_pages: TimeSeries,
    /// Free pages on the first local node per window.
    pub local_free_pages: TimeSeries,
    /// Anon pages resident per node per window, indexed by `NodeId`.
    pub node_anon_pages: Vec<TimeSeries>,
    /// File pages resident per node per window, indexed by `NodeId`.
    pub node_file_pages: Vec<TimeSeries>,
    /// Free pages per node per window, indexed by `NodeId`.
    pub node_free_pages: Vec<TimeSeries>,
    /// Distribution of op wall times (CPU + memory stalls), for tail
    /// latency (p99) reporting.
    pub op_latency: LogHistogram,

    last_vmstat: VmStat,
    last_sample_ns: u64,
    window_ops: u64,
    window_accesses: u64,
    window_local: u64,
}

impl RunMetrics {
    /// Creates a zeroed metrics recorder.
    pub fn new() -> RunMetrics {
        RunMetrics {
            ops_completed: 0,
            total_op_ns: 0,
            total_mem_ns: 0,
            accesses: 0,
            local_accesses: 0,
            cxl_accesses: 0,
            anon_local_accesses: 0,
            anon_accesses: 0,
            access_latency_ns: 0,
            throughput: TimeSeries::new("throughput_ops_s"),
            local_traffic: TimeSeries::new("local_traffic_frac"),
            promotion_rate: TimeSeries::new("promotion_pages_s"),
            demotion_rate: TimeSeries::new("demotion_pages_s"),
            alloc_local_rate: TimeSeries::new("alloc_local_pages_s"),
            reclaim_rate: TimeSeries::new("reclaim_pages_s"),
            swap_out_rate: TimeSeries::new("swap_out_pages_s"),
            local_anon_pages: TimeSeries::new("local_anon_pages"),
            local_file_pages: TimeSeries::new("local_file_pages"),
            local_free_pages: TimeSeries::new("local_free_pages"),
            node_anon_pages: Vec::new(),
            node_file_pages: Vec::new(),
            node_free_pages: Vec::new(),
            op_latency: LogHistogram::new(),
            last_vmstat: VmStat::new(),
            last_sample_ns: 0,
            window_ops: 0,
            window_accesses: 0,
            window_local: 0,
        }
    }

    /// Records one completed op.
    pub fn note_op(&mut self, op_ns: u64, mem_ns: u64) {
        self.ops_completed += 1;
        self.window_ops += 1;
        self.total_op_ns += op_ns;
        self.total_mem_ns += mem_ns;
        self.op_latency.record(op_ns);
    }

    /// Records one access served by `node`.
    pub fn note_access(&mut self, is_local: bool, is_anon: bool, latency_ns: u64) {
        self.accesses += 1;
        self.window_accesses += 1;
        self.access_latency_ns += latency_ns;
        if is_local {
            self.local_accesses += 1;
            self.window_local += 1;
        } else {
            self.cxl_accesses += 1;
        }
        if is_anon {
            self.anon_accesses += 1;
            if is_local {
                self.anon_local_accesses += 1;
            }
        }
    }

    /// Takes a sample at `now_ns`: window rates plus memory-state gauges.
    pub fn sample(&mut self, now_ns: u64, memory: &Memory) {
        let interval = now_ns.saturating_sub(self.last_sample_ns).max(1);
        let vm = memory.vmstat().clone();
        let d = vm.delta_since(&self.last_vmstat);
        self.throughput
            .record(now_ns, rate_per_sec(self.window_ops, interval));
        self.local_traffic
            .record(now_ns, fraction(self.window_local, self.window_accesses));
        self.promotion_rate
            .record(now_ns, rate_per_sec(d.promoted_total(), interval));
        self.demotion_rate
            .record(now_ns, rate_per_sec(d.demoted_total(), interval));
        self.alloc_local_rate
            .record(now_ns, rate_per_sec(d.get(VmEvent::PgAllocLocal), interval));
        self.reclaim_rate
            .record(now_ns, rate_per_sec(d.get(VmEvent::PgSteal), interval));
        self.swap_out_rate
            .record(now_ns, rate_per_sec(d.get(VmEvent::PswpOut), interval));
        let local = memory
            .local_nodes()
            .first()
            .copied()
            .unwrap_or(NodeId::LOCAL);
        let (anon, file) = memory.node_usage(local);
        self.local_anon_pages.record(now_ns, anon as f64);
        self.local_file_pages.record(now_ns, file as f64);
        self.local_free_pages
            .record(now_ns, memory.free_pages(local) as f64);
        for i in self.node_anon_pages.len()..memory.node_count() {
            self.node_anon_pages
                .push(TimeSeries::new(format!("node{i}_anon_pages")));
            self.node_file_pages
                .push(TimeSeries::new(format!("node{i}_file_pages")));
            self.node_free_pages
                .push(TimeSeries::new(format!("node{i}_free_pages")));
        }
        for i in 0..memory.node_count() {
            let node = NodeId(i as u8);
            let (anon, file) = memory.node_usage(node);
            self.node_anon_pages[i].record(now_ns, anon as f64);
            self.node_file_pages[i].record(now_ns, file as f64);
            self.node_free_pages[i].record(now_ns, memory.free_pages(node) as f64);
        }
        self.last_vmstat = vm;
        self.last_sample_ns = now_ns;
        self.window_ops = 0;
        self.window_accesses = 0;
        self.window_local = 0;
    }

    /// Fraction of all accesses served locally over the whole run.
    pub fn local_traffic_fraction(&self) -> f64 {
        fraction(self.local_accesses, self.accesses)
    }

    /// Fraction of anon accesses served locally over the whole run.
    pub fn anon_local_fraction(&self) -> f64 {
        fraction(self.anon_local_accesses, self.anon_accesses)
    }

    /// Mean access latency over the whole run, ns.
    pub fn avg_access_latency_ns(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.access_latency_ns as f64 / self.accesses as f64
        }
    }

    /// Mean throughput (ops/s) between `start_ns` and `end_ns` — used to
    /// measure the steady-state window, excluding warm-up.
    pub fn steady_throughput(&self, start_ns: u64, end_ns: u64) -> f64 {
        self.throughput
            .mean_between(start_ns, end_ns)
            .unwrap_or(0.0)
    }

    /// Mean local-traffic fraction between `start_ns` and `end_ns`.
    pub fn steady_local_traffic(&self, start_ns: u64, end_ns: u64) -> f64 {
        self.local_traffic
            .mean_between(start_ns, end_ns)
            .unwrap_or(0.0)
    }

    /// Approximate p99 op latency in nanoseconds.
    pub fn p99_op_latency_ns(&self) -> u64 {
        self.op_latency.percentile(0.99)
    }

    /// Convenience: sample window aligned to seconds.
    pub fn sample_period_ns() -> u64 {
        SEC
    }

    /// Every recorded time series, fixed ones first, then the per-node
    /// gauges in `NodeId` order.
    pub fn series(&self) -> Vec<&TimeSeries> {
        let mut out: Vec<&TimeSeries> = vec![
            &self.throughput,
            &self.local_traffic,
            &self.promotion_rate,
            &self.demotion_rate,
            &self.alloc_local_rate,
            &self.reclaim_rate,
            &self.swap_out_rate,
            &self.local_anon_pages,
            &self.local_file_pages,
            &self.local_free_pages,
        ];
        for i in 0..self.node_anon_pages.len() {
            out.push(&self.node_anon_pages[i]);
            out.push(&self.node_file_pages[i]);
            out.push(&self.node_free_pages[i]);
        }
        out
    }

    /// All time series as one wide CSV (`time_s` column plus one column
    /// per series; cells are empty where a series has no point at that
    /// timestamp).
    pub fn series_csv(&self) -> String {
        timeseries_csv(&self.series())
    }

    /// Run-level scalars as one flat JSON object (hand-rolled: the build
    /// environment is registry-less, so no serde).
    pub fn summary_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"ops_completed\":{},\"accesses\":{},\"total_op_ns\":{},\"total_mem_ns\":{}",
            self.ops_completed, self.accesses, self.total_op_ns, self.total_mem_ns
        );
        let _ = write!(
            s,
            ",\"local_accesses\":{},\"cxl_accesses\":{},\"anon_accesses\":{},\"anon_local_accesses\":{}",
            self.local_accesses, self.cxl_accesses, self.anon_accesses, self.anon_local_accesses
        );
        let _ = write!(
            s,
            ",\"local_traffic_fraction\":{:.6},\"anon_local_fraction\":{:.6},\"avg_access_latency_ns\":{:.3}",
            self.local_traffic_fraction(),
            self.anon_local_fraction(),
            self.avg_access_latency_ns()
        );
        let _ = write!(s, ",\"p99_op_latency_ns\":{}", self.p99_op_latency_ns());
        s.push('}');
        s
    }

    /// Writes the machine-readable exports for one run into `dir`:
    /// `<label>_series.csv`, `<label>_summary.json` and
    /// `<label>_op_latency.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, writes).
    pub fn write_exports(&self, dir: &Path, label: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{label}_series.csv")), self.series_csv())?;
        let mut summary = self.summary_json();
        summary.push('\n');
        std::fs::write(dir.join(format!("{label}_summary.json")), summary)?;
        let mut hist = histogram_json(&self.op_latency);
        hist.push('\n');
        std::fs::write(dir.join(format!("{label}_op_latency.json")), hist)?;
        Ok(())
    }
}

impl Default for RunMetrics {
    fn default() -> RunMetrics {
        RunMetrics::new()
    }
}

/// Renders several time series as one wide CSV, merged on timestamp.
///
/// The first column is `time_s` (seconds of simulated time); every series
/// contributes one column, with empty cells where it has no point.
pub fn timeseries_csv(series: &[&TimeSeries]) -> String {
    let mut times: Vec<u64> = Vec::new();
    for s in series {
        for &(t, _) in s.points() {
            times.push(t);
        }
    }
    times.sort_unstable();
    times.dedup();
    let mut out = String::from("time_s");
    for s in series {
        out.push(',');
        out.push_str(s.name());
    }
    out.push('\n');
    for t in times {
        let _ = write!(out, "{:.3}", t as f64 / SEC as f64);
        for s in series {
            out.push(',');
            if let Some(&(_, v)) = s.points().iter().find(|&&(st, _)| st == t) {
                let _ = write!(out, "{v:.6}");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a [`LogHistogram`] as a flat JSON object of count, mean, max
/// and the standard percentiles.
pub fn histogram_json(h: &LogHistogram) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"count\":{},\"mean\":{:.3},\"max\":{}",
        h.count(),
        h.mean(),
        h.max()
    );
    for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
        let _ = write!(s, ",\"{label}\":{}", h.percentile(q));
    }
    s.push('}');
    s
}

/// Renders a full vmstat as one flat CSV (counter name, value) — the
/// machine-readable twin of `VmStat`'s `Display` table.
pub fn vmstat_csv(vm: &VmStat) -> String {
    let mut out = String::from("counter,value\n");
    for (event, value) in vm.iter() {
        let _ = writeln!(out, "{},{}", event.name(), value);
    }
    out
}

/// The §5.5 ping-pong diagnosis, derived from a trace rather than from
/// counters alone: which promotion traffic is churn (pages promoted that
/// had already been demoted once) and how many pages round-trip.
#[derive(Clone, Debug, Default)]
pub struct PingPongReport {
    /// Promotion successes in the trace.
    pub promotions: u64,
    /// Demotions in the trace.
    pub demotions: u64,
    /// Promotion candidates observed (active CXL pages hint-faulted).
    pub promote_candidates: u64,
    /// Candidates that had previously been demoted — the paper's
    /// `pgpromote_candidate_demoted` counter, here with page identity.
    pub candidates_recently_demoted: u64,
    /// Distinct pages that completed at least one demote→promote cycle.
    pub ping_pong_pages: usize,
    /// Total demote→promote round trips.
    pub round_trips: u64,
}

impl PingPongReport {
    /// Fraction of promotion candidates that were previously demoted.
    pub fn candidate_demoted_fraction(&self) -> f64 {
        fraction(self.candidates_recently_demoted, self.promote_candidates)
    }

    /// The §5.5 diagnosis: a meaningful share of promotion traffic is
    /// pages the demotion daemon just pushed out.
    pub fn is_thrashing(&self) -> bool {
        self.round_trips > 0 && self.candidate_demoted_fraction() > 0.05
    }

    /// Flat JSON rendering for run exports.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"promotions\":{},\"demotions\":{},\"promote_candidates\":{},\"candidates_recently_demoted\":{},\"ping_pong_pages\":{},\"round_trips\":{},\"candidate_demoted_fraction\":{:.6},\"thrashing\":{}",
            self.promotions,
            self.demotions,
            self.promote_candidates,
            self.candidates_recently_demoted,
            self.ping_pong_pages,
            self.round_trips,
            self.candidate_demoted_fraction(),
            self.is_thrashing()
        );
        s.push('}');
        s
    }
}

/// Builds the ping-pong report from a run's trace records.
pub fn ping_pong_report(records: &[TraceRecord]) -> PingPongReport {
    let mut report = PingPongReport::default();
    let mut demoted: HashSet<PageKey> = HashSet::new();
    let mut ping_pong: HashSet<PageKey> = HashSet::new();
    for r in records {
        match r.event {
            TraceEvent::Demote { page, .. } => {
                report.demotions += 1;
                demoted.insert(page);
            }
            TraceEvent::PromoteCandidate {
                demoted: was_demoted,
                ..
            } => {
                report.promote_candidates += 1;
                if was_demoted {
                    report.candidates_recently_demoted += 1;
                }
            }
            TraceEvent::PromoteSuccess { page, .. } => {
                report.promotions += 1;
                if demoted.remove(&page) {
                    report.round_trips += 1;
                    ping_pong.insert(page);
                }
            }
            _ => {}
        }
    }
    report.ping_pong_pages = ping_pong.len();
    report
}

/// Decision-reason tallies for one policy, aggregated from the trace's
/// `decision` events.
#[derive(Clone, Debug)]
pub struct PolicyDecisionSummary {
    /// The policy that emitted the decisions.
    pub policy: String,
    /// Reason string → number of occurrences.
    pub reasons: BTreeMap<String, u64>,
}

impl PolicyDecisionSummary {
    /// Total decisions across all reasons.
    pub fn total(&self) -> u64 {
        self.reasons.values().sum()
    }
}

/// Aggregates every `decision` event in a trace per policy, in policy
/// name order.
pub fn decision_summary(records: &[TraceRecord]) -> Vec<PolicyDecisionSummary> {
    let mut by_policy: BTreeMap<&str, BTreeMap<String, u64>> = BTreeMap::new();
    for r in records {
        if let TraceEvent::Decision { policy, reason, .. } = r.event {
            *by_policy
                .entry(policy)
                .or_default()
                .entry(reason.to_string())
                .or_insert(0) += 1;
        }
    }
    by_policy
        .into_iter()
        .map(|(policy, reasons)| PolicyDecisionSummary {
            policy: policy.to_string(),
            reasons,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{NodeKind, PageType, Pid, Vpn};

    #[test]
    fn access_accounting() {
        let mut m = RunMetrics::new();
        m.note_access(true, true, 100);
        m.note_access(false, true, 185);
        m.note_access(true, false, 100);
        assert_eq!(m.accesses, 3);
        m.note_op(1_000, 100);
        m.note_op(100_000, 90_000);
        assert!(m.p99_op_latency_ns() >= 100_000);
        assert!((m.local_traffic_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.anon_local_fraction(), 0.5);
        assert!((m.avg_access_latency_ns() - 128.33).abs() < 0.01);
    }

    #[test]
    fn sampling_computes_window_rates() {
        let mut metrics = RunMetrics::new();
        let mut mem = Memory::builder().node(NodeKind::LocalDram, 32).build();
        mem.create_process(Pid(1));
        metrics.sample(0, &mem);
        for _ in 0..10 {
            metrics.note_op(1000, 100);
        }
        mem.alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        metrics.sample(SEC, &mem);
        // 10 ops in 1 s window.
        assert_eq!(*metrics.throughput.values().last().unwrap(), 10.0);
        assert_eq!(*metrics.alloc_local_rate.values().last().unwrap(), 1.0);
        assert_eq!(*metrics.local_anon_pages.values().last().unwrap(), 1.0);
        // Window counters reset.
        metrics.sample(2 * SEC, &mem);
        assert_eq!(*metrics.throughput.values().last().unwrap(), 0.0);
    }

    #[test]
    fn per_node_gauges_track_every_node() {
        let mut metrics = RunMetrics::new();
        let mut mem = Memory::builder()
            .node(NodeKind::LocalDram, 32)
            .node(NodeKind::Cxl, 64)
            .build();
        mem.create_process(Pid(1));
        mem.alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon)
            .unwrap();
        metrics.sample(SEC, &mem);
        assert_eq!(metrics.node_anon_pages.len(), 2);
        assert_eq!(*metrics.node_anon_pages[1].values().last().unwrap(), 1.0);
        assert_eq!(*metrics.node_anon_pages[0].values().last().unwrap(), 0.0);
        assert_eq!(*metrics.node_free_pages[0].values().last().unwrap(), 32.0);
        assert_eq!(*metrics.node_free_pages[1].values().last().unwrap(), 63.0);
        // Legacy first-local-node series still tracks node 0.
        assert_eq!(*metrics.local_free_pages.values().last().unwrap(), 32.0);
    }

    #[test]
    fn series_csv_is_wide_and_merged() {
        let mut metrics = RunMetrics::new();
        let mem = Memory::builder().node(NodeKind::LocalDram, 32).build();
        metrics.note_op(1000, 100);
        metrics.sample(SEC, &mem);
        let csv = metrics.series_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_s,throughput_ops_s,"));
        assert!(header.contains("node0_free_pages"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("1.000,"), "row: {row}");
        assert_eq!(row.split(',').count(), header.split(',').count());
    }

    #[test]
    fn summary_and_histogram_json_are_flat_objects() {
        let mut metrics = RunMetrics::new();
        metrics.note_access(true, true, 100);
        metrics.note_op(1_000, 100);
        let json = metrics.summary_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ops_completed\":1"));
        let hist = histogram_json(&metrics.op_latency);
        assert!(hist.contains("\"count\":1"));
        assert!(hist.contains("\"p99\":"));
    }

    #[test]
    fn ping_pong_report_finds_round_trips() {
        use tiered_mem::PageType;
        let page = PageKey::new(Pid(1), Vpn(7));
        let other = PageKey::new(Pid(1), Vpn(8));
        let ev = |event| TraceRecord { ts_ns: 0, event };
        let records = vec![
            ev(TraceEvent::Demote {
                page,
                from: NodeId(0),
                to: NodeId(1),
                page_type: PageType::Anon,
            }),
            ev(TraceEvent::PromoteCandidate {
                page,
                demoted: true,
            }),
            ev(TraceEvent::PromoteSuccess {
                page,
                from: NodeId(1),
                to: NodeId(0),
                page_type: PageType::Anon,
            }),
            ev(TraceEvent::PromoteCandidate {
                page: other,
                demoted: false,
            }),
            ev(TraceEvent::PromoteSuccess {
                page: other,
                from: NodeId(1),
                to: NodeId(0),
                page_type: PageType::Anon,
            }),
        ];
        let report = ping_pong_report(&records);
        assert_eq!(report.demotions, 1);
        assert_eq!(report.promotions, 2);
        assert_eq!(report.promote_candidates, 2);
        assert_eq!(report.candidates_recently_demoted, 1);
        assert_eq!(report.round_trips, 1);
        assert_eq!(report.ping_pong_pages, 1);
        assert!(report.is_thrashing());
        assert!(report.to_json().contains("\"round_trips\":1"));
    }

    #[test]
    fn decision_summary_groups_by_policy_and_reason() {
        let ev = |policy, reason| TraceRecord {
            ts_ns: 0,
            event: TraceEvent::Decision {
                policy,
                reason,
                page: None,
            },
        };
        let records = vec![
            ev("tpp", "a"),
            ev("tpp", "a"),
            ev("tpp", "b"),
            ev("linux", "c"),
        ];
        let summary = decision_summary(&records);
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].policy, "linux");
        assert_eq!(summary[1].policy, "tpp");
        assert_eq!(summary[1].reasons["a"], 2);
        assert_eq!(summary[1].total(), 3);
    }

    #[test]
    fn vmstat_csv_lists_every_counter() {
        let mut vm = VmStat::new();
        vm.count(VmEvent::PgFault);
        let csv = vmstat_csv(&vm);
        assert!(csv.starts_with("counter,value\n"));
        assert!(csv.contains("pgfault,1\n"));
        assert_eq!(csv.lines().count(), 1 + VmEvent::ALL.len());
    }

    #[test]
    fn steady_window_means() {
        let mut metrics = RunMetrics::new();
        let mem = Memory::builder().node(NodeKind::LocalDram, 32).build();
        for i in 1..=4u64 {
            for _ in 0..(i * 10) {
                metrics.note_op(100, 10);
            }
            metrics.sample(i * SEC, &mem);
        }
        // Windows hold 10, 20, 30, 40 ops/s; steady over the last two.
        assert_eq!(metrics.steady_throughput(2 * SEC + 1, 5 * SEC), 35.0);
    }
}
