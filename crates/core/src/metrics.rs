//! Run metrics: the measurements behind every evaluation figure —
//! throughput, per-node traffic split, residency by page type, and
//! promotion/demotion rates derived from vmstat deltas.

use tiered_mem::{Memory, NodeId, VmEvent, VmStat};
use tiered_sim::{fraction, rate_per_sec, LogHistogram, TimeSeries, SEC};

/// Everything measured during a [`crate::System`] run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Application operations completed.
    pub ops_completed: u64,
    /// Total wall time of completed ops (CPU + memory stalls), ns.
    pub total_op_ns: u64,
    /// Total memory-stall time, ns.
    pub total_mem_ns: u64,
    /// Total page accesses.
    pub accesses: u64,
    /// Accesses served by CPU-attached nodes.
    pub local_accesses: u64,
    /// Accesses served by CXL nodes.
    pub cxl_accesses: u64,
    /// Anon accesses served locally / in total.
    pub anon_local_accesses: u64,
    /// Total anon accesses.
    pub anon_accesses: u64,
    /// Sum of access latencies, ns (for average access latency).
    pub access_latency_ns: u64,

    /// Throughput per sample window (ops/s).
    pub throughput: TimeSeries,
    /// Fraction of accesses served locally per window.
    pub local_traffic: TimeSeries,
    /// Promotion rate per window (pages/s).
    pub promotion_rate: TimeSeries,
    /// Demotion rate per window (pages/s).
    pub demotion_rate: TimeSeries,
    /// Local allocation rate per window (pages/s).
    pub alloc_local_rate: TimeSeries,
    /// Reclaim (steal) rate per window (pages/s).
    pub reclaim_rate: TimeSeries,
    /// Swap-out rate per window (pages/s).
    pub swap_out_rate: TimeSeries,
    /// Anon pages resident on the first local node per window.
    pub local_anon_pages: TimeSeries,
    /// File pages resident on the first local node per window.
    pub local_file_pages: TimeSeries,
    /// Free pages on the first local node per window.
    pub local_free_pages: TimeSeries,
    /// Distribution of op wall times (CPU + memory stalls), for tail
    /// latency (p99) reporting.
    pub op_latency: LogHistogram,

    last_vmstat: VmStat,
    last_sample_ns: u64,
    window_ops: u64,
    window_accesses: u64,
    window_local: u64,
}

impl RunMetrics {
    /// Creates a zeroed metrics recorder.
    pub fn new() -> RunMetrics {
        RunMetrics {
            ops_completed: 0,
            total_op_ns: 0,
            total_mem_ns: 0,
            accesses: 0,
            local_accesses: 0,
            cxl_accesses: 0,
            anon_local_accesses: 0,
            anon_accesses: 0,
            access_latency_ns: 0,
            throughput: TimeSeries::new("throughput_ops_s"),
            local_traffic: TimeSeries::new("local_traffic_frac"),
            promotion_rate: TimeSeries::new("promotion_pages_s"),
            demotion_rate: TimeSeries::new("demotion_pages_s"),
            alloc_local_rate: TimeSeries::new("alloc_local_pages_s"),
            reclaim_rate: TimeSeries::new("reclaim_pages_s"),
            swap_out_rate: TimeSeries::new("swap_out_pages_s"),
            local_anon_pages: TimeSeries::new("local_anon_pages"),
            local_file_pages: TimeSeries::new("local_file_pages"),
            local_free_pages: TimeSeries::new("local_free_pages"),
            op_latency: LogHistogram::new(),
            last_vmstat: VmStat::new(),
            last_sample_ns: 0,
            window_ops: 0,
            window_accesses: 0,
            window_local: 0,
        }
    }

    /// Records one completed op.
    pub fn note_op(&mut self, op_ns: u64, mem_ns: u64) {
        self.ops_completed += 1;
        self.window_ops += 1;
        self.total_op_ns += op_ns;
        self.total_mem_ns += mem_ns;
        self.op_latency.record(op_ns);
    }

    /// Records one access served by `node`.
    pub fn note_access(&mut self, is_local: bool, is_anon: bool, latency_ns: u64) {
        self.accesses += 1;
        self.window_accesses += 1;
        self.access_latency_ns += latency_ns;
        if is_local {
            self.local_accesses += 1;
            self.window_local += 1;
        } else {
            self.cxl_accesses += 1;
        }
        if is_anon {
            self.anon_accesses += 1;
            if is_local {
                self.anon_local_accesses += 1;
            }
        }
    }

    /// Takes a sample at `now_ns`: window rates plus memory-state gauges.
    pub fn sample(&mut self, now_ns: u64, memory: &Memory) {
        let interval = now_ns.saturating_sub(self.last_sample_ns).max(1);
        let vm = memory.vmstat().clone();
        let d = vm.delta_since(&self.last_vmstat);
        self.throughput
            .record(now_ns, rate_per_sec(self.window_ops, interval));
        self.local_traffic
            .record(now_ns, fraction(self.window_local, self.window_accesses));
        self.promotion_rate
            .record(now_ns, rate_per_sec(d.promoted_total(), interval));
        self.demotion_rate
            .record(now_ns, rate_per_sec(d.demoted_total(), interval));
        self.alloc_local_rate
            .record(now_ns, rate_per_sec(d.get(VmEvent::PgAllocLocal), interval));
        self.reclaim_rate
            .record(now_ns, rate_per_sec(d.get(VmEvent::PgSteal), interval));
        self.swap_out_rate
            .record(now_ns, rate_per_sec(d.get(VmEvent::PswpOut), interval));
        let local = memory
            .local_nodes()
            .first()
            .copied()
            .unwrap_or(NodeId::LOCAL);
        let (anon, file) = memory.node_usage(local);
        self.local_anon_pages.record(now_ns, anon as f64);
        self.local_file_pages.record(now_ns, file as f64);
        self.local_free_pages
            .record(now_ns, memory.free_pages(local) as f64);
        self.last_vmstat = vm;
        self.last_sample_ns = now_ns;
        self.window_ops = 0;
        self.window_accesses = 0;
        self.window_local = 0;
    }

    /// Fraction of all accesses served locally over the whole run.
    pub fn local_traffic_fraction(&self) -> f64 {
        fraction(self.local_accesses, self.accesses)
    }

    /// Fraction of anon accesses served locally over the whole run.
    pub fn anon_local_fraction(&self) -> f64 {
        fraction(self.anon_local_accesses, self.anon_accesses)
    }

    /// Mean access latency over the whole run, ns.
    pub fn avg_access_latency_ns(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.access_latency_ns as f64 / self.accesses as f64
        }
    }

    /// Mean throughput (ops/s) between `start_ns` and `end_ns` — used to
    /// measure the steady-state window, excluding warm-up.
    pub fn steady_throughput(&self, start_ns: u64, end_ns: u64) -> f64 {
        self.throughput.mean_between(start_ns, end_ns).unwrap_or(0.0)
    }

    /// Mean local-traffic fraction between `start_ns` and `end_ns`.
    pub fn steady_local_traffic(&self, start_ns: u64, end_ns: u64) -> f64 {
        self.local_traffic.mean_between(start_ns, end_ns).unwrap_or(0.0)
    }

    /// Approximate p99 op latency in nanoseconds.
    pub fn p99_op_latency_ns(&self) -> u64 {
        self.op_latency.percentile(0.99)
    }

    /// Convenience: sample window aligned to seconds.
    pub fn sample_period_ns() -> u64 {
        SEC
    }
}

impl Default for RunMetrics {
    fn default() -> RunMetrics {
        RunMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{NodeKind, PageType, Pid, Vpn};

    #[test]
    fn access_accounting() {
        let mut m = RunMetrics::new();
        m.note_access(true, true, 100);
        m.note_access(false, true, 185);
        m.note_access(true, false, 100);
        assert_eq!(m.accesses, 3);
        m.note_op(1_000, 100);
        m.note_op(100_000, 90_000);
        assert!(m.p99_op_latency_ns() >= 100_000);
        assert!((m.local_traffic_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.anon_local_fraction(), 0.5);
        assert!((m.avg_access_latency_ns() - 128.33).abs() < 0.01);
    }

    #[test]
    fn sampling_computes_window_rates() {
        let mut metrics = RunMetrics::new();
        let mut mem = Memory::builder().node(NodeKind::LocalDram, 32).build();
        mem.create_process(Pid(1));
        metrics.sample(0, &mem);
        for _ in 0..10 {
            metrics.note_op(1000, 100);
        }
        mem.alloc_and_map(NodeId(0), Pid(1), Vpn(0), PageType::Anon).unwrap();
        metrics.sample(SEC, &mem);
        // 10 ops in 1 s window.
        assert_eq!(*metrics.throughput.values().last().unwrap(), 10.0);
        assert_eq!(*metrics.alloc_local_rate.values().last().unwrap(), 1.0);
        assert_eq!(*metrics.local_anon_pages.values().last().unwrap(), 1.0);
        // Window counters reset.
        metrics.sample(2 * SEC, &mem);
        assert_eq!(*metrics.throughput.values().last().unwrap(), 0.0);
    }

    #[test]
    fn steady_window_means() {
        let mut metrics = RunMetrics::new();
        let mem = Memory::builder().node(NodeKind::LocalDram, 32).build();
        for i in 1..=4u64 {
            for _ in 0..(i * 10) {
                metrics.note_op(100, 10);
            }
            metrics.sample(i * SEC, &mem);
        }
        // Windows hold 10, 20, 30, 40 ops/s; steady over the last two.
        assert_eq!(metrics.steady_throughput(2 * SEC + 1, 5 * SEC), 35.0);
    }
}
