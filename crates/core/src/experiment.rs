//! The experiment harness: runs (workload × machine × policy) cells and
//! reduces them to the quantities the paper's figures report.
//!
//! Cells are described by [`CellSpec`] — a plain, thread-shareable
//! descriptor — so figure and sweep grids can be enumerated first and
//! executed by any driver (sequentially, or fanned out over a worker
//! pool). Each spec owns its workload profile, machine *factory*, policy
//! choice, duration and seed: running a spec touches no shared mutable
//! state, which is what makes parallel execution bit-identical to
//! sequential execution.

use tiered_mem::telemetry::EventSink;
use tiered_mem::{Memory, NodeId, VmEvent, VmStat};
use tiered_workloads::WorkloadProfile;

use crate::metrics::RunMetrics;
use crate::policy::{
    AutoTiering, InMemorySwap, LinuxDefault, NumaBalancing, PlacementPolicy, Tpp, TppConfig,
    UnsupportedConfig,
};
use crate::system::System;

/// A buildable policy selection (policies themselves are not `Clone`, so
/// sweeps carry this factory instead).
#[derive(Clone, Debug)]
pub enum PolicyChoice {
    /// Default Linux kernel behaviour.
    Linux,
    /// Default NUMA balancing.
    NumaBalancing,
    /// The AutoTiering baseline.
    AutoTiering,
    /// TPP with paper-default settings.
    Tpp,
    /// TPP with explicit knobs (ablations, page-type-aware allocation).
    TppCustom(TppConfig),
    /// zswap/zram-style in-memory swapping (extra baseline, paper §7).
    InMemorySwap,
}

impl PolicyChoice {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyChoice::Linux => Box::new(LinuxDefault::new()),
            PolicyChoice::NumaBalancing => Box::new(NumaBalancing::new()),
            PolicyChoice::AutoTiering => Box::new(AutoTiering::new()),
            PolicyChoice::Tpp => Box::new(Tpp::new()),
            PolicyChoice::TppCustom(cfg) => Box::new(Tpp::with_config(*cfg)),
            PolicyChoice::InMemorySwap => Box::new(InMemorySwap::new()),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyChoice::Linux => "linux",
            PolicyChoice::NumaBalancing => "numa_balancing",
            PolicyChoice::AutoTiering => "autotiering",
            PolicyChoice::Tpp => "tpp",
            PolicyChoice::TppCustom(_) => "tpp*",
            PolicyChoice::InMemorySwap => "inmem_swap",
        }
    }
}

/// A self-contained description of one experiment cell.
///
/// `Memory` holds a boxed event sink and is therefore not `Send`; the
/// spec carries a machine *factory* instead, and each worker thread
/// constructs the machine (and optional sink) locally. Everything else is
/// plain data, so a `CellSpec` is `Send + Sync` and a batch of specs can
/// be shared across a thread scope.
pub struct CellSpec {
    /// Workload to run.
    pub profile: WorkloadProfile,
    /// Policy selection.
    pub choice: PolicyChoice,
    /// Simulated run duration, ns.
    pub duration_ns: u64,
    /// RNG seed.
    pub seed: u64,
    machine: Box<dyn Fn() -> Memory + Send + Sync>,
    sink: Option<Box<dyn Fn() -> Box<dyn EventSink> + Send + Sync>>,
}

impl std::fmt::Debug for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpec")
            .field("profile", &self.profile.name)
            .field("choice", &self.choice)
            .field("duration_ns", &self.duration_ns)
            .field("seed", &self.seed)
            .field("sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl CellSpec {
    /// Describes a cell: `profile` on the machine built by `machine`
    /// under `choice` for `duration_ns` simulated time.
    pub fn new(
        profile: WorkloadProfile,
        machine: impl Fn() -> Memory + Send + Sync + 'static,
        choice: PolicyChoice,
        duration_ns: u64,
        seed: u64,
    ) -> CellSpec {
        CellSpec {
            profile,
            choice,
            duration_ns,
            seed,
            machine: Box::new(machine),
            sink: None,
        }
    }

    /// Attaches an event-sink factory; [`CellSpec::run`] installs a fresh
    /// sink from it before running and flushes it afterwards.
    #[must_use]
    pub fn with_sink(
        mut self,
        sink: impl Fn() -> Box<dyn EventSink> + Send + Sync + 'static,
    ) -> CellSpec {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Builds the ready-to-run system for this cell (no sink attached).
    ///
    /// # Errors
    ///
    /// [`UnsupportedConfig`] if the policy rejects the machine.
    pub fn build_system(&self) -> Result<System, UnsupportedConfig> {
        System::new(
            (self.machine)(),
            self.choice.build(),
            Box::new(self.profile.build()),
            self.seed,
        )
    }

    /// Runs the cell to completion and reduces it.
    ///
    /// # Errors
    ///
    /// [`UnsupportedConfig`] if the policy rejects the machine.
    pub fn run(&self) -> Result<ExperimentResult, UnsupportedConfig> {
        let mut system = self.build_system()?;
        if let Some(make_sink) = &self.sink {
            system.set_event_sink(make_sink());
        }
        system.run(self.duration_ns);
        system.flush_trace();
        Ok(reduce(
            system,
            self.choice.label(),
            &self.profile.name,
            self.duration_ns,
        ))
    }
}

/// The reduced outcome of one experiment cell.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Policy label.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Steady-state throughput, ops/s (second half of the run).
    pub throughput: f64,
    /// Steady-state fraction of accesses served locally.
    pub local_traffic: f64,
    /// Fraction of resident anon pages on the local node at run end.
    pub anon_resident_local: f64,
    /// Fraction of resident file pages on the local node at run end.
    pub file_resident_local: f64,
    /// Mean access latency over the run, ns.
    pub avg_latency_ns: f64,
    /// Final vmstat counters.
    pub vmstat: VmStat,
    /// Full time series for figure rendering.
    pub metrics: RunMetrics,
    /// Simulated run duration, ns.
    pub duration_ns: u64,
    /// Number of memory nodes in the machine.
    pub node_count: usize,
    /// Successful page migrations by direction, row-major
    /// `[from * node_count + to]` (the src→dst matrix telemetry keeps
    /// per machine).
    pub migration_matrix: Vec<u64>,
}

impl ExperimentResult {
    /// Throughput of this run relative to `baseline` (1.0 = equal).
    pub fn relative_throughput(&self, baseline: &ExperimentResult) -> f64 {
        if baseline.throughput == 0.0 {
            0.0
        } else {
            self.throughput / baseline.throughput
        }
    }

    /// Total pages demoted during the run.
    pub fn demoted(&self) -> u64 {
        self.vmstat.demoted_total()
    }

    /// Total pages promoted during the run.
    pub fn promoted(&self) -> u64 {
        self.vmstat.promoted_total()
    }

    /// Pages written to swap during the run.
    pub fn swap_outs(&self) -> u64 {
        self.vmstat.get(VmEvent::PswpOut)
    }

    /// Successful migrations from `from` to `to` during the run.
    pub fn migrations_between(&self, from: NodeId, to: NodeId) -> u64 {
        self.migration_matrix[from.index() * self.node_count + to.index()]
    }
}

/// Runs one cell: `profile` on `memory` under `choice` for `duration_ns`
/// simulated time. Steady-state quantities are measured over the second
/// half of the run.
///
/// # Errors
///
/// [`UnsupportedConfig`] if the policy rejects the machine.
pub fn run_cell(
    profile: &WorkloadProfile,
    memory: Memory,
    choice: &PolicyChoice,
    duration_ns: u64,
    seed: u64,
) -> Result<ExperimentResult, UnsupportedConfig> {
    let workload = profile.build();
    let mut system = System::new(memory, choice.build(), Box::new(workload), seed)?;
    system.run(duration_ns);
    Ok(reduce(system, choice.label(), &profile.name, duration_ns))
}

/// Reduces a finished system run to an [`ExperimentResult`].
pub fn reduce(system: System, policy: &str, workload: &str, duration_ns: u64) -> ExperimentResult {
    let half = duration_ns / 2;
    let metrics = system.metrics().clone();
    let memory = system.memory();
    let (mut anon_local, mut file_local) = (0u64, 0u64);
    let (mut anon_total, mut file_total) = (0u64, 0u64);
    for i in 0..memory.node_count() {
        let node = NodeId(i as u8);
        let (a, f) = memory.node_usage(node);
        anon_total += a;
        file_total += f;
        if !memory.node(node).is_cpu_less() {
            anon_local += a;
            file_local += f;
        }
    }
    ExperimentResult {
        policy: policy.to_string(),
        workload: workload.to_string(),
        throughput: metrics.steady_throughput(half, u64::MAX),
        local_traffic: metrics.steady_local_traffic(half, u64::MAX),
        anon_resident_local: tiered_sim::fraction(anon_local, anon_total),
        file_resident_local: tiered_sim::fraction(file_local, file_total),
        avg_latency_ns: metrics.avg_access_latency_ns(),
        vmstat: memory.vmstat().clone(),
        node_count: memory.node_count(),
        migration_matrix: memory.migration_matrix().to_vec(),
        metrics,
        duration_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use tiered_sim::SEC;

    #[test]
    fn cells_run_and_reduce() {
        let profile = tiered_workloads::uniform(2_000);
        let memory = configs::two_to_one(2_500);
        let r = run_cell(&profile, memory, &PolicyChoice::Tpp, 2 * SEC, 1).unwrap();
        assert_eq!(r.policy, "tpp");
        assert_eq!(r.workload, "uniform");
        assert!(r.throughput > 0.0);
        assert!((0.0..=1.0).contains(&r.local_traffic));
        assert!((0.0..=1.0).contains(&r.anon_resident_local));
        assert!(r.avg_latency_ns >= 100.0);
        // The src→dst migration matrix is carried over from the machine
        // and agrees with the scalar counter.
        assert_eq!(r.node_count, 2);
        assert_eq!(r.migration_matrix.len(), 4);
        assert_eq!(
            r.migration_matrix.iter().sum::<u64>(),
            r.vmstat.get(tiered_mem::VmEvent::PgMigrateSuccess)
        );
        assert_eq!(
            r.migrations_between(NodeId(0), NodeId(1)),
            r.migration_matrix[1]
        );
    }

    #[test]
    fn cell_spec_is_send_sync_and_matches_run_cell() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CellSpec>();

        let spec = CellSpec::new(
            tiered_workloads::uniform(2_000),
            || configs::two_to_one(2_500),
            PolicyChoice::Tpp,
            2 * SEC,
            1,
        );
        let via_spec = spec.run().unwrap();
        let direct = run_cell(
            &tiered_workloads::uniform(2_000),
            configs::two_to_one(2_500),
            &PolicyChoice::Tpp,
            2 * SEC,
            1,
        )
        .unwrap();
        assert_eq!(via_spec.throughput, direct.throughput);
        assert_eq!(via_spec.local_traffic, direct.local_traffic);
        assert_eq!(via_spec.vmstat, direct.vmstat);
    }

    #[test]
    fn autotiering_rejects_one_to_four() {
        let profile = tiered_workloads::uniform(2_000);
        let memory = configs::one_to_four(2_500);
        let err = run_cell(&profile, memory, &PolicyChoice::AutoTiering, SEC, 1).unwrap_err();
        assert_eq!(err.policy, "autotiering");
    }

    #[test]
    fn relative_throughput_math() {
        let profile = tiered_workloads::uniform(1_000);
        let memory = configs::all_local(1_000);
        let a = run_cell(&profile, memory.clone(), &PolicyChoice::Linux, SEC, 1).unwrap();
        let rel = a.relative_throughput(&a);
        assert!((rel - 1.0).abs() < 1e-12);
    }

    #[test]
    fn policy_choice_labels_and_builders_agree() {
        for choice in [
            PolicyChoice::Linux,
            PolicyChoice::NumaBalancing,
            PolicyChoice::AutoTiering,
            PolicyChoice::Tpp,
            PolicyChoice::InMemorySwap,
        ] {
            let built = choice.build();
            assert_eq!(built.name(), choice.label());
        }
    }
}
