//! Property-style tests at the policy level: no sequence of workload
//! traffic, daemon activity, and machine shapes may ever violate the
//! substrate invariants, OOM a sanely-sized machine, or break
//! determinism — under *any* policy.
//!
//! Randomised cases are driven by a seeded [`SimRng`] loop (the crates
//! registry is unreachable, so no proptest): every case is a pure
//! function of the loop index and fully reproducible.

use tiered_sim::{SimRng, Workload, SEC};
use tpp::configs;
use tpp::experiment::PolicyChoice;
use tpp::policy::TppConfig;
use tpp::System;

fn pick_policy(rng: &mut SimRng) -> PolicyChoice {
    match rng.range(0..5) {
        0 => PolicyChoice::Linux,
        1 => PolicyChoice::NumaBalancing,
        2 => PolicyChoice::Tpp,
        3 => PolicyChoice::InMemorySwap,
        _ => PolicyChoice::TppCustom(TppConfig {
            decouple: rng.chance(0.5),
            active_lru_filter: rng.chance(0.5),
            cache_to_cxl: rng.chance(0.5),
            ..TppConfig::default()
        }),
    }
}

fn build_workload(which: u8, ws: u64) -> Box<dyn Workload> {
    let profile = match which % 5 {
        0 => tiered_workloads::uniform(ws),
        1 => tiered_workloads::web(ws),
        2 => tiered_workloads::cache1(ws),
        3 => tiered_workloads::cache2(ws),
        _ => tiered_workloads::data_warehouse(ws),
    };
    Box::new(profile.build())
}

fn workload_ws(which: u8, ws: u64) -> u64 {
    match which % 5 {
        0 => tiered_workloads::uniform(ws).working_set_pages(),
        1 => tiered_workloads::web(ws).working_set_pages(),
        2 => tiered_workloads::cache1(ws).working_set_pages(),
        3 => tiered_workloads::cache2(ws).working_set_pages(),
        _ => tiered_workloads::data_warehouse(ws).working_set_pages(),
    }
}

/// Any (policy × workload × ratio × seed) cell runs to completion with
/// all memory invariants intact.
#[test]
fn any_cell_preserves_invariants() {
    let mut rng = SimRng::seed(0xA11C_E11);
    for case in 0..12u64 {
        let choice = pick_policy(&mut rng);
        let which = rng.range(0..5) as u8;
        let ratio_cxl = rng.range(1..5);
        let seed = rng.range(0..1000);
        let ws = 1_200;
        let total_ws = workload_ws(which, ws);
        let memory = configs::ratio(total_ws, 1, ratio_cxl);
        let system = System::new(memory, choice.build(), build_workload(which, ws), seed);
        let mut system = match system {
            Ok(s) => s,
            // AutoTiering-style rejections are legitimate outcomes.
            Err(_) => continue,
        };
        system.run(4 * SEC);
        system.memory().validate();
        assert!(
            system.metrics().ops_completed > 0,
            "case {case}: no ops completed"
        );
    }
}

/// Bit-level determinism holds for every policy and seed.
#[test]
fn any_cell_is_deterministic() {
    let mut rng = SimRng::seed(0xD37E_12);
    for case in 0..6u64 {
        let choice = pick_policy(&mut rng);
        let which = rng.range(0..5) as u8;
        let seed = rng.range(0..1000);
        let ws = 1_000;
        let total_ws = workload_ws(which, ws);
        let fingerprint = || {
            let memory = configs::two_to_one(total_ws);
            let mut system =
                System::new(memory, choice.build(), build_workload(which, ws), seed).unwrap();
            system.run(2 * SEC);
            (
                system.metrics().ops_completed,
                system.metrics().accesses,
                system.memory().vmstat().to_string(),
            )
        };
        assert_eq!(fingerprint(), fingerprint(), "case {case} diverged");
    }
}

/// The workload generators never emit accesses outside their declared
/// working set (VPN hygiene across all region/transient machinery).
#[test]
fn workloads_stay_inside_declared_footprint() {
    let mut meta = SimRng::seed(0xF007);
    for _case in 0..10u64 {
        let which = meta.range(0..5) as u8;
        let seed = meta.range(0..1000);
        let ws = 1_000;
        let mut workload = build_workload(which, ws);
        let declared = workload.working_set_pages();
        let mut rng = SimRng::seed(seed);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..3000u64 {
            let op = workload.next_op(i * 2_000_000, &mut rng);
            for e in &op.events {
                if let tiered_sim::WorkloadEvent::Access(a) = e {
                    distinct.insert(a.vpn);
                }
            }
        }
        assert!(
            (distinct.len() as u64) <= declared,
            "workload {which}: {} distinct pages exceed declared {declared}",
            distinct.len()
        );
    }
}
