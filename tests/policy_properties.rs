//! Property-based tests at the policy level: no sequence of workload
//! traffic, daemon activity, and machine shapes may ever violate the
//! substrate invariants, OOM a sanely-sized machine, or break
//! determinism — under *any* policy.

use proptest::prelude::*;

use tiered_sim::{SimRng, Workload, SEC};
use tpp::configs;
use tpp::experiment::PolicyChoice;
use tpp::policy::TppConfig;
use tpp::System;

fn policy_strategy() -> impl Strategy<Value = PolicyChoice> {
    prop_oneof![
        Just(PolicyChoice::Linux),
        Just(PolicyChoice::NumaBalancing),
        Just(PolicyChoice::Tpp),
        Just(PolicyChoice::InMemorySwap),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(d, f, c)| {
            PolicyChoice::TppCustom(TppConfig {
                decouple: d,
                active_lru_filter: f,
                cache_to_cxl: c,
                ..TppConfig::default()
            })
        }),
    ]
}

fn workload_strategy() -> impl Strategy<Value = u8> {
    0..5u8
}

fn build_workload(which: u8, ws: u64) -> Box<dyn Workload> {
    let profile = match which % 5 {
        0 => tiered_workloads::uniform(ws),
        1 => tiered_workloads::web(ws),
        2 => tiered_workloads::cache1(ws),
        3 => tiered_workloads::cache2(ws),
        _ => tiered_workloads::data_warehouse(ws),
    };
    Box::new(profile.build())
}

fn workload_ws(which: u8, ws: u64) -> u64 {
    match which % 5 {
        0 => tiered_workloads::uniform(ws).working_set_pages(),
        1 => tiered_workloads::web(ws).working_set_pages(),
        2 => tiered_workloads::cache1(ws).working_set_pages(),
        3 => tiered_workloads::cache2(ws).working_set_pages(),
        _ => tiered_workloads::data_warehouse(ws).working_set_pages(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (policy × workload × ratio × seed) cell runs to completion with
    /// all memory invariants intact.
    #[test]
    fn any_cell_preserves_invariants(
        choice in policy_strategy(),
        which in workload_strategy(),
        ratio_cxl in 1u64..5,
        seed in 0u64..1000,
    ) {
        let ws = 1_200;
        let total_ws = workload_ws(which, ws);
        let memory = configs::ratio(total_ws, 1, ratio_cxl);
        let system = System::new(memory, choice.build(), build_workload(which, ws), seed);
        let mut system = match system {
            Ok(s) => s,
            // AutoTiering-style rejections are legitimate outcomes.
            Err(_) => return Ok(()),
        };
        system.run(4 * SEC);
        system.memory().validate();
        prop_assert!(system.metrics().ops_completed > 0);
    }

    /// Bit-level determinism holds for every policy and seed.
    #[test]
    fn any_cell_is_deterministic(
        choice in policy_strategy(),
        which in workload_strategy(),
        seed in 0u64..1000,
    ) {
        let ws = 1_000;
        let total_ws = workload_ws(which, ws);
        let fingerprint = || {
            let memory = configs::two_to_one(total_ws);
            let mut system =
                System::new(memory, choice.build(), build_workload(which, ws), seed).unwrap();
            system.run(2 * SEC);
            (
                system.metrics().ops_completed,
                system.metrics().accesses,
                system.memory().vmstat().to_string(),
            )
        };
        prop_assert_eq!(fingerprint(), fingerprint());
    }

    /// The workload generators never emit accesses outside their declared
    /// working set (VPN hygiene across all region/transient machinery).
    #[test]
    fn workloads_stay_inside_declared_footprint(
        which in workload_strategy(),
        seed in 0u64..1000,
    ) {
        let ws = 1_000;
        let mut workload = build_workload(which, ws);
        let declared = workload.working_set_pages();
        let mut rng = SimRng::seed(seed);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..3000u64 {
            let op = workload.next_op(i * 2_000_000, &mut rng);
            for e in &op.events {
                if let tiered_sim::WorkloadEvent::Access(a) = e {
                    distinct.insert(a.vpn);
                }
            }
        }
        prop_assert!(
            (distinct.len() as u64) <= declared,
            "{} distinct pages exceed declared {declared}",
            distinct.len()
        );
    }
}
