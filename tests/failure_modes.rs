//! Failure-injection tests: swap exhaustion, migration-target exhaustion,
//! and simulated OOM semantics.

use tiered_mem::{Memory, NodeId, NodeKind, PageType, Pid, VmEvent, Vpn};
use tiered_sim::{LatencyModel, SimRng, SEC};
use tpp::experiment::PolicyChoice;
use tpp::policy::{PlacementPolicy, PolicyCtx, Tpp};
use tpp::{configs, System};

#[test]
fn file_heavy_workload_survives_without_swap() {
    // Clean file pages can always be dropped, so a page-cache-heavy
    // workload runs fine even with a zero-capacity swap device.
    let profile = tiered_workloads::cache1(2_000);
    let ws = profile.working_set_pages();
    let total = ws * 105 / 100;
    let mut builder = Memory::builder();
    builder
        .node(NodeKind::LocalDram, total / 3)
        .node(NodeKind::Cxl, total - total / 3)
        .swap_pages(0);
    let mut system = System::new(
        builder.build(),
        PolicyChoice::Tpp.build(),
        Box::new(profile.build()),
        5,
    )
    .unwrap();
    system.run(10 * SEC);
    assert!(system.metrics().ops_completed > 1_000);
    assert_eq!(system.memory().swap().used_slots(), 0);
    system.memory().validate();
}

#[test]
fn tpp_falls_back_to_legacy_reclaim_when_cxl_is_full() {
    // Demotion's migration target can fill up; TPP then falls back to the
    // default reclaim mechanism per page (paper §5.1) and counts it.
    let mut m = Memory::builder()
        .node(NodeKind::LocalDram, 512)
        .node(NodeKind::Cxl, 64)
        .swap_pages(4096)
        .build();
    m.create_process(tiered_mem::Pid(1));
    // Fill the CXL node completely.
    for i in 0..64u64 {
        m.alloc_and_map(
            tiered_mem::NodeId(1),
            tiered_mem::Pid(1),
            tiered_mem::Vpn(10_000 + i),
            tiered_mem::PageType::Anon,
        )
        .unwrap();
    }
    // Pressure the local node with cold tmpfs pages (past the demotion
    // trigger watermark).
    for i in 0..506u64 {
        m.alloc_and_map(
            tiered_mem::NodeId(0),
            tiered_mem::Pid(1),
            tiered_mem::Vpn(i),
            tiered_mem::PageType::Tmpfs,
        )
        .unwrap();
    }
    let lat = LatencyModel::datacenter();
    let mut rng = SimRng::seed(2);
    let mut policy = Tpp::new();
    for t in 0..10u64 {
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: t * 50_000_000,
            rng: &mut rng,
        };
        policy.tick(&mut ctx);
    }
    assert!(
        m.vmstat().get(VmEvent::PgDemoteFallback) > 0,
        "fallback path never fired"
    );
    assert!(m.swap().used_slots() > 0, "fallback should page out");
    m.validate();
}

#[test]
#[should_panic(expected = "simulated OOM")]
fn anon_workload_with_no_swap_and_no_room_oo_ms() {
    // An anon-only workload bigger than all memory with zero swap has
    // nowhere to go: the simulator reports OOM by panicking.
    let profile = tiered_workloads::uniform(4_000); // anon-only
    let mut builder = Memory::builder();
    builder
        .node(NodeKind::LocalDram, 1_000)
        .node(NodeKind::Cxl, 1_000)
        .swap_pages(0);
    let mut system = System::new(
        builder.build(),
        PolicyChoice::Linux.build(),
        Box::new(profile.build()),
        5,
    )
    .unwrap();
    system.run(30 * SEC);
}

#[test]
fn numa_balancing_survives_swap_exhaustion() {
    // With a tiny swap device, reclaim stalls but the system keeps
    // running by spilling to the CXL node.
    let profile = tiered_workloads::cache1(2_000);
    let ws = profile.working_set_pages();
    let total = ws * 110 / 100;
    let mut builder = Memory::builder();
    builder
        .node(NodeKind::LocalDram, total / 5)
        .node(NodeKind::Cxl, total - total / 5)
        .swap_pages(32);
    let mut system = System::new(
        builder.build(),
        PolicyChoice::NumaBalancing.build(),
        Box::new(profile.build()),
        5,
    )
    .unwrap();
    system.run(10 * SEC);
    assert!(system.metrics().ops_completed > 1_000);
    // The swap device saturated (or nearly).
    assert!(system.memory().swap().used_slots() <= 32);
    system.memory().validate();
}

#[test]
fn zero_capacity_cxl_nodes_are_tolerated_and_skipped() {
    // A zero-capacity node (hot-removed or not-yet-onlined expander)
    // builds fine; every allocation on it fails with NoMemory, so the
    // fallback chain flows past it instead of the machine being
    // unconstructible. (`configs` still floors capacities so presets
    // never produce one by accident.)
    let mut m = Memory::builder()
        .node(NodeKind::LocalDram, 16)
        .node(NodeKind::Cxl, 0)
        .build();
    m.create_process(Pid(1));
    assert!(matches!(
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(0), PageType::Anon),
        Err(tiered_mem::AllocError::NoMemory { .. })
    ));
    // More faults than local DRAM holds: the only fallback target is the
    // empty node, so the overflow must report OOM, not panic.
    let mut placed = 0;
    for i in 0..32u64 {
        let node = m.fallback_order(NodeId(0)).iter().copied().find_map(|n| {
            m.alloc_and_map(n, Pid(1), Vpn(i), PageType::Anon)
                .ok()
                .map(|_| n)
        });
        match node {
            Some(n) => {
                assert_eq!(n, NodeId(0), "allocations must skip the empty node");
                placed += 1;
            }
            None => break,
        }
    }
    assert_eq!(placed, 16);
    assert_eq!(m.frames().used_pages(NodeId(1)), 0);
    m.validate();
}

#[test]
fn oversubscribed_machine_with_swap_just_thrashes() {
    // Hot set larger than all memory, but swap exists: the system
    // survives by thrashing (and throughput shows it).
    let profile = tiered_workloads::uniform(6_000); // hot window ~3,000 pages
    let baseline = {
        let mut s = System::new(
            configs::all_local(6_000),
            PolicyChoice::Linux.build(),
            Box::new(profile.build()),
            5,
        )
        .unwrap();
        s.run(10 * SEC);
        s.metrics().steady_throughput(5 * SEC, u64::MAX)
    };
    let mut builder = Memory::builder();
    builder
        .node(NodeKind::LocalDram, 800)
        .node(NodeKind::Cxl, 800)
        .swap_pages(20_000);
    let mut system = System::new(
        builder.build(),
        PolicyChoice::Linux.build(),
        Box::new(profile.build()),
        5,
    )
    .unwrap();
    system.run(10 * SEC);
    let thrashed = system.metrics().steady_throughput(5 * SEC, u64::MAX);
    assert!(
        system.memory().vmstat().get(VmEvent::PswpIn) > 100,
        "no thrashing observed"
    );
    assert!(
        thrashed < baseline * 0.8,
        "oversubscription should hurt: {thrashed:.0} vs {baseline:.0}"
    );
    system.memory().validate();
}
