//! Topology-engine integration tests: distance-aware placement on
//! multi-socket/multi-CXL machines, edge cases under multi-node fallback,
//! and determinism of the topology experiment grid.

use tiered_mem::{Memory, NodeId, NodeKind, PageType, Pfn, Pid, Vpn};
use tiered_sim::{LatencyModel, SimRng, MS, SEC};
use tpp::configs;
use tpp::experiment::{run_cell, PolicyChoice};
use tpp::policy::{PlacementPolicy, PolicyCtx, Tpp};

fn quickish() -> (u64, u64, u64) {
    // (ws_pages, duration_ns, seed) — matches tpp-bench's quick scale.
    (6_000, 60 * SEC, 42)
}

#[test]
fn demotion_lands_on_the_nearest_cxl_node() {
    // 3tier: DRAM's demotion order is [direct expander, switched pool].
    let (ws, dur, seed) = quickish();
    let profile = tiered_workloads::cache1(ws);
    let r = run_cell(
        &profile,
        configs::three_tier(ws),
        &PolicyChoice::Tpp,
        dur,
        seed,
    )
    .unwrap();
    let near = r.migrations_between(NodeId(0), NodeId(1));
    let far = r.migrations_between(NodeId(0), NodeId(2));
    assert!(near > 0, "TPP never demoted under pressure");
    assert!(
        near > far,
        "demotions should prefer the nearest CXL node (near {near} vs far {far})"
    );
}

#[test]
fn each_socket_demotes_to_its_own_expander() {
    let (ws, dur, seed) = quickish();
    let profile = tiered_workloads::cache1(ws);
    let r = run_cell(
        &profile,
        configs::two_socket_two_cxl(ws),
        &PolicyChoice::Tpp,
        dur,
        seed,
    )
    .unwrap();
    // The single-process workload homes on socket A (node 0); its
    // demotions must prefer expander A (node 2) over expander B (node 3).
    let own = r.migrations_between(NodeId(0), NodeId(2));
    let cross = r.migrations_between(NodeId(0), NodeId(3));
    assert!(own > 0, "socket A never demoted");
    assert!(
        own > cross,
        "socket A should prefer its own expander (own {own} vs cross {cross})"
    );
}

#[test]
fn promotion_targets_the_accessing_socket() {
    // A task homed on socket B: its hot CXL pages must promote to B's
    // DRAM, not node 0.
    let mut m = configs::two_socket_two_cxl(4_000);
    m.create_process(Pid(7));
    m.set_home_node(Pid(7), NodeId(1));
    let pfn = m
        .alloc_and_map(NodeId(3), Pid(7), Vpn(0), PageType::Anon)
        .unwrap();
    let lat = LatencyModel::datacenter();
    let mut rng = SimRng::seed(1);
    let mut p = Tpp::new();
    let mut ctx = PolicyCtx {
        memory: &mut m,
        latency: &lat,
        now_ns: 0,
        rng: &mut rng,
    };
    // Anon pages start on the active LRU, so one hint fault promotes.
    let cost = p.on_hint_fault(&mut ctx, pfn);
    assert!(cost > 0, "hot page should promote");
    let new = m.space(Pid(7)).translate(Vpn(0)).unwrap().pfn().unwrap();
    assert_eq!(
        m.frames().frame(new).node(),
        NodeId(1),
        "promotion must land on the accessing socket"
    );
    m.validate();
}

#[test]
fn tpp_at_least_linux_on_every_preset() {
    let (ws, dur, seed) = quickish();
    for &preset in configs::topology_preset_names() {
        let profile = tiered_workloads::cache1(ws);
        let linux = run_cell(
            &profile,
            configs::topology_preset(preset, ws),
            &PolicyChoice::Linux,
            dur,
            seed,
        )
        .unwrap();
        let tpp = run_cell(
            &profile,
            configs::topology_preset(preset, ws),
            &PolicyChoice::Tpp,
            dur,
            seed,
        )
        .unwrap();
        assert!(
            tpp.throughput >= linux.throughput,
            "TPP below default Linux on preset {preset}: {} < {}",
            tpp.throughput,
            linux.throughput
        );
    }
}

#[test]
fn zero_capacity_node_is_skipped_by_fallback_and_demotion() {
    // A zero-capacity expander can never satisfy its watermarks, so both
    // the allocation fallback chain and the demotion order skip it.
    let mut m = Memory::builder()
        .node(NodeKind::LocalDram, 64)
        .node(NodeKind::Cxl, 0)
        .node(NodeKind::CxlSwitched, 512)
        .swap_pages(1024)
        .build();
    m.create_process(Pid(1));
    let lat = LatencyModel::datacenter();
    let mut rng = SimRng::seed(1);
    let mut p = Tpp::new();
    // More pages than the local node holds: faults must fall through the
    // empty node to the pool without an OOM panic.
    for i in 0..120u64 {
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        p.handle_fault(&mut ctx, Pid(1), Vpn(i), PageType::Anon);
    }
    assert_eq!(m.frames().used_pages(NodeId(1)), 0);
    assert!(m.frames().used_pages(NodeId(2)) > 0);
    // Demotion pressure: pages must flow 0 → 2, never through node 1.
    for t in 0..10u64 {
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: t * 50 * MS,
            rng: &mut rng,
        };
        p.tick(&mut ctx);
    }
    assert_eq!(m.migrations_between(NodeId(0), NodeId(1)), 0);
    assert!(m.migrations_between(NodeId(0), NodeId(2)) > 0);
    m.validate();
}

#[test]
fn swap_exhaustion_during_reclaim_does_not_panic() {
    // Default-Linux reclaim with an 8-slot swap device: the daemon fills
    // swap, further evictions fail (`SwapError::Full`), and the pass must
    // stop cleanly instead of panicking.
    use tpp::policy::LinuxDefault;
    let mut m = Memory::builder()
        .node(NodeKind::LocalDram, 64)
        .node(NodeKind::Cxl, 64)
        .swap_pages(8)
        .build();
    m.create_process(Pid(1));
    let lat = LatencyModel::datacenter();
    let mut rng = SimRng::seed(1);
    let mut p = LinuxDefault::new();
    // Cold swap-backed pages on both nodes, well below the low watermark.
    for i in 0..60u64 {
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::Tmpfs)
            .unwrap();
    }
    for i in 0..60u64 {
        m.alloc_and_map(NodeId(1), Pid(1), Vpn(1_000 + i), PageType::Tmpfs)
            .unwrap();
    }
    for t in 0..10u64 {
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: t * 50 * MS,
            rng: &mut rng,
        };
        p.tick(&mut ctx);
    }
    assert_eq!(m.swap().used_slots(), 8, "swap should be exhausted");
    m.validate();
}

#[test]
fn multi_node_fallback_spreads_allocations_without_oom() {
    let mut m = Memory::builder()
        .node(NodeKind::LocalDram, 64)
        .node(NodeKind::Cxl, 64)
        .node(NodeKind::CxlSwitched, 128)
        .swap_pages(0)
        .build();
    m.create_process(Pid(1));
    let lat = LatencyModel::datacenter();
    let mut rng = SimRng::seed(1);
    let mut p = Tpp::new();
    let mut placed: Vec<Pfn> = Vec::new();
    for i in 0..200u64 {
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: 0,
            rng: &mut rng,
        };
        placed.push(p.handle_fault(&mut ctx, Pid(1), Vpn(i), PageType::Anon).pfn);
    }
    assert_eq!(placed.len(), 200);
    for node in [NodeId(0), NodeId(1), NodeId(2)] {
        assert!(
            m.frames().used_pages(node) > 0,
            "fallback should reach {node:?}"
        );
    }
    m.validate();
}

#[test]
fn topology_sweep_rows_are_jobs_invariant() {
    let mut scale = tpp_bench::Scale::quick();
    scale.ws_pages = 2_000;
    scale.duration_ns = 20 * SEC;
    scale.jobs = 1;
    let sequential = tpp_bench::sweeps::sweep_topology(&scale);
    scale.jobs = 4;
    let parallel = tpp_bench::sweeps::sweep_topology(&scale);
    assert_eq!(sequential, parallel);
}
