//! Reproducibility: every experiment is a pure function of its seed.

use std::cell::RefCell;
use std::rc::Rc;

use tiered_mem::telemetry::WriterSink;
use tiered_sim::SEC;
use tpp::configs;
use tpp::experiment::{run_cell, PolicyChoice};
use tpp::System;

fn fingerprint(seed: u64) -> (u64, u64, String) {
    let profile = tiered_workloads::cache1(3_000);
    let r = run_cell(
        &profile,
        configs::one_to_four(profile.working_set_pages()),
        &PolicyChoice::Tpp,
        20 * SEC,
        seed,
    )
    .unwrap();
    (
        r.metrics.ops_completed,
        r.metrics.accesses,
        r.vmstat.to_string(),
    )
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = fingerprint(123);
    let b = fingerprint(123);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "vmstat counters must match exactly");
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    // Ops counts almost surely differ; if not, the full counter dump must.
    assert!(a != b, "different seeds produced identical runs");
}

/// An `io::Write` that appends into a shared buffer, so the JSONL bytes a
/// `WriterSink` produced can be inspected after the run.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn jsonl_trace(seed: u64) -> Vec<u8> {
    let profile = tiered_workloads::cache1(3_000);
    let machine = configs::one_to_four(profile.working_set_pages());
    let mut system = System::new(
        machine,
        PolicyChoice::Tpp.build(),
        Box::new(profile.build()),
        seed,
    )
    .unwrap();
    let buf = SharedBuf::default();
    system.set_event_sink(Box::new(WriterSink::new(Box::new(buf.clone()))));
    system.run(10 * SEC);
    system.flush_trace();
    let bytes = buf.0.borrow().clone();
    bytes
}

#[test]
fn identical_seeds_produce_byte_identical_jsonl_traces() {
    let a = jsonl_trace(77);
    let b = jsonl_trace(77);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same seed must reproduce the exact event stream");
    // And a different seed produces a different stream.
    assert_ne!(a, jsonl_trace(78));
}

/// The Cache1 1:4 TPP cell as a [`CellSpec`], streaming its JSONL trace
/// to `trace_path` (the sink factory must be `Send + Sync`, so it writes
/// to a file rather than a shared in-process buffer).
fn traced_spec(seed: u64, trace_path: std::path::PathBuf) -> tpp::experiment::CellSpec {
    use tiered_mem::telemetry::EventSink;
    let profile = tiered_workloads::cache1(3_000);
    let ws = profile.working_set_pages();
    tpp::experiment::CellSpec::new(
        profile,
        move || configs::one_to_four(ws),
        PolicyChoice::Tpp,
        10 * SEC,
        seed,
    )
    .with_sink(move || {
        Box::new(WriterSink::to_file(&trace_path).expect("trace file opens")) as Box<dyn EventSink>
    })
}

#[test]
fn executor_at_four_jobs_matches_sequential_byte_for_byte() {
    // Four Cache1 1:4 cells under TPP (distinct seeds), each streaming
    // its full JSONL trace: run the batch sequentially and on the
    // 4-worker executor, then require byte-identical traces and
    // identical reduced results.
    let dir = std::env::temp_dir().join(format!("tpp_exec_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let seeds = [101u64, 102, 103, 104];
    let path = |tag: &str, seed: u64| dir.join(format!("{tag}_{seed}.jsonl"));

    let seq_specs: Vec<_> = seeds
        .iter()
        .map(|&s| traced_spec(s, path("seq", s)))
        .collect();
    let seq: Vec<_> = seq_specs.iter().map(|s| s.run().unwrap()).collect();

    let par_specs: Vec<_> = seeds
        .iter()
        .map(|&s| traced_spec(s, path("par", s)))
        .collect();
    let par: Vec<_> = tpp_bench::executor::run_cells(4, &par_specs)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    for (i, &seed) in seeds.iter().enumerate() {
        let a = std::fs::read(path("seq", seed)).unwrap();
        let b = std::fs::read(path("par", seed)).unwrap();
        assert!(!a.is_empty(), "trace for seed {seed} must not be empty");
        assert_eq!(a, b, "seed {seed}: executor trace diverged from sequential");
        assert_eq!(seq[i].policy, par[i].policy);
        assert_eq!(seq[i].throughput, par[i].throughput);
        assert_eq!(seq[i].local_traffic, par[i].local_traffic);
        assert_eq!(seq[i].avg_latency_ns, par[i].avg_latency_ns);
        assert_eq!(
            seq[i].vmstat, par[i].vmstat,
            "seed {seed}: vmstat counters diverged under the executor"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn thp_sweep_is_identical_at_any_job_count() {
    // The THP grid runs huge-page daemons (khugepaged/kcompactd) inside
    // every non-`never` cell; the table must still be a pure function of
    // the specs, independent of executor parallelism.
    let mut scale = tpp_bench::Scale::quick();
    scale.ws_pages = 2_000;
    scale.duration_ns = 15 * SEC;
    scale.jobs = 1;
    let sequential = tpp_bench::sweeps::sweep_thp(&scale);
    scale.jobs = 4;
    let parallel = tpp_bench::sweeps::sweep_thp(&scale);
    assert_eq!(
        sequential, parallel,
        "thp sweep rows diverged between jobs=1 and jobs=4"
    );
}

#[test]
fn policies_share_the_same_workload_stream_per_seed() {
    // Two different policies under the same seed must see the same op
    // structure (determinism of the workload generator, independent of
    // placement decisions feeding back into timing).
    let profile = tiered_workloads::uniform(2_000);
    let machine = || configs::all_local(profile.working_set_pages());
    let a = run_cell(&profile, machine(), &PolicyChoice::Linux, 10 * SEC, 5).unwrap();
    let b = run_cell(&profile, machine(), &PolicyChoice::Tpp, 10 * SEC, 5).unwrap();
    // On an uncontended all-local machine both policies make identical
    // placement decisions, so everything matches.
    assert_eq!(a.metrics.ops_completed, b.metrics.ops_completed);
    assert_eq!(a.metrics.accesses, b.metrics.accesses);
}
