//! Multi-node topologies: demotion-target selection by distance (paper
//! §5.1: "If there are multiple CXL-nodes, the demotion target is chosen
//! based on the node distances") and behaviour with several tiers.

use tiered_mem::{Memory, NodeId, NodeKind, PageType, Pid, Vpn};
use tiered_sim::{LatencyModel, SimRng, SEC};
use tpp::experiment::PolicyChoice;
use tpp::policy::{PlacementPolicy, PolicyCtx, Tpp};
use tpp::{configs, System};

fn three_tier_machine() -> Memory {
    // One local node, two CXL nodes of increasing distance and latency.
    Memory::builder()
        .node(NodeKind::LocalDram, 512)
        .node_with_latency(NodeKind::Cxl, 1024, 185)
        .node_with_latency(NodeKind::Cxl, 2048, 260)
        .swap_pages(8192)
        .build()
}

#[test]
fn demotion_targets_follow_distance() {
    let m = three_tier_machine();
    // Local demotes to the nearest CXL node; CXL nodes are terminal.
    assert_eq!(m.node(NodeId(0)).demotion_target(), Some(NodeId(1)));
    assert_eq!(m.node(NodeId(1)).demotion_target(), None);
    assert_eq!(m.node(NodeId(2)).demotion_target(), None);
}

#[test]
fn tpp_demotes_to_the_nearest_cxl_node() {
    let mut m = three_tier_machine();
    m.create_process(Pid(1));
    // Fill the local node with cold file pages.
    for i in 0..506 {
        m.alloc_and_map(NodeId(0), Pid(1), Vpn(i), PageType::File)
            .unwrap();
    }
    let lat = LatencyModel::datacenter();
    let mut rng = SimRng::seed(1);
    let mut policy = Tpp::new();
    for t in 0..20u64 {
        let mut ctx = PolicyCtx {
            memory: &mut m,
            latency: &lat,
            now_ns: t * 50_000_000,
            rng: &mut rng,
        };
        policy.tick(&mut ctx);
    }
    assert!(m.vmstat().demoted_total() > 0);
    // Everything demoted landed on node 1 (nearest), not node 2.
    assert!(m.frames().used_pages(NodeId(1)) > 0);
    assert_eq!(m.frames().used_pages(NodeId(2)), 0);
    m.validate();
}

#[test]
fn full_system_runs_on_three_tiers() {
    let profile = tiered_workloads::uniform(2_500);
    let mut system = System::new(
        three_tier_machine(),
        Box::new(Tpp::new()),
        Box::new(profile.build()),
        5,
    )
    .unwrap();
    system.run(20 * SEC);
    assert!(system.metrics().ops_completed > 1_000);
    system.memory().validate();
}

#[test]
fn higher_cxl_latency_hurts_linux_more_than_tpp() {
    // Latency-sensitivity: with a slow (FPGA-prototype-like, +250 ns) CXL
    // device, the gap between TPP and default Linux widens — TPP keeps
    // hot pages off the slow tier.
    let profile = tiered_workloads::cache1(4_000);
    let ws = profile.working_set_pages();
    let machine = |latency: u64| {
        let total = ws * 105 / 100;
        let local = total / 5;
        Memory::builder()
            .node(NodeKind::LocalDram, local)
            .node_with_latency(NodeKind::Cxl, total - local, latency)
            .swap_pages(ws * 4)
            .build()
    };
    let base = tpp::experiment::run_cell(
        &profile,
        configs::all_local(ws),
        &PolicyChoice::Linux,
        40 * SEC,
        3,
    )
    .unwrap();
    let run = |lat: u64, choice: &PolicyChoice| {
        tpp::experiment::run_cell(&profile, machine(lat), choice, 40 * SEC, 3)
            .unwrap()
            .relative_throughput(&base)
    };
    let linux_fast = run(185, &PolicyChoice::Linux);
    let linux_slow = run(400, &PolicyChoice::Linux);
    let tpp_slow = run(400, &PolicyChoice::Tpp);
    assert!(
        linux_slow < linux_fast - 0.02,
        "slower CXL must hurt Linux: {linux_slow:.3} vs {linux_fast:.3}"
    );
    assert!(
        tpp_slow > linux_slow + 0.05,
        "TPP must shield the slow tier: {tpp_slow:.3} vs {linux_slow:.3}"
    );
}
