//! Telemetry integration: counter↔trace parity across every policy,
//! mid-run sink attachment, decision-reason coverage, and the §5.5
//! ping-pong diagnosis on a thrashing configuration.

use tiered_mem::telemetry::{replay_counters, RingSink, TRACED_COUNTERS};
use tiered_mem::{TraceEvent, VmEvent};
use tiered_sim::SEC;
use tpp::experiment::PolicyChoice;
use tpp::metrics::{decision_summary, ping_pong_report};
use tpp::{configs, System};

/// Runs `choice` on a pressured 2:1 machine with an unbounded ring
/// attached from the start; returns the ring and the finished system.
fn traced_run(choice: &PolicyChoice, duration_ns: u64) -> (RingSink, System) {
    let profile = tiered_workloads::cache1(4_000);
    let machine = configs::two_to_one(profile.working_set_pages());
    let mut system = System::new(machine, choice.build(), Box::new(profile.build()), 11).unwrap();
    let ring = RingSink::unbounded();
    system.set_event_sink(Box::new(ring.clone()));
    system.run(duration_ns);
    (ring, system)
}

const ALL_POLICIES: [PolicyChoice; 5] = [
    PolicyChoice::Linux,
    PolicyChoice::NumaBalancing,
    PolicyChoice::AutoTiering,
    PolicyChoice::Tpp,
    PolicyChoice::InMemorySwap,
];

#[test]
fn counters_equal_trace_event_counts_for_every_policy() {
    for choice in &ALL_POLICIES {
        let (ring, system) = traced_run(choice, 8 * SEC);
        let records = ring.snapshot();
        assert!(!records.is_empty(), "{}: empty trace", choice.label());
        let replayed = replay_counters(&records);
        let vm = system.memory().vmstat();
        for &event in TRACED_COUNTERS {
            assert_eq!(
                vm.get(event),
                replayed.get(event),
                "{}: counter {} disagrees with the trace",
                choice.label(),
                event.name()
            );
        }
    }
}

#[test]
fn counter_deltas_equal_event_counts_after_midrun_attach() {
    // Attaching the sink mid-run must make the *delta* of every traced
    // counter equal the ring's event counts: record() bumps both from
    // one call, so the trace covers exactly the attached window.
    let profile = tiered_workloads::cache1(4_000);
    let machine = configs::two_to_one(profile.working_set_pages());
    let mut system = System::new(
        machine,
        PolicyChoice::Tpp.build(),
        Box::new(profile.build()),
        11,
    )
    .unwrap();
    system.run(4 * SEC);
    let before = system.memory().vmstat().clone();
    let ring = RingSink::unbounded();
    system.set_event_sink(Box::new(ring.clone()));
    system.run(4 * SEC);
    let delta = system.memory().vmstat().delta_since(&before);
    let replayed = replay_counters(&ring.snapshot());
    for &event in TRACED_COUNTERS {
        assert_eq!(
            delta.get(event),
            replayed.get(event),
            "delta of {} disagrees with the attached-window trace",
            event.name()
        );
    }
}

#[test]
fn every_policy_emits_a_decision_reason_event() {
    for choice in &ALL_POLICIES {
        // In-memory swap only reasons on allocation stalls (its tick
        // reclaims silently into the pool), so give it a machine smaller
        // than the working set to force the stall path.
        let (ring, _) = if matches!(choice, PolicyChoice::InMemorySwap) {
            let profile = tiered_workloads::cache1(4_000);
            let machine = configs::two_to_one(2_500);
            let mut system =
                System::new(machine, choice.build(), Box::new(profile.build()), 11).unwrap();
            let ring = RingSink::unbounded();
            system.set_event_sink(Box::new(ring.clone()));
            system.run(8 * SEC);
            (ring, system)
        } else {
            traced_run(choice, 8 * SEC)
        };
        let records = ring.snapshot();
        let reasons = records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::Decision { .. }
                        | TraceEvent::PromoteFail { .. }
                        | TraceEvent::PromoteSkip { .. }
                )
            })
            .count();
        assert!(
            reasons > 0,
            "{}: no decision-reason events in a pressured run",
            choice.label()
        );
    }
}

#[test]
fn fallback_policies_attribute_decisions_to_themselves() {
    // The shared allocation path (fault_with_fallback) tags its decision
    // events with the calling policy's name, not a generic label.
    for choice in [
        PolicyChoice::Linux,
        PolicyChoice::Tpp,
        PolicyChoice::NumaBalancing,
    ] {
        let (ring, _) = traced_run(&choice, 8 * SEC);
        let summary = decision_summary(&ring.snapshot());
        assert!(
            summary
                .iter()
                .any(|s| s.policy == choice.label() && s.total() > 0),
            "{}: no decisions attributed to the policy (got: {:?})",
            choice.label(),
            summary.iter().map(|s| s.policy.clone()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn ping_pong_report_reproduces_the_candidate_demoted_diagnosis() {
    // Paper §5.5: under memory pressure the pgpromote_candidate_demoted
    // counter reveals promotion/demotion ping-pong — promotion candidates
    // that the demotion daemon had just pushed to CXL. The 1:4 machine
    // (local holds ~20% of the working set) thrashes by construction.
    let profile = tiered_workloads::cache1(4_000);
    let machine = configs::one_to_four(profile.working_set_pages());
    let mut system = System::new(
        machine,
        PolicyChoice::Tpp.build(),
        Box::new(profile.build()),
        11,
    )
    .unwrap();
    let ring = RingSink::unbounded();
    system.set_event_sink(Box::new(ring.clone()));
    system.run(20 * SEC);
    let report = ping_pong_report(&ring.snapshot());
    let vm = system.memory().vmstat();
    // The trace-derived report agrees with the kernel-style counter...
    assert_eq!(
        report.candidates_recently_demoted,
        vm.get(VmEvent::PgPromoteCandidateDemoted)
    );
    assert_eq!(
        report.promote_candidates,
        vm.get(VmEvent::PgPromoteCandidate)
    );
    // ...and diagnoses actual churn: recently-demoted pages coming back
    // as promotion candidates, some completing full round trips.
    assert!(
        report.candidates_recently_demoted > 0,
        "no ping-pong candidates observed: {report:?}"
    );
    assert!(
        report.round_trips > 0,
        "no demote→promote round trips: {report:?}"
    );
    assert!(report.ping_pong_pages > 0);
}

#[test]
fn untraced_runs_are_numerically_identical_to_traced_ones() {
    let run = |traced: bool| {
        let profile = tiered_workloads::cache1(4_000);
        let machine = configs::two_to_one(profile.working_set_pages());
        let mut system = System::new(
            machine,
            PolicyChoice::Tpp.build(),
            Box::new(profile.build()),
            11,
        )
        .unwrap();
        if traced {
            system.set_event_sink(Box::new(RingSink::unbounded()));
        }
        system.run(6 * SEC);
        (
            system.metrics().ops_completed,
            system.metrics().accesses,
            system.now_ns(),
            system.memory().vmstat().to_string(),
        )
    };
    assert_eq!(
        run(false),
        run(true),
        "tracing must not perturb the simulation"
    );
}
