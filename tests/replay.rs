//! Record/replay round trip: capture a run's access stream, then replay
//! it as a workload under a different policy on a fresh machine.

use tiered_sim::{SimRng, Trace, TraceRecorder, TraceWorkload, Workload, SEC};
use tpp::configs;
use tpp::experiment::PolicyChoice;
use tpp::System;

fn record_cache_run() -> Trace {
    let profile = tiered_workloads::cache1(2_000);
    let mut system = System::new(
        configs::all_local(profile.working_set_pages()),
        PolicyChoice::Linux.build(),
        Box::new(profile.build()),
        13,
    )
    .unwrap();
    let mut recorder = TraceRecorder::with_limit(200_000);
    system.run_observed(5 * SEC, &mut recorder);
    recorder.into_trace()
}

#[test]
fn recorded_trace_replays_under_a_different_policy() {
    let trace = record_cache_run();
    assert!(trace.len() > 10_000, "trace too small: {}", trace.len());
    let ws = {
        let w = TraceWorkload::new(trace.clone(), 8);
        w.working_set_pages()
    };
    assert!(ws > 500, "replay working set {ws}");
    let replay = TraceWorkload::new(trace, 8);
    let mut system = System::new(
        configs::one_to_four(ws + ws / 4),
        PolicyChoice::Tpp.build(),
        Box::new(replay),
        13,
    )
    .unwrap();
    system.run(5 * SEC);
    assert!(system.metrics().ops_completed > 1_000);
    // TPP machinery engaged on the replayed traffic.
    assert!(system.memory().vmstat().demoted_total() > 0);
    system.memory().validate();
}

#[test]
fn trace_text_round_trip_at_scale() {
    let trace = record_cache_run();
    let text = trace.to_text();
    let parsed: Trace = text.parse().unwrap();
    assert_eq!(parsed, trace);
    assert_eq!(parsed.duration_ns(), trace.duration_ns());
}

#[test]
fn replay_is_deterministic() {
    let trace = record_cache_run();
    let run = |trace: Trace| {
        let ws = TraceWorkload::new(trace.clone(), 8).working_set_pages();
        let mut system = System::new(
            configs::two_to_one(ws + ws / 4),
            PolicyChoice::Tpp.build(),
            Box::new(TraceWorkload::new(trace, 8)),
            7,
        )
        .unwrap();
        system.run(3 * SEC);
        (system.metrics().ops_completed, system.metrics().accesses)
    };
    assert_eq!(run(trace.clone()), run(trace));
}

#[test]
fn replayed_ops_pace_matches_recording() {
    let trace = record_cache_run();
    let total = trace.duration_ns();
    let mut w = TraceWorkload::new(trace, 8);
    let mut rng = SimRng::seed(1);
    let mut cpu_total = 0u64;
    // Consume one full pass of the trace.
    let mut accesses = 0usize;
    let len_target = w.working_set_pages(); // just to exercise the API
    let _ = len_target;
    while w.position() < 200_000 {
        let op = w.next_op(0, &mut rng);
        accesses += op.access_count();
        cpu_total += op.cpu_ns;
        if accesses >= 199_990 {
            break;
        }
    }
    // The summed op pacing approximates the recorded duration (within
    // the op-boundary rounding of 1 µs minimums).
    assert!(
        cpu_total as f64 > total as f64 * 0.5 && (cpu_total as f64) < total as f64 * 2.0 + 1e9,
        "pacing {cpu_total} vs recorded {total}"
    );
}
