//! End-to-end integration tests asserting the paper's directional claims
//! at a reduced scale. Exact magnitudes are checked by the `repro`
//! binary; here we lock in the *shape*: who wins, what mechanism carries
//! the win, and which failure modes appear where the paper says they do.

use tiered_mem::VmEvent;
use tiered_sim::SEC;
use tpp::configs;
use tpp::experiment::{run_cell, ExperimentResult, PolicyChoice};
use tpp::policy::TppConfig;

const DURATION: u64 = 50 * SEC;
const WS: u64 = 5_000;
const SEED: u64 = 42;

fn cache1_cell(choice: &PolicyChoice) -> ExperimentResult {
    let profile = tiered_workloads::cache1(WS);
    run_cell(
        &profile,
        configs::one_to_four(profile.working_set_pages()),
        choice,
        DURATION,
        SEED,
    )
    .expect("policy supports 1:4")
}

fn cache1_baseline() -> ExperimentResult {
    let profile = tiered_workloads::cache1(WS);
    run_cell(
        &profile,
        configs::all_local(profile.working_set_pages()),
        &PolicyChoice::Linux,
        DURATION,
        SEED,
    )
    .unwrap()
}

#[test]
fn tpp_beats_default_linux_on_memory_expansion() {
    // Paper Figure 16a: Cache1 on 1:4 loses ~14% under default Linux but
    // stays within ~0.5% of all-local under TPP.
    let baseline = cache1_baseline();
    let linux = cache1_cell(&PolicyChoice::Linux);
    let tpp = cache1_cell(&PolicyChoice::Tpp);

    let linux_rel = linux.relative_throughput(&baseline);
    let tpp_rel = tpp.relative_throughput(&baseline);
    assert!(
        tpp_rel > linux_rel + 0.05,
        "TPP ({tpp_rel:.3}) must clearly beat Linux ({linux_rel:.3})"
    );
    assert!(
        tpp_rel > 0.95,
        "TPP should be near all-local, got {tpp_rel:.3}"
    );
    assert!(
        linux_rel < 0.93,
        "Linux should visibly suffer, got {linux_rel:.3}"
    );
    // Mechanism: TPP serves most traffic locally, Linux does not.
    assert!(
        tpp.local_traffic > 0.80,
        "tpp local traffic {:.3}",
        tpp.local_traffic
    );
    assert!(
        linux.local_traffic < 0.60,
        "linux local traffic {:.3}",
        linux.local_traffic
    );
}

#[test]
fn tpp_demotes_by_migration_linux_reclaims_by_paging() {
    // Paper §5.1: TPP replaces swap-based reclaim with migration.
    let linux = cache1_cell(&PolicyChoice::Linux);
    let tpp = cache1_cell(&PolicyChoice::Tpp);
    assert!(tpp.demoted() > 100, "TPP demoted only {}", tpp.demoted());
    assert_eq!(linux.demoted(), 0, "default Linux has no demotion path");
    assert!(
        linux.swap_outs() > tpp.swap_outs(),
        "Linux must page out more than TPP ({} vs {})",
        linux.swap_outs(),
        tpp.swap_outs()
    );
    // TPP promotes trapped hot pages; Linux cannot promote at all.
    assert!(tpp.promoted() > 100);
    assert_eq!(linux.promoted(), 0);
}

#[test]
fn numa_balancing_promotion_stalls_under_pressure() {
    // Paper §4.2/Figure 19b: NUMA balancing stops promoting when the
    // local node is low on free pages, trapping hot pages on CXL.
    let nb = cache1_cell(&PolicyChoice::NumaBalancing);
    let tpp = cache1_cell(&PolicyChoice::Tpp);
    assert!(
        nb.promoted() < tpp.promoted() / 5,
        "NUMA balancing promoted {} vs TPP {}",
        nb.promoted(),
        tpp.promoted()
    );
    assert!(
        nb.vmstat.get(VmEvent::PgPromoteFailLowMem) > 0,
        "the low-memory promotion failure path never fired"
    );
    assert!(nb.local_traffic < tpp.local_traffic);
}

#[test]
fn numa_balancing_wastes_hint_faults_on_local_pages() {
    // Paper §5.3: sampling local nodes produces useless hint faults; TPP
    // samples CXL nodes only.
    let nb = cache1_cell(&PolicyChoice::NumaBalancing);
    let tpp = cache1_cell(&PolicyChoice::Tpp);
    assert!(nb.vmstat.get(VmEvent::NumaHintFaultsLocal) > 0);
    assert_eq!(tpp.vmstat.get(VmEvent::NumaHintFaultsLocal), 0);
}

#[test]
fn autotiering_cannot_run_one_to_four() {
    // Paper §6.4: AutoTiering crashes on 1:4 configurations.
    let profile = tiered_workloads::cache1(WS);
    let err = run_cell(
        &profile,
        configs::one_to_four(profile.working_set_pages()),
        &PolicyChoice::AutoTiering,
        DURATION,
        SEED,
    )
    .unwrap_err();
    assert_eq!(err.policy, "autotiering");
    // But 2:1 works.
    run_cell(
        &profile,
        configs::two_to_one(profile.working_set_pages()),
        &PolicyChoice::AutoTiering,
        DURATION,
        SEED,
    )
    .expect("AutoTiering supports 2:1");
}

#[test]
fn decoupling_sustains_promotion() {
    // Paper Figure 17: without the decoupled watermarks, promotion nearly
    // halts because new allocations instantly consume freed pages.
    let coupled = cache1_cell(&PolicyChoice::TppCustom(TppConfig {
        decouple: false,
        ..TppConfig::default()
    }));
    let decoupled = cache1_cell(&PolicyChoice::Tpp);
    assert!(
        decoupled.promoted() > coupled.promoted(),
        "decoupled {} vs coupled {}",
        decoupled.promoted(),
        coupled.promoted()
    );
    assert!(decoupled.local_traffic >= coupled.local_traffic);
}

#[test]
fn active_lru_filter_cuts_promotion_traffic_and_ping_pong() {
    // Paper Figure 18 / §6.3: the filter reduces promotions severalfold
    // and halves demoted-then-promoted pages, without hurting
    // throughput.
    let instant = cache1_cell(&PolicyChoice::TppCustom(TppConfig {
        active_lru_filter: false,
        ..TppConfig::default()
    }));
    let filtered = cache1_cell(&PolicyChoice::Tpp);
    assert!(
        (filtered.promoted() as f64) < instant.promoted() as f64 * 0.9,
        "filter should cut promotions: {} vs {}",
        filtered.promoted(),
        instant.promoted()
    );
    assert!(
        filtered.vmstat.get(VmEvent::PgPromoteCandidateDemoted)
            <= instant.vmstat.get(VmEvent::PgPromoteCandidateDemoted),
        "filter must not increase ping-pong"
    );
    let baseline = cache1_baseline();
    let f_rel = filtered.relative_throughput(&baseline);
    let i_rel = instant.relative_throughput(&baseline);
    assert!(
        f_rel >= i_rel - 0.02,
        "filter must not cost throughput: {f_rel:.3} vs {i_rel:.3}"
    );
    // The skip-inactive path actually fires.
    assert!(filtered.vmstat.get(VmEvent::PgPromoteSkipInactive) > 0);
    assert_eq!(instant.vmstat.get(VmEvent::PgPromoteSkipInactive), 0);
}

#[test]
fn page_type_aware_allocation_places_caches_on_cxl() {
    // Paper §5.4/Table 1: with cache-to-CXL allocation, file pages start
    // on the CXL node and the local node hosts the anons.
    let profile = tiered_workloads::cache1(WS);
    let aware = run_cell(
        &profile,
        configs::one_to_four(profile.working_set_pages()),
        &PolicyChoice::TppCustom(TppConfig {
            cache_to_cxl: true,
            ..TppConfig::default()
        }),
        DURATION,
        SEED,
    )
    .unwrap();
    let baseline = cache1_baseline();
    assert!(
        aware.file_resident_local < 0.5,
        "most file pages should sit on CXL, local frac {:.3}",
        aware.file_resident_local
    );
    assert!(
        aware.anon_resident_local > aware.file_resident_local,
        "anon should be preferentially local"
    );
    let rel = aware.relative_throughput(&baseline);
    assert!(
        rel > 0.93,
        "page-type-aware TPP should stay near baseline, got {rel:.3}"
    );
}

#[test]
fn web_spills_anon_under_default_linux_on_two_to_one() {
    // Paper §6.2.1 (Figure 15a): Web's file-heavy warm-up fills the local
    // node; under default Linux a chunk of anon ends up trapped on CXL,
    // while TPP keeps anon essentially local.
    let profile = tiered_workloads::web(WS);
    let machine = || configs::two_to_one(profile.working_set_pages());
    let linux = run_cell(&profile, machine(), &PolicyChoice::Linux, DURATION, SEED).unwrap();
    let tpp = run_cell(&profile, machine(), &PolicyChoice::Tpp, DURATION, SEED).unwrap();
    // The anon surge is scale-dependent; at this reduced scale the robust
    // claims are that TPP strictly improves anon residency and serves
    // clearly more traffic locally (the full-scale gap is checked by the
    // `repro fig15` run).
    assert!(
        tpp.anon_resident_local >= linux.anon_resident_local,
        "TPP anon-local {:.3} vs Linux {:.3}",
        tpp.anon_resident_local,
        linux.anon_resident_local
    );
    assert!(
        tpp.local_traffic > linux.local_traffic + 0.02,
        "TPP local traffic {:.3} vs Linux {:.3}",
        tpp.local_traffic,
        linux.local_traffic
    );
}

#[test]
fn tpp_matches_all_local_on_uncontended_machines() {
    // With ample local memory TPP must not regress anything.
    let profile = tiered_workloads::uniform(2_000);
    let baseline = run_cell(
        &profile,
        configs::all_local(profile.working_set_pages()),
        &PolicyChoice::Linux,
        20 * SEC,
        SEED,
    )
    .unwrap();
    let tpp = run_cell(
        &profile,
        configs::all_local(profile.working_set_pages()),
        &PolicyChoice::Tpp,
        20 * SEC,
        SEED,
    )
    .unwrap();
    let rel = tpp.relative_throughput(&baseline);
    assert!((0.99..=1.01).contains(&rel), "got {rel:.4}");
}
