//! The two beyond-the-paper workloads bracket the promotion-friendliness
//! spectrum; these tests pin down the expected extremes.

use tiered_sim::SEC;
use tpp::configs;
use tpp::experiment::{run_cell, PolicyChoice};

const DURATION: u64 = 40 * SEC;

#[test]
fn kv_store_is_promotion_heaven() {
    // Extremely skewed point lookups: once TPP pulls the Zipf head onto
    // the local node, almost all traffic is local even at 1:4.
    let profile = tiered_workloads::kv_store(5_000);
    let ws = profile.working_set_pages();
    let baseline = run_cell(
        &profile,
        configs::all_local(ws),
        &PolicyChoice::Linux,
        DURATION,
        3,
    )
    .unwrap();
    let linux = run_cell(
        &profile,
        configs::one_to_four(ws),
        &PolicyChoice::Linux,
        DURATION,
        3,
    )
    .unwrap();
    let tpp = run_cell(
        &profile,
        configs::one_to_four(ws),
        &PolicyChoice::Tpp,
        DURATION,
        3,
    )
    .unwrap();
    assert!(
        tpp.local_traffic > linux.local_traffic + 0.2,
        "tpp {:.3} vs linux {:.3}",
        tpp.local_traffic,
        linux.local_traffic
    );
    assert!(
        tpp.relative_throughput(&baseline) > linux.relative_throughput(&baseline) + 0.03,
        "tpp {:.3} vs linux {:.3}",
        tpp.relative_throughput(&baseline),
        linux.relative_throughput(&baseline)
    );
}

#[test]
fn batch_analytics_gains_little_from_promotion() {
    // A fast scan front cools pages before a second touch: the active-LRU
    // filter correctly withholds promotion, so TPP's promotion traffic is
    // modest — and crucially it does not *hurt* relative to Linux.
    let profile = tiered_workloads::batch_analytics(5_000);
    let ws = profile.working_set_pages();
    let baseline = run_cell(
        &profile,
        configs::all_local(ws),
        &PolicyChoice::Linux,
        DURATION,
        3,
    )
    .unwrap();
    let linux = run_cell(
        &profile,
        configs::one_to_four(ws),
        &PolicyChoice::Linux,
        DURATION,
        3,
    )
    .unwrap();
    let tpp = run_cell(
        &profile,
        configs::one_to_four(ws),
        &PolicyChoice::Tpp,
        DURATION,
        3,
    )
    .unwrap();
    let tpp_rel = tpp.relative_throughput(&baseline);
    let linux_rel = linux.relative_throughput(&baseline);
    assert!(
        tpp_rel >= linux_rel - 0.02,
        "TPP must not lose to Linux on scans: {tpp_rel:.3} vs {linux_rel:.3}"
    );
    // Promotions stay bounded: far fewer than the pages scanned.
    let scanned = tpp.vmstat.get(tiered_mem::VmEvent::NumaHintFaults);
    assert!(
        tpp.promoted() < scanned,
        "promotions {} should not exceed hint faults {scanned}",
        tpp.promoted()
    );
}
