//! Integration tests for the Chameleon characterization pipeline: the
//! §3 observations must reproduce from the synthetic workloads through
//! the full profiler stack (sampled collection, interval bitmaps,
//! reports).

use chameleon::{Chameleon, ChameleonConfig, CollectorConfig};
use tiered_sim::SEC;
use tpp::experiment::PolicyChoice;
use tpp::{configs, System};

const WS: u64 = 5_000;
const INTERVAL: u64 = 8 * SEC;

fn profile_workload(profile: &tiered_workloads::WorkloadProfile) -> Chameleon {
    // Dense sampling: at the test's tiny scale the production 1-in-200
    // rate would track only the hottest pages and bias every fraction
    // upward (see `Worker::hot_pages`). With 1-in-1 sampling every
    // materialised page is tracked, so tracked ~ resident.
    let mut profiler = Chameleon::new(ChameleonConfig {
        collector: CollectorConfig {
            sample_period: 1,
            cores: 16,
            core_groups: 1,
            mini_interval_ns: INTERVAL / 8,
        },
        interval_ns: INTERVAL,
        max_gap_intervals: 16,
    });
    let mut system = System::new(
        configs::all_local(profile.working_set_pages()),
        PolicyChoice::Linux.build(),
        Box::new(profile.build()),
        9,
    )
    .unwrap();
    system.run_observed(6 * INTERVAL, &mut profiler);
    profiler.flush_interval(system.now_ns());
    profiler
}

#[test]
fn web_anon_is_hotter_than_file() {
    // Paper §3.4 / Figure 8: anon pages are hotter than file pages.
    let profiler = profile_workload(&tiered_workloads::web(WS));
    let w = profiler.worker();
    let anon_hot = w.hot_fraction(2, Some(true));
    let file_hot = w.hot_fraction(2, Some(false));
    assert!(
        anon_hot > file_hot + 0.05,
        "web anon hot {anon_hot:.3} must exceed file hot {file_hot:.3}"
    );
}

#[test]
fn significant_memory_stays_cold() {
    // Paper §3.3 / Figure 7: a large fraction of allocated memory is not
    // touched within short windows.
    for profile in [tiered_workloads::web(WS), tiered_workloads::cache1(WS)] {
        let profiler = profile_workload(&profile);
        let hot = profiler.worker().hot_fraction(2, None);
        assert!(
            hot < 0.75,
            "{}: {hot:.3} of memory hot within 2 intervals — too hot",
            profile.name
        );
        assert!(
            hot > 0.05,
            "{}: {hot:.3} — nothing hot at all",
            profile.name
        );
    }
}

#[test]
fn warehouse_files_are_nearly_all_cold() {
    // Paper §3.4: almost all of Data Warehouse's file pages remain cold.
    let profiler = profile_workload(&tiered_workloads::data_warehouse(WS));
    let file_hot = profiler.worker().hot_fraction(2, Some(false));
    assert!(file_hot < 0.25, "dw file hot {file_hot:.3}");
}

#[test]
fn cache_reaccesses_arrive_within_few_intervals() {
    // Paper §3.7 / Figure 11: Web/Cache cold pages are re-accessed within
    // ~10 minutes (a handful of intervals at simulation scale).
    let profiler = profile_workload(&tiered_workloads::cache1(WS));
    let cdf = profiler.reaccess_cdf();
    let within_8 = cdf.get(7).copied().unwrap_or(0.0);
    assert!(
        within_8 > 0.5,
        "cache1 should re-access most cold pages quickly, cdf(8)={within_8:.3}"
    );
}

#[test]
fn collector_samples_at_configured_rate() {
    // Sampling overhead stays proportional to 1/sample_period with duty
    // cycling applied on top — checked with production-like settings.
    let profile = tiered_workloads::cache1(WS);
    let mut profiler = Chameleon::new(ChameleonConfig {
        collector: CollectorConfig {
            sample_period: 20,
            cores: 16,
            core_groups: 4,
            mini_interval_ns: INTERVAL / 8,
        },
        interval_ns: INTERVAL,
        max_gap_intervals: 16,
    });
    let mut system = System::new(
        configs::all_local(profile.working_set_pages()),
        PolicyChoice::Linux.build(),
        Box::new(profile.build()),
        9,
    )
    .unwrap();
    system.run_observed(2 * INTERVAL, &mut profiler);
    let seen = profiler.collector().events_seen() as f64;
    let sampled = profiler.collector().events_sampled() as f64;
    let rate = sampled / seen;
    // 1/20 sampling × 1/4 duty cycle = 1.25%.
    assert!(
        (0.005..0.03).contains(&rate),
        "sampling rate {rate:.4} out of expected band"
    );
}

#[test]
fn usage_series_tracks_workload_composition() {
    // Paper Figure 9d: Data Warehouse is anon-dominated (~85%).
    let profiler = profile_workload(&tiered_workloads::data_warehouse(WS));
    let share = profiler
        .series()
        .anon_share
        .values()
        .last()
        .copied()
        .unwrap_or(0.0);
    assert!(
        (0.6..1.0).contains(&share),
        "dw anon share {share:.3}, expected anon-dominated"
    );
}
