//! Quickstart: build a tiered machine, run a workload under TPP, and read
//! the placement statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tiered_sim::{MINUTE, SEC};
use tpp::experiment::PolicyChoice;
use tpp::{configs, System};

fn main() {
    // A workload with a 4,000-page working set, half of it hot.
    let profile = tiered_workloads::uniform(4_000);

    // A machine whose local DRAM : CXL capacity is 2:1 — the paper's
    // production target configuration.
    let memory = configs::two_to_one(profile.working_set_pages());
    println!(
        "machine: {} local + {} CXL pages",
        memory.capacity(tiered_mem::NodeId(0)),
        memory.capacity(tiered_mem::NodeId(1)),
    );

    // Assemble and run the system for two simulated minutes under TPP.
    let mut system = System::new(
        memory,
        PolicyChoice::Tpp.build(),
        Box::new(profile.build()),
        42,
    )
    .expect("TPP supports every machine shape");
    system.run(2 * MINUTE);

    // What happened?
    let m = system.metrics();
    println!(
        "\nafter {:.0} simulated seconds:",
        system.now_ns() as f64 / SEC as f64
    );
    println!("  ops completed        : {}", m.ops_completed);
    println!("  accesses             : {}", m.accesses);
    println!(
        "  served from local    : {:.1}%",
        m.local_traffic_fraction() * 100.0
    );
    println!(
        "  avg access latency   : {:.0} ns",
        m.avg_access_latency_ns()
    );

    let vm = system.memory().vmstat();
    println!("\nvmstat (TPP counters):");
    println!(
        "  pgdemote_anon        : {}",
        vm.get(tiered_mem::VmEvent::PgDemoteAnon)
    );
    println!(
        "  pgdemote_file        : {}",
        vm.get(tiered_mem::VmEvent::PgDemoteFile)
    );
    println!("  pgpromote_success    : {}", vm.promoted_total());
    println!(
        "  promote success rate : {:.1}%",
        vm.promote_success_rate() * 100.0
    );
    println!(
        "  ping-pong candidates : {}",
        vm.get(tiered_mem::VmEvent::PgPromoteCandidateDemoted)
    );
}
