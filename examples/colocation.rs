//! Co-located services sharing one tiered machine: a latency-sensitive
//! cache and a batch Data Warehouse job compete for the local node, and
//! TPP arbitrates transparently — hot cache pages stay local while the
//! warehouse's cold bulk is demoted to CXL.
//!
//! ```text
//! cargo run --release --example colocation
//! ```

use tiered_sim::MINUTE;
use tpp::experiment::PolicyChoice;
use tpp::{configs, MultiSystem};

fn run(choice: PolicyChoice) -> (f64, f64, f64) {
    let cache = tiered_workloads::cache1(8_000);
    let warehouse = tiered_workloads::data_warehouse(8_000);
    let total_ws = cache.working_set_pages() + warehouse.working_set_pages();
    let mut system = MultiSystem::new(
        configs::two_to_one(total_ws),
        choice.build(),
        vec![Box::new(cache.build()), Box::new(warehouse.build())],
        21,
    )
    .expect("2:1 is supported by every policy");
    system.run(2 * MINUTE);
    let cache_tp = system.lane_metrics(0).steady_throughput(MINUTE, u64::MAX);
    let dw_tp = system.lane_metrics(1).steady_throughput(MINUTE, u64::MAX);
    let cache_local = system.lane_metrics(0).local_traffic_fraction();
    (cache_tp, dw_tp, cache_local)
}

fn main() {
    println!("cache1 + data_warehouse co-located on one 2:1 machine\n");
    println!(
        "{:<16} {:>16} {:>16} {:>20}",
        "policy", "cache1 ops/s", "warehouse ops/s", "cache1 local traffic"
    );
    let mut rows = Vec::new();
    for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
        let label = choice.label();
        let (cache_tp, dw_tp, cache_local) = run(choice);
        println!(
            "{label:<16} {cache_tp:>16.0} {dw_tp:>16.0} {:>19.1}%",
            cache_local * 100.0
        );
        rows.push((label, cache_tp));
    }
    let gain = rows[1].1 / rows[0].1;
    println!(
        "\nTPP improves the latency-sensitive cache's throughput by {:.1}% while \
         both services share the same local DRAM.",
        (gain - 1.0) * 100.0
    );
}
