//! Characterize a workload with the Chameleon profiler (paper §3): page
//! temperature, anon-vs-file hotness, and the re-access-interval CDF.
//!
//! ```text
//! cargo run --release --example profile_workload [web|cache1|cache2|data_warehouse]
//! ```

use chameleon::{Chameleon, ChameleonConfig, CollectorConfig, TextReport};
use tiered_sim::{MINUTE, SEC};
use tpp::experiment::PolicyChoice;
use tpp::{configs, System};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "web".to_string());
    let ws = 12_000;
    let profile = match which.as_str() {
        "web" => tiered_workloads::web(ws),
        "cache1" => tiered_workloads::cache1(ws),
        "cache2" => tiered_workloads::cache2(ws),
        "data_warehouse" | "dw" => tiered_workloads::data_warehouse(ws),
        "kv_store" | "kv" => tiered_workloads::kv_store(ws),
        "batch_analytics" | "batch" => tiered_workloads::batch_analytics(ws),
        other => {
            eprintln!(
                "unknown workload {other}; use \
                 web|cache1|cache2|data_warehouse|kv_store|batch_analytics"
            );
            std::process::exit(2);
        }
    };

    // Run on a comfortable all-local machine, sampling 1-in-200 accesses
    // with 4-group duty cycling — Chameleon's production settings. One
    // profiler interval (15 s here) stands in for the paper's 1 minute.
    let interval = 15 * SEC;
    let mut profiler = Chameleon::new(ChameleonConfig {
        collector: CollectorConfig {
            sample_period: 200,
            cores: 32,
            core_groups: 4,
            mini_interval_ns: interval / 12,
        },
        interval_ns: interval,
        max_gap_intervals: 16,
    });

    let mut system = System::new(
        configs::all_local(profile.working_set_pages()),
        PolicyChoice::Linux.build(),
        Box::new(profile.build()),
        3,
    )
    .expect("all-local always runs");
    system.run_observed(3 * MINUTE, &mut profiler);
    profiler.flush_interval(system.now_ns());

    println!("{}", TextReport::from_profiler(&which, &profiler));
    println!(
        "(1 profiler interval here stands in for the paper's 1 minute; \
         hot fractions are relative to sampler-tracked pages)"
    );
}
