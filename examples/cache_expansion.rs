//! Memory expansion scenario (paper §6.2.2): a Cache1-style service on a
//! machine where the local node holds only ~20% of the working set
//! (local:CXL = 1:4), comparing default Linux against TPP.
//!
//! ```text
//! cargo run --release --example cache_expansion
//! ```

use tiered_sim::MINUTE;
use tpp::configs;
use tpp::experiment::{run_cell, PolicyChoice};

fn main() {
    let profile = tiered_workloads::cache1(12_000);
    let ws = profile.working_set_pages();
    let duration = 3 * MINUTE;

    println!("cache1 working set: {ws} pages; local node holds ~20% of it (1:4)\n");

    // The all-from-local-memory reference.
    let baseline = run_cell(
        &profile,
        configs::all_local(ws),
        &PolicyChoice::Linux,
        duration,
        7,
    )
    .expect("all-local always runs");

    println!(
        "{:<16} {:>14} {:>14} {:>16} {:>10} {:>10}",
        "policy", "local traffic", "CXL traffic", "vs all-local", "demoted", "swapped"
    );
    for choice in [PolicyChoice::Linux, PolicyChoice::Tpp] {
        let r = run_cell(&profile, configs::one_to_four(ws), &choice, duration, 7)
            .expect("both policies support 1:4");
        println!(
            "{:<16} {:>13.1}% {:>13.1}% {:>15.1}% {:>10} {:>10}",
            r.policy,
            r.local_traffic * 100.0,
            (1.0 - r.local_traffic) * 100.0,
            r.relative_throughput(&baseline) * 100.0,
            r.demoted(),
            r.swap_outs(),
        );
    }

    println!(
        "\nThe paper's Figure 16a: default Linux loses ~14% because hot anon \
         pages are trapped on the CXL node; TPP promotes them back and stays \
         within ~0.5% of the all-local machine even though local DRAM covers \
         only a fifth of the working set."
    );
}
