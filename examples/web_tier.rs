//! Policy shoot-out on a Web-tier workload (paper Figure 19a): default
//! Linux, NUMA balancing, AutoTiering, and TPP on the 2:1 production
//! configuration.
//!
//! ```text
//! cargo run --release --example web_tier
//! ```

use tiered_mem::VmEvent;
use tiered_sim::MINUTE;
use tpp::configs;
use tpp::experiment::{run_cell, PolicyChoice};

fn main() {
    let profile = tiered_workloads::web(12_000);
    let ws = profile.working_set_pages();
    let duration = 3 * MINUTE;

    println!("web working set: {ws} pages on a 2:1 local:CXL machine\n");

    let baseline = run_cell(
        &profile,
        configs::all_local(ws),
        &PolicyChoice::Linux,
        duration,
        11,
    )
    .expect("all-local always runs");

    println!(
        "{:<16} {:>14} {:>16} {:>10} {:>10} {:>20}",
        "policy", "local traffic", "vs all-local", "promoted", "demoted", "wasted local hints"
    );
    let policies = [
        PolicyChoice::Linux,
        PolicyChoice::NumaBalancing,
        PolicyChoice::AutoTiering,
        PolicyChoice::Tpp,
    ];
    for choice in policies {
        match run_cell(&profile, configs::two_to_one(ws), &choice, duration, 11) {
            Ok(r) => println!(
                "{:<16} {:>13.1}% {:>15.1}% {:>10} {:>10} {:>20}",
                r.policy,
                r.local_traffic * 100.0,
                r.relative_throughput(&baseline) * 100.0,
                r.promoted(),
                r.demoted(),
                r.vmstat.get(VmEvent::NumaHintFaultsLocal),
            ),
            Err(e) => println!("{:<16} {e}", e.policy),
        }
    }

    println!(
        "\nExpected shape (paper Figure 19a): NUMA balancing wastes hint \
         faults on local pages and stops promoting under pressure; \
         AutoTiering's fixed promotion buffer drains; TPP keeps essentially \
         all-local performance."
    );
}
