//! # tpp-repro
//!
//! Umbrella crate for the reproduction of *TPP: Transparent Page
//! Placement for CXL-Enabled Tiered Memory* (ASPLOS 2023). It re-exports
//! the workspace crates so the examples and integration tests have a
//! single dependency root:
//!
//! * [`tiered_mem`] — the page-granular memory substrate (frames, nodes,
//!   watermarks, LRU lists, page tables, migration, swap, vmstat),
//! * [`tiered_sim`] — the deterministic simulation engine,
//! * [`tiered_workloads`] — calibrated synthetic datacenter workloads,
//! * [`chameleon`] — the PEBS-style characterization profiler,
//! * [`tpp`] — the placement policies, system runner, and experiment
//!   harness.
//!
//! See the repository `README.md` for a tour and `examples/` for
//! runnable entry points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use chameleon;
pub use tiered_mem;
pub use tiered_sim;
pub use tiered_workloads;
pub use tpp;
