#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), and the
# complete workspace test suite. CI and pre-PR checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q --workspace
