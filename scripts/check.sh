#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), and the
# complete workspace test suite. CI and pre-PR checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q --workspace
# Rustdoc must build warnings-clean (broken intra-doc links etc.).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --workspace
# Benches must at least compile (running them is bench.sh's job).
cargo bench --no-run -q -p tpp-bench

# Executor determinism gate: a reduced-scale repro must produce
# byte-identical tables with and without the parallel executor. (The
# checked-in expected/ snapshots are standard-scale, so the quick run is
# gated against itself: --jobs 1 vs --jobs 2.)
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo build --release -q -p tpp-bench --bin repro
./target/release/repro all --quick --jobs 1 --csv "$tmp/j1" >"$tmp/j1.out" 2>/dev/null
./target/release/repro all --quick --jobs 2 --csv "$tmp/j2" >"$tmp/j2.out" 2>/dev/null
diff -r "$tmp/j1" "$tmp/j2" >/dev/null || {
  echo "executor determinism gate FAILED: --jobs 2 CSV tables differ from --jobs 1" >&2
  exit 1
}
diff "$tmp/j1.out" "$tmp/j2.out" >/dev/null || {
  echo "executor determinism gate FAILED: --jobs 2 stdout differs from --jobs 1" >&2
  exit 1
}
echo "executor determinism gate: --jobs 2 output byte-identical to --jobs 1"

# Topology determinism gate: the multi-preset grid must also be
# byte-identical under the parallel executor (its cells span several
# machine shapes, so it exercises scheduling paths `all --quick` with
# two nodes does not).
./target/release/repro topology --quick --jobs 1 --csv "$tmp/t1" >"$tmp/t1.out" 2>/dev/null
./target/release/repro topology --quick --jobs 2 --csv "$tmp/t2" >"$tmp/t2.out" 2>/dev/null
diff -r "$tmp/t1" "$tmp/t2" >/dev/null || {
  echo "topology determinism gate FAILED: --jobs 2 CSV tables differ from --jobs 1" >&2
  exit 1
}
diff "$tmp/t1.out" "$tmp/t2.out" >/dev/null || {
  echo "topology determinism gate FAILED: --jobs 2 stdout differs from --jobs 1" >&2
  exit 1
}
echo "topology determinism gate: --jobs 2 output byte-identical to --jobs 1"

# THP determinism gate: the huge-page grid runs khugepaged/kcompactd in
# every non-`never` cell, so it exercises the compound-page paths the
# base-page targets never touch; it too must be byte-identical under the
# parallel executor.
./target/release/repro thp --quick --jobs 1 --csv "$tmp/h1" >"$tmp/h1.out" 2>/dev/null
./target/release/repro thp --quick --jobs 2 --csv "$tmp/h2" >"$tmp/h2.out" 2>/dev/null
diff -r "$tmp/h1" "$tmp/h2" >/dev/null || {
  echo "thp determinism gate FAILED: --jobs 2 CSV tables differ from --jobs 1" >&2
  exit 1
}
diff "$tmp/h1.out" "$tmp/h2.out" >/dev/null || {
  echo "thp determinism gate FAILED: --jobs 2 stdout differs from --jobs 1" >&2
  exit 1
}
echo "thp determinism gate: --jobs 2 output byte-identical to --jobs 1"

# If this change regenerated the checked-in bench report, surface the
# throughput delta for review.
if ! git diff --quiet HEAD -- BENCH_repro.json 2>/dev/null; then
  if git show HEAD:BENCH_repro.json >"$tmp/bench_baseline.json" 2>/dev/null; then
    echo "BENCH_repro.json changed; delta vs HEAD:"
    scripts/bench_delta.sh "$tmp/bench_baseline.json" BENCH_repro.json || true
  fi
fi
