#!/usr/bin/env bash
# Prints the throughput delta between two bench.sh reports: the
# end-to-end aggregate simulated accesses/s plus every microbench row
# present in both files. Used by bench.sh (new run vs the checked-in
# baseline) and check.sh (working-tree BENCH_repro.json vs HEAD).
#
#   scripts/bench_delta.sh <baseline.json> <new.json>
set -euo pipefail

if [ $# -ne 2 ]; then
  echo "usage: scripts/bench_delta.sh <baseline.json> <new.json>" >&2
  exit 2
fi

# Flattens a report into "key value" lines: one per microbench row
# (ns/iter) plus the aggregate_ops_per_s figure.
extract() {
  awk '
    /"microbench_median_ns_per_iter"/ { inmb = 1; next }
    inmb && /}/ { inmb = 0 }
    inmb {
      line = $0
      gsub(/[",:]/, " ", line)
      n = split(line, f, " ")
      if (n >= 2) printf "%s %s\n", f[1], f[2]
    }
    /"aggregate_ops_per_s"/ {
      line = $0
      gsub(/[",:]/, " ", line)
      split(line, f, " ")
      printf "aggregate_ops_per_s %s\n", f[2]
    }
  ' "$1"
}

join <(extract "$1" | sort -k1,1) <(extract "$2" | sort -k1,1) | awk '
  $1 == "aggregate_ops_per_s" {
    printf "%-52s %11.0f -> %11.0f /s  %+7.1f%%  (%.2fx)\n",
           $1, $2, $3, ($3 - $2) / $2 * 100, $3 / $2
    next
  }
  {
    printf "%-52s %11.1f -> %11.1f ns  %+7.1f%%\n",
           $1, $2, $3, ($3 - $2) / $2 * 100
  }
'
