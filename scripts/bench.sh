#!/usr/bin/env bash
# Performance snapshot: the substrate microbench suite plus a timed
# standard-scale `repro` run, merged into one JSON report (default:
# BENCH_repro.json at the repo root, which is checked in).
#
# The microbench section carries its own before/after pair: the
# `hashmap_*_baseline` entries measure the std::collections::HashMap page
# table the open-addressed VpnMap replaced, under the identical load.
#
#   scripts/bench.sh [output.json]     # JOBS=4 scripts/bench.sh to pin jobs
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_repro.json}"
JOBS="${JOBS:-$(nproc)}"

cargo build --release -q -p tpp-bench --benches --bin repro

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "running substrate microbenches..." >&2
cargo bench -q -p tpp-bench --bench substrate 2>/dev/null | tee "$tmp/micro.txt" >&2

echo "running standard-scale repro (--jobs $JOBS)..." >&2
./target/release/repro all --jobs "$JOBS" --csv "$tmp/results" \
  --timings-json "$tmp/repro.json" >"$tmp/repro.out"

# Assemble the report: host info, the microbench medians (ns/iter), and
# the repro timing JSON verbatim.
{
  echo "{"
  echo "  \"host\": {\"cpus\": $(nproc), \"os\": \"$(uname -sr)\"},"
  echo "  \"microbench_median_ns_per_iter\": {"
  awk '/ns\/iter/ {
         v = $2                            # median, e.g. "35" or "55.8us"
         if (v ~ /us$/)      { sub(/us$/, "", v); v *= 1000 }
         else if (v ~ /ms$/) { sub(/ms$/, "", v); v *= 1000000 }
         else if (v ~ /s$/)  { sub(/s$/, "", v);  v *= 1000000000 }
         printf "%s    \"%s\": %s", sep, $1, v; sep = ",\n"
       } END { print "" }' "$tmp/micro.txt"
  echo "  },"
  echo "  \"repro\":"
  sed 's/^/  /' "$tmp/repro.json"
  echo "}"
} >"$OUT"

echo "report written to $OUT" >&2
