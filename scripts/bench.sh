#!/usr/bin/env bash
# Performance snapshot: the substrate microbench suite plus a timed
# standard-scale `repro` run, merged into one JSON report (default:
# BENCH_repro.json at the repo root, which is checked in).
#
# The microbench section carries its own before/after pair: the
# `hashmap_*_baseline` entries measure the std::collections::HashMap page
# table the open-addressed VpnMap replaced, under the identical load.
#
#   scripts/bench.sh [output.json]     # JOBS=4 scripts/bench.sh to pin jobs
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_repro.json}"
JOBS="${JOBS:-$(nproc)}"

cargo build --release -q -p tpp-bench --benches --bin repro

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "running substrate microbenches..." >&2
cargo bench -q -p tpp-bench --bench substrate 2>/dev/null | tee "$tmp/micro.txt" >&2
echo "running hotpath microbenches..." >&2
cargo bench -q -p tpp-bench --bench hotpath 2>/dev/null | tee -a "$tmp/micro.txt" >&2

echo "running standard-scale repro (--jobs $JOBS)..." >&2
./target/release/repro all --jobs "$JOBS" --csv "$tmp/results" \
  --timings-json "$tmp/repro.json" >"$tmp/repro.out"

# Assemble the report: host info (including the revision the numbers
# were measured at), the microbench medians (ns/iter), and the repro
# timing JSON verbatim.
GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || GIT_REV="$GIT_REV-dirty"
{
  echo "{"
  echo "  \"host\": {\"cpus\": $(nproc), \"os\": \"$(uname -sr)\", \"git_rev\": \"$GIT_REV\"},"
  echo "  \"microbench_median_ns_per_iter\": {"
  awk '/ns\/iter/ {
         v = $2                            # median, e.g. "35" or "55.8us"
         if (v ~ /us$/)      { sub(/us$/, "", v); v *= 1000 }
         else if (v ~ /ms$/) { sub(/ms$/, "", v); v *= 1000000 }
         else if (v ~ /s$/)  { sub(/s$/, "", v);  v *= 1000000000 }
         printf "%s    \"%s\": %s", sep, $1, v; sep = ",\n"
       } END { print "" }' "$tmp/micro.txt"
  echo "  },"
  echo "  \"repro\":"
  sed 's/^/  /' "$tmp/repro.json"
  echo "}"
} >"$OUT"

echo "report written to $OUT" >&2

# Make regressions visible in review: print the delta against the
# checked-in baseline (skipped when the report IS the committed one).
if git show HEAD:BENCH_repro.json >"$tmp/baseline.json" 2>/dev/null; then
  echo "delta vs BENCH_repro.json at HEAD:" >&2
  scripts/bench_delta.sh "$tmp/baseline.json" "$OUT" >&2 || true
fi
